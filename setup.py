"""Legacy setup shim.

The execution environment has no network access and an older setuptools
without the ``wheel`` package, so PEP 660 editable installs
(``pip install -e .``) cannot build.  ``python setup.py develop`` installs
the same editable package without needing a wheel.  All real metadata lives
in ``pyproject.toml``.
"""

from setuptools import setup

setup()
