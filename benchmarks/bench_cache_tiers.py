"""Multi-tier memoization benchmark: cold vs warm vs cross-root-warm.

The cache story of §5.4, measured end to end on a shared worker fleet:

* **cold** — the fleet has never seen the sketch: every worker scans its
  shards, the root merges streamed partials;
* **warm (same root)** — the root's own computation cache answers whole,
  no worker round-trip at all;
* **cross-root warm** — a *different* root (cold root tier) asks the same
  fleet: worker daemons serve their memoized partials, zero shard scans.

Each mode reports p50/p95 time-to-first-partial and time-to-complete over
``RUNS`` distinct sketches (distinct bucketings, so every cold run is
genuinely cold).  The warm rows should sit far below cold, with
cross-root warm paying only one worker RPC round-trip more than
same-root warm.  Results land in ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

from _harness import format_table, human_seconds
from conftest import add_report

from repro.engine.remote import ProcessCluster, _spawn_env
from repro.service import ServiceClient, ServiceServer

#: Quick mode (REPRO_BENCH_QUICK=1): the nightly CI perf-smoke job wants
#: the same shape in a fraction of the time — smaller dataset, fewer
#: distinct bucketings, the same three tiers.
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
ROWS = 10_000 if QUICK else 30_000
PARTITIONS = 24
FLEET_SIZE = 3
RUNS = 6 if QUICK else 12
FLIGHTS_SPEC = {"kind": "flights", "rows": ROWS, "partitions": PARTITIONS, "seed": 23}


def sketch_spec(buckets: int) -> dict:
    # The throttled "slow" wrapper is non-deterministic by design (never
    # cached), so the measured sketch is the plain deterministic
    # histogram; each run varies the bucket count to mint a fresh cache
    # key, making every cold run genuinely cold.
    return {
        "type": "histogram",
        "column": "Distance",
        "buckets": {"type": "double", "min": 0, "max": 6000, "count": buckets},
    }


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def spawn_fleet(size: int):
    daemons, addresses = [], []
    for i in range(size):
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--listen",
                "127.0.0.1:0",
                "--name",
                f"cache-bench-{i}",
                "--cores",
                "2",
            ],
            env=_spawn_env(),
            stdout=subprocess.PIPE,
            text=True,
        )
        announcement = json.loads(proc.stdout.readline())
        daemons.append(proc)
        addresses.append(("127.0.0.1", int(announcement["port"])))
    return daemons, addresses


def timed_sketch(client: ServiceClient, handle: str, spec: dict):
    start = time.perf_counter()
    first = None
    terminal = None
    for reply in client.sketch(handle, spec).replies(timeout=300):
        if first is None:
            first = time.perf_counter() - start
        terminal = reply
    assert terminal.kind == "complete", terminal.error
    return first, time.perf_counter() - start, terminal


def collect() -> tuple[dict, dict]:
    """Measure the three cache tiers; returns (results, hits) where
    ``results`` maps mode -> [(first, total), ...].  Shared by the pytest
    benchmark below and the nightly CI perf-smoke runner."""
    daemons, addresses = spawn_fleet(FLEET_SIZE)
    servers, clusters = [], []
    try:
        for _ in range(2):
            cluster = ProcessCluster(addresses=addresses, aggregation_interval=0.02)
            clusters.append(cluster)
            server = ServiceServer(cluster)
            server.start_background()
            servers.append(server)
        (root_a, root_b) = servers

        results: dict[str, list[tuple[float, float]]] = {
            "cold": [],
            "warm same-root": [],
            "cross-root warm": [],
        }
        hits = {"warm same-root": 0, "cross-root warm": 0}
        with ServiceClient(*root_a.address) as client_a, ServiceClient(
            *root_b.address
        ) as client_b:
            handle_a = client_a.load(FLIGHTS_SPEC)
            handle_b = client_b.load(FLIGHTS_SPEC)
            for run in range(RUNS):
                buckets = 10 + run  # distinct cache key per run
                spec = sketch_spec(buckets)
                results["cold"].append(
                    timed_sketch(client_a, handle_a, spec)[:2]
                )
                first, total, reply = timed_sketch(client_a, handle_a, spec)
                results["warm same-root"].append((first, total))
                hits["warm same-root"] += bool(reply.cache and reply.cache["hit"])
                first, total, reply = timed_sketch(client_b, handle_b, spec)
                results["cross-root warm"].append((first, total))
                hits["cross-root warm"] += bool(
                    reply.cache and reply.cache["workerHits"]
                )
        return results, hits
    finally:
        for server in servers:
            server.close()
        for cluster in clusters:
            cluster.close()
        for proc in daemons:
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()


def test_cache_tier_latencies():
    results, hits = collect()
    rows = []
    for mode, samples in results.items():
        firsts = [s[0] for s in samples]
        totals = [s[1] for s in samples]
        rows.append(
            [
                mode,
                len(samples),
                human_seconds(percentile(firsts, 0.50)),
                human_seconds(percentile(firsts, 0.95)),
                human_seconds(percentile(totals, 0.50)),
                human_seconds(percentile(totals, 0.95)),
            ]
        )
    table = format_table(
        ["mode", "runs", "first p50", "first p95", "complete p50", "complete p95"],
        rows,
    )
    body = (
        f"{ROWS:,} flight rows x {PARTITIONS} partitions on a shared "
        f"fleet of {FLEET_SIZE} worker daemons; {RUNS} distinct "
        f"bucketings per mode.\n"
        f"root-tier hits: {hits['warm same-root']}/{RUNS}; "
        f"cross-root worker-tier warm runs: "
        f"{hits['cross-root warm']}/{RUNS}.\n\n" + table
    )
    add_report("Cache tiers: cold vs warm vs cross-root warm (§5.4)", body)
    print(body)

    # The benchmark doubles as a regression check: warm must beat cold.
    cold_p50 = percentile([s[0] for s in results["cold"]], 0.50)
    cross_p50 = percentile([s[0] for s in results["cross-root warm"]], 0.50)
    assert hits["warm same-root"] == RUNS
    assert hits["cross-root warm"] == RUNS
    assert cross_p50 < cold_p50, (
        f"cross-root warm p50 {cross_p50} not below cold p50 {cold_p50}"
    )


if __name__ == "__main__":
    test_cache_tier_latencies()
