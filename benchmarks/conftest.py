"""Benchmark harness plumbing.

Every benchmark regenerates one of the paper's tables or figures and
registers a human-readable report via :func:`add_report`.  Reports are
printed in the terminal summary (so they survive ``pytest benchmarks/
--benchmark-only | tee bench_output.txt``) and written to
``benchmarks/results/<slug>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.data.flights import generate_flights
from repro.engine.costmodel import CostModel

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_REPORTS: list[tuple[str, str]] = []


def add_report(title: str, body: str) -> None:
    """Register a report section; also persist it to the results directory."""
    _REPORTS.append((title, body))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w") as f:
        f.write(f"{title}\n{'=' * len(title)}\n{body}\n")


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction reports")
    for title, body in _REPORTS:
        terminalreporter.write_sep("-", title)
        terminalreporter.write_line(body)


@pytest.fixture(scope="session")
def flights_200k():
    """The shared real-execution dataset (one 'Flights' shard set)."""
    return generate_flights(200_000, seed=17)


@pytest.fixture(scope="session")
def calibrated_model() -> CostModel:
    """Cost model with per-row constants measured on this machine."""
    return CostModel.calibrate(rows=1_000_000)
