"""§7.2.1 — single-thread histogram microbenchmark.

Paper (100M rows, one thread):

    streaming   527 ms
    sampling    197 ms
    database  5,830 ms

The shape to reproduce: sampling < streaming << database, with the database
roughly an order of magnitude behind streaming.  Row counts are scaled to
this machine; the report normalizes to ns/row so the comparison is scale-
free.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _harness import format_table, human_seconds
from conftest import add_report

from repro.baseline.rowstore import RowStoreDatabase
from repro.core.buckets import DoubleBuckets
from repro.data.synth import numeric_table
from repro.sketches.histogram import HistogramSketch

SKETCH_ROWS = 2_000_000
DB_ROWS = 150_000
BUCKETS = DoubleBuckets(0.0, 100.0, 100)
SAMPLE_RATE = 0.02  # the V^2-derived rate at this row count


@pytest.fixture(scope="module")
def sketch_table():
    return numeric_table(SKETCH_ROWS, "uniform", seed=1)


@pytest.fixture(scope="module")
def database():
    db = RowStoreDatabase()
    db.load_table("flights", numeric_table(DB_ROWS, "uniform", seed=1))
    return db


def test_streaming_histogram(benchmark, sketch_table):
    sketch = HistogramSketch("value", BUCKETS)
    result = benchmark(sketch.summarize, sketch_table)
    assert result.total_in_range == SKETCH_ROWS
    _RESULTS["streaming"] = (benchmark.stats["mean"], SKETCH_ROWS)


def test_sampled_histogram(benchmark, sketch_table):
    sketch = HistogramSketch("value", BUCKETS, rate=SAMPLE_RATE, seed=3)
    result = benchmark(sketch.summarize, sketch_table)
    assert result.sampled_rows > 0
    _RESULTS["sampling"] = (benchmark.stats["mean"], SKETCH_ROWS)


def test_database_histogram(benchmark, database):
    sql = "SELECT HISTOGRAM(value, 0, 100, 100) FROM flights"

    def run():
        return database.execute(sql)

    (result,) = benchmark.pedantic(run, rounds=2, iterations=1)
    assert sum(result[0]) == DB_ROWS
    _RESULTS["database"] = (benchmark.stats["mean"], DB_ROWS)


_RESULTS: dict[str, tuple[float, int]] = {}

PAPER_MS = {"streaming": 527.0, "sampling": 197.0, "database": 5830.0}


def test_report(benchmark):
    """Assemble the §7.2.1 comparison (shape assertions + report)."""
    benchmark(time.sleep, 0)  # keeps this test alive under --benchmark-only
    assert set(_RESULTS) == {"streaming", "sampling", "database"}
    ns_per_row = {
        name: seconds / rows * 1e9 for name, (seconds, rows) in _RESULTS.items()
    }
    # The paper's shape: sampling fastest, database an order of magnitude
    # slower than streaming (per row).
    assert ns_per_row["sampling"] < ns_per_row["streaming"]
    assert ns_per_row["database"] > 5 * ns_per_row["streaming"]

    rows = []
    for name in ("streaming", "sampling", "database"):
        seconds, count = _RESULTS[name]
        rows.append(
            [
                name,
                human_seconds(seconds),
                f"{count:,}",
                f"{ns_per_row[name]:.1f}",
                f"{PAPER_MS[name]:,.0f} ms @100M",
                f"{PAPER_MS[name] / 100e6 * 1e6:.1f}",
            ]
        )
    body = format_table(
        ["method", "measured", "rows", "ns/row", "paper", "paper ns/row"], rows
    )
    ratio = ns_per_row["database"] / ns_per_row["streaming"]
    paper_ratio = PAPER_MS["database"] / PAPER_MS["streaming"]
    body += (
        f"\n\ndatabase/streaming ratio: measured {ratio:.1f}x, "
        f"paper {paper_ratio:.1f}x\n"
        f"sampling/streaming ratio: measured "
        f"{ns_per_row['sampling'] / ns_per_row['streaming']:.2f}x, paper "
        f"{PAPER_MS['sampling'] / PAPER_MS['streaming']:.2f}x"
    )
    add_report("S7.2.1 single-thread histogram microbenchmark", body)
