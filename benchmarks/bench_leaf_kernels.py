"""Leaf kernel speedups: vectorized sketch kernels vs per-row references.

Every hot sketch kernel keeps its original per-row implementation as
``summarize_reference`` (the differential oracle).  This benchmark runs
both over the canonical four-column table at scale — 100x the quick-mode
service benchmarks' row count — and reports the per-row speedup, plus the
cold time-to-first-partial through a fresh cluster reading a memory-mapped
hvc dataset (the full leaf path: mmap read -> vectorized kernel ->
streamed partial).

The vectorized path is measured at the full row count; the reference path
on a deterministic slice (it is two to three orders of magnitude slower),
with both normalized to ns/row so the speedup is scale-free.

Run directly for a report::

    PYTHONPATH=src python benchmarks/bench_leaf_kernels.py

or through the perf smoke gate (``perf_smoke.py --suite leaf_kernels``),
which **fails** if any kernel's speedup drops below
``REPRO_LEAF_SPEEDUP_MIN`` (default 5x, the acceptance criterion).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

import numpy as np

#: 100x the quick-mode service benchmarks' 20k rows.
ROWS = 2_000_000
#: The per-row reference oracle runs on this many rows (per-row Python
#: loops at the full count would take minutes); ns/row normalizes.
REFERENCE_ROWS = 100_000
#: Kernels measured (SKETCH_SPECS names): one 1-D binning kernel, one
#: 2-D, one value-counting kernel — the §7.2 hot paths.
KERNELS = ("histogram.double", "heatmap.int_double", "heavy_hitters.streaming_string")
COLD_REPS = 5
PARTITIONS = 8


def canonical_table_at_scale(rows: int, seed: int = 29):
    """The canonical i/d/t/s schema at benchmark scale, all-numpy build."""
    from repro.sketches.specs import CANONICAL_SCHEMA, DATE_HI, DATE_LO
    from repro.table.column import (
        DateColumn,
        DoubleColumn,
        IntColumn,
        StringColumn,
        datetime_to_millis,
    )
    from repro.table.dictionary import StringDictionary
    from repro.table.schema import ColumnDescription
    from repro.table.table import Table

    rng = np.random.default_rng(seed)
    ints = rng.integers(-60, 61, rows)
    int_missing = rng.random(rows) < 0.02
    doubles = rng.uniform(-60.0, 60.0, rows)
    doubles[rng.random(rows) < 0.02] = np.nan
    lo = datetime_to_millis(DATE_LO)
    hi = datetime_to_millis(DATE_HI)
    dates = rng.integers(lo, hi, rows)
    date_missing = rng.random(rows) < 0.02
    vocabulary = StringDictionary(
        ["ab", "ba", "cat", "dog", "elk", "fox", "gnu", "kit", "pug", "zz"]
    )
    codes = rng.integers(0, len(vocabulary.values), rows).astype(np.int32)
    codes[rng.random(rows) < 0.02] = -1  # MISSING_CODE
    columns = [
        IntColumn(ColumnDescription("i", CANONICAL_SCHEMA["i"]), ints, int_missing),
        DoubleColumn(ColumnDescription("d", CANONICAL_SCHEMA["d"]), doubles),
        DateColumn(ColumnDescription("t", CANONICAL_SCHEMA["t"]), dates, date_missing),
        StringColumn(ColumnDescription("s", CANONICAL_SCHEMA["s"]), codes, vocabulary),
    ]
    return Table(columns, shard_id="bench-leaf")


def measure_kernels(table) -> dict[str, dict[str, float]]:
    """Per-kernel vectorized vs reference timings, normalized to ns/row."""
    from repro.sketches.specs import spec_by_name
    from repro.table.table import Table

    slice_rows = min(REFERENCE_ROWS, table.num_rows)
    mask = np.zeros(table.num_rows, dtype=bool)
    mask[:slice_rows] = True
    reference_slice = table.filter_mask(mask)
    out: dict[str, dict[str, float]] = {}
    for name in KERNELS:
        spec = spec_by_name(name)
        sketch = spec.sketch()
        sketch.summarize(table)  # warm: page in every column once
        start = time.perf_counter()
        fast = sketch.summarize(table)
        vectorized = time.perf_counter() - start
        start = time.perf_counter()
        slow = spec.sketch().summarize_reference(reference_slice)
        reference = time.perf_counter() - start
        # Sanity: the differential contract holds on the measured slice.
        assert (
            spec.sketch().summarize(reference_slice).to_bytes() == slow.to_bytes()
        ), f"{name}: vectorized and reference summaries diverged"
        assert fast is not None
        vec_per_row = vectorized / table.num_rows
        ref_per_row = reference / slice_rows
        out[name] = {
            "vectorized_ns_per_row": vec_per_row * 1e9,
            "reference_ns_per_row": ref_per_row * 1e9,
            "speedup": ref_per_row / max(vec_per_row, 1e-12),
        }
    return out


def measure_cold_first_partial(table) -> list[float]:
    """Time-to-first-partial through a fresh cluster per repetition:
    mmap dataset read -> vectorized kernels -> first streamed partial."""
    from repro.engine.cluster import Cluster
    from repro.sketches.specs import spec_by_name
    from repro.storage import columnar
    from repro.storage.loader import ColumnarDatasetSource

    directory = tempfile.mkdtemp(prefix="bench-leaf-")
    samples: list[float] = []
    try:
        columnar.write_dataset(table.split(PARTITIONS), directory)
        for _ in range(COLD_REPS):
            cluster = Cluster(
                num_workers=2, cores_per_worker=2, aggregation_interval=0.01
            )
            sketch = spec_by_name("histogram.double").sketch()
            start = time.perf_counter()
            dataset = cluster.load(ColumnarDatasetSource(directory))
            for _partial in dataset.sketch_stream(sketch):
                samples.append(time.perf_counter() - start)
                break
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return samples


def collect() -> dict[str, float]:
    """The perf-smoke metrics for this suite."""
    from bench_cache_tiers import percentile

    table = canonical_table_at_scale(ROWS)
    metrics: dict[str, float] = {}
    for name, measured in measure_kernels(table).items():
        slug = name.replace(".", "_")
        metrics[f"leaf_kernels.{slug}.vectorized_ns_per_row"] = measured[
            "vectorized_ns_per_row"
        ]
        # Gate on the *inverse* speedup (lower is better): the perf gate
        # fails metrics that grow, so a shrinking speedup trips it — and
        # a growing speedup (an improvement) never does.
        metrics[f"leaf_kernels.{slug}.over_reference"] = 1.0 / measured["speedup"]
    cold = measure_cold_first_partial(table)
    metrics["leaf_kernels.cold_first_partial.p50"] = percentile(cold, 0.50)
    return metrics


def minimum_speedup() -> float:
    return float(os.environ.get("REPRO_LEAF_SPEEDUP_MIN", "5.0"))


def main() -> int:
    table = canonical_table_at_scale(ROWS)
    print(f"rows: {table.num_rows:,} (reference slice: {REFERENCE_ROWS:,})")
    failed = False
    for name, measured in measure_kernels(table).items():
        speedup = measured["speedup"]
        flag = ""
        if speedup < minimum_speedup():
            failed = True
            flag = f"  << below {minimum_speedup():.0f}x minimum"
        print(
            f"  {name:36s} {measured['vectorized_ns_per_row']:8.1f} ns/row "
            f"vs {measured['reference_ns_per_row']:10.1f} ns/row "
            f"reference  ({speedup:7.1f}x){flag}"
        )
    cold = measure_cold_first_partial(table)
    print(
        f"  cold first partial (mmap dataset, fresh cluster): "
        f"p50 {sorted(cold)[len(cold) // 2] * 1000:.1f}ms over {len(cold)} reps"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    import sys

    HERE = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, HERE)
    sys.path.insert(0, os.path.join(os.path.dirname(HERE), "src"))
    raise SystemExit(main())
