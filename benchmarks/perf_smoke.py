#!/usr/bin/env python
"""Nightly CI perf smoke: quick benchmarks -> BENCH_<date>.json + gate.

Runs the service-tier benchmarks in quick mode (small dataset,
fewer repetitions, identical topology), records p50/p95
time-to-first-partial per tier/mode into ``BENCH_<date>.json`` (the CI
job uploads it as an artifact, building the benchmark trajectory), and
**fails on regression**: any metric more than ``--gate-ratio`` (default
2x, the acceptance criterion) above the committed
``benchmarks/bench_baseline.json`` — with an absolute floor so
sub-millisecond cache-hit timings cannot trip the gate on scheduler
noise alone.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                 # gate
    PYTHONPATH=src python benchmarks/perf_smoke.py --write-baseline

The baseline is committed; regenerate it (on a quiet machine) whenever a
deliberate perf change shifts the floor, and let the diff tell the
story.
"""

from __future__ import annotations

import os

# Quick mode must be set before the bench modules compute their sizes.
os.environ.setdefault("REPRO_BENCH_QUICK", "1")

import argparse  # noqa: E402
import datetime  # noqa: E402
import json  # noqa: E402
import sys  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
if HERE not in sys.path:  # `python benchmarks/perf_smoke.py` from the root
    sys.path.insert(0, HERE)

BASELINE_PATH = os.path.join(HERE, "bench_baseline.json")

#: A metric only fails the gate when it exceeds baseline * ratio AND
#: baseline + floor — warm-cache timings are fractions of a millisecond,
#: where any shared CI runner doubles on noise alone.
ABSOLUTE_FLOOR_SECONDS = 0.05

#: How far runner-speed calibration may scale the baseline: a shared CI
#: runner is routinely 2-4x slower than the machine the baseline was
#: recorded on, and absolute latencies would fail the 2x gate with zero
#: real regression.  The calibration loop below measures this machine's
#: speed on the same kind of work the benchmarks do, and each baseline
#: is scaled by (current / recorded) clamped to this range before
#: gating — cross-machine drift is absorbed, genuine regressions
#: (which move a metric relative to the same-machine calibration) still
#: trip the gate.
CALIBRATION_CLAMP = (0.5, 4.0)


def calibrate() -> float:
    """Seconds for a fixed CPU workload shaped like the benchmarks:
    numpy scans (the leaves) plus Python-object churn (the JSON wire).
    Median of several runs, so a scheduling hiccup cannot skew it."""
    import time

    import numpy as np

    samples = []
    for _ in range(5):
        start = time.perf_counter()
        data = np.arange(400_000, dtype=np.float64)
        for _ in range(3):
            (np.sort(data % 977) * 1.0001).sum()
        payload = [{"i": i, "v": float(i % 97)} for i in range(20_000)]
        json.dumps(payload)
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def run_cache_tiers() -> dict[str, float]:
    import bench_cache_tiers as bench

    results, _ = bench.collect()
    metrics: dict[str, float] = {}
    for mode, samples in results.items():
        firsts = [s[0] for s in samples]
        slug = mode.replace(" ", "_").replace("-", "_")
        metrics[f"cache_tiers.{slug}.p50_first"] = bench.percentile(firsts, 0.50)
        metrics[f"cache_tiers.{slug}.p95_first"] = bench.percentile(firsts, 0.95)
    return metrics


def run_multi_root() -> dict[str, float]:
    import bench_multi_root as bench

    daemons, addresses = bench.spawn_fleet(bench.FLEET_SIZE)
    try:
        metrics: dict[str, float] = {}
        for roots in bench.ROOT_COUNTS:
            measured = bench.measure(addresses, roots)
            metrics[f"multi_root.{roots}_roots.p50_first"] = measured["p50_first"]
            metrics[f"multi_root.{roots}_roots.p95_first"] = measured["p95_first"]
        return metrics
    finally:
        for proc in daemons:
            proc.terminate()
        for proc in daemons:
            try:
                proc.wait(timeout=10)
            except Exception:  # noqa: BLE001 — teardown best-effort
                proc.kill()


def run_elastic_fleet() -> dict[str, float]:
    import bench_elastic_fleet as bench

    metrics = bench.collect()
    out: dict[str, float] = {
        "elastic_fleet.grow_seconds": metrics["grow_seconds"],
        "elastic_fleet.shrink_seconds": metrics["shrink_seconds"],
    }
    for phase, key in (
        ("before (2 workers)", "before"),
        ("during rebalance", "during"),
    ):
        samples = metrics["buckets"].get(phase) or []
        if samples:
            firsts = [s[0] for s in samples]
            out[f"elastic_fleet.{key}.p50_first"] = bench.percentile(firsts, 0.50)
    return out


def run_tracing_overhead() -> dict[str, float]:
    """First-partial latency with tracing off vs on (``REPRO_TRACE=1``).

    Same topology, same queries, interleaving defeated by a unique
    bucket count per repetition (a computation-cache hit would skip the
    fan-out and measure nothing).  The design target is <5% added p50;
    the committed ``tracing_overhead.ratio`` baseline is ~1.0, so the
    2x gate bounds pathological overhead — span recording drifting onto
    the hot path's critical section — while absorbing runner noise.
    """
    import time

    import bench_cache_tiers as bench

    from repro.data.flights import FlightsSource
    from repro.engine.cluster import Cluster
    from repro.service import ServiceClient, ServiceServer

    quick = os.environ.get("REPRO_BENCH_QUICK") == "1"
    rows = 20_000 if quick else 200_000
    reps = 12 if quick else 40

    def spec(upper: float) -> dict:
        # A unique bucket upper bound per measurement: the computation
        # cache (and the workers' memo tier) would otherwise serve every
        # repeat instantly and the comparison would measure cache hits.
        return {
            "type": "histogram",
            "column": "Distance",
            "buckets": {"type": "double", "min": 0, "max": upper, "count": 64},
        }

    previous_trace = os.environ.get("REPRO_TRACE")
    server = ServiceServer(
        Cluster(num_workers=2, cores_per_worker=2, aggregation_interval=0.02),
        default_source=FlightsSource(rows, partitions=8, seed=7),
    )
    server.start_background()
    try:
        samples: dict[str, list[float]] = {"off": [], "on": []}
        with ServiceClient(*server.address) as client:
            handle = client.load()

            def measure(upper: float) -> float:
                start = time.perf_counter()
                pending = client.submit("sketch", handle, {"sketch": spec(upper)})
                first = None
                for reply in pending.replies():
                    if first is None:
                        first = time.perf_counter() - start
                return first

            for warm in range(3):  # dataset materialization, pool spin-up
                measure(5000 + warm)
            # Interleave the modes so machine drift hits both equally.
            for i in range(reps):
                for offset, mode in ((0, "off"), (1, "on")):
                    if mode == "on":
                        os.environ["REPRO_TRACE"] = "1"
                    else:
                        os.environ.pop("REPRO_TRACE", None)
                    samples[mode].append(measure(6000 + 2 * i + offset))
    finally:
        if previous_trace is None:
            os.environ.pop("REPRO_TRACE", None)
        else:
            os.environ["REPRO_TRACE"] = previous_trace
        server.close()

    off_p50 = bench.percentile(samples["off"], 0.50)
    on_p50 = bench.percentile(samples["on"], 0.50)
    return {
        "tracing_overhead.off.p50_first": off_p50,
        "tracing_overhead.on.p50_first": on_p50,
        "tracing_overhead.ratio": on_p50 / max(off_p50, 1e-9),
    }


def run_leaf_kernels() -> dict[str, float]:
    """Vectorized kernel speedups + cold mmap first-partial (100x rows).

    Two layers of gating: the recorded ``over_reference`` ratios (inverse
    speedups, dimensionless so runner speed cancels) go through the
    standard baseline gate, and a **hard floor** fails the run outright
    if any kernel's speedup over its per-row reference oracle drops
    below ``REPRO_LEAF_SPEEDUP_MIN`` (default 5x, the acceptance
    criterion for vectorizing the leaves) — even on a fresh baseline.
    """
    import bench_leaf_kernels as bench

    metrics = bench.collect()
    minimum = bench.minimum_speedup()
    slow = {
        name: 1.0 / value
        for name, value in metrics.items()
        if name.endswith(".over_reference") and 1.0 / max(value, 1e-12) < minimum
    }
    if slow:
        detail = ", ".join(f"{n} = {v:.1f}x" for n, v in sorted(slow.items()))
        raise SystemExit(
            f"[perf-smoke] leaf kernel speedup below the {minimum:.0f}x "
            f"floor: {detail}"
        )
    return metrics


def run_autoscaler() -> dict[str, float]:
    """Work stealing under a skewed fleet + autoscaler control overhead.

    The steal speedup (off-p95 / on-p95 first-exact under an 8x per-core
    skew) is gated two ways: the inverse ratio ``on_over_off`` goes
    through the standard baseline gate (lower is better, so a regression
    *raises* it past the 2x ratio), and a **hard floor** fails the run
    outright when the speedup drops below ``REPRO_STEAL_SPEEDUP_MIN``
    (default 2x, the acceptance criterion: stealing must at least halve
    the straggler's long pole) — even on a fresh baseline.
    """
    import bench_autoscaler as bench

    measured = bench.collect()
    minimum = bench.minimum_speedup()
    if measured["speedup"] < minimum:
        raise SystemExit(
            f"[perf-smoke] steal speedup {measured['speedup']:.2f}x below "
            f"the {minimum:.1f}x floor (off p95 "
            f"{measured['off_p95'] * 1000:.1f}ms vs on p95 "
            f"{measured['on_p95'] * 1000:.1f}ms)"
        )
    return {
        "autoscaler.steal_off.p95_first": measured["off_p95"],
        "autoscaler.steal_on.p95_first": measured["on_p95"],
        # Inverse speedup: dimensionless (runner speed cancels) and
        # lower-is-better, so the ratio gate catches stealing going slow.
        "autoscaler.steal.on_over_off": 1.0 / max(measured["speedup"], 1e-9),
        "autoscaler.drain_hot_worker.p50": measured["drain_hot_worker_p50"],
        "autoscaler.control_loop_1k_ticks": measured["control_loop_1k_ticks"],
    }


SUITES = {
    "cache_tiers": run_cache_tiers,
    "multi_root": run_multi_root,
    "elastic_fleet": run_elastic_fleet,
    "tracing_overhead": run_tracing_overhead,
    "leaf_kernels": run_leaf_kernels,
    "autoscaler": run_autoscaler,
}


def gate(
    metrics: dict[str, float],
    baseline: dict[str, float],
    ratio: float,
    speed_scale: float = 1.0,
) -> list[str]:
    """Regressed metric names: present in both, above the
    machine-speed-scaled baseline * ratio, and above the absolute
    floor (so sub-millisecond timings never trip on noise)."""
    regressions = []
    for name, base in sorted(baseline.items()):
        current = metrics.get(name)
        if current is None:
            continue
        scaled = base * speed_scale
        if current > scaled * ratio and current > scaled + ABSOLUTE_FLOOR_SECONDS:
            regressions.append(name)
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--write-baseline", action="store_true",
        help=f"rewrite {os.path.relpath(BASELINE_PATH)} from this run",
    )
    parser.add_argument(
        "--baseline", default=BASELINE_PATH,
        help="baseline JSON to gate against",
    )
    parser.add_argument(
        "--out-dir", default=os.path.join(HERE, "results"),
        help="where BENCH_<date>.json lands (uploaded as a CI artifact)",
    )
    parser.add_argument(
        "--gate-ratio", type=float,
        default=float(os.environ.get("REPRO_BENCH_GATE_RATIO", "2.0")),
        help="fail when a metric exceeds baseline * ratio (default 2.0)",
    )
    parser.add_argument(
        "--suite", action="append", choices=sorted(SUITES),
        help="run a subset (repeatable; default: all)",
    )
    args = parser.parse_args(argv)

    calibration = calibrate()
    print(f"[perf-smoke] machine calibration: {calibration * 1000:.1f}ms")
    metrics: dict[str, float] = {}
    for name in args.suite or sorted(SUITES):
        print(f"[perf-smoke] running {name} ...", flush=True)
        metrics.update(SUITES[name]())

    today = datetime.date.today().isoformat()
    record = {
        "date": today,
        "quick": os.environ.get("REPRO_BENCH_QUICK") == "1",
        "python": sys.version.split()[0],
        "calibration_seconds": calibration,
        "metrics": metrics,
    }
    os.makedirs(args.out_dir, exist_ok=True)
    out_path = os.path.join(args.out_dir, f"BENCH_{today}.json")
    with open(out_path, "w") as f:
        json.dump(record, f, indent=2, sort_keys=True)
    print(f"[perf-smoke] wrote {out_path}")

    if args.write_baseline:
        with open(BASELINE_PATH, "w") as f:
            json.dump(record, f, indent=2, sort_keys=True)
        print(f"[perf-smoke] baseline rewritten: {BASELINE_PATH}")
        return 0

    try:
        with open(args.baseline) as f:
            baseline_record = json.load(f)
    except FileNotFoundError:
        print(
            f"[perf-smoke] no baseline at {args.baseline}; run with "
            "--write-baseline first",
            file=sys.stderr,
        )
        return 1
    baseline = baseline_record.get("metrics", {})
    base_calibration = float(
        baseline_record.get("calibration_seconds") or calibration
    )
    low, high = CALIBRATION_CLAMP
    speed_scale = min(high, max(low, calibration / base_calibration))
    print(
        f"[perf-smoke] baseline machine scale: x{speed_scale:.2f} "
        f"(this runner {calibration * 1000:.1f}ms vs recorded "
        f"{base_calibration * 1000:.1f}ms)"
    )

    width = max(len(n) for n in sorted(set(baseline) | set(metrics)))
    for name in sorted(set(baseline) | set(metrics)):
        base, current = baseline.get(name), metrics.get(name)
        if base is None or current is None:
            status = "  (unpaired)"
            shown = current if current is not None else base
            print(f"  {name.ljust(width)}  {shown * 1000:8.1f}ms{status}")
            continue
        flag = (
            "REGRESSED"
            if gate({name: current}, {name: base}, args.gate_ratio, speed_scale)
            else "ok"
        )
        print(
            f"  {name.ljust(width)}  {current * 1000:8.1f}ms  "
            f"(baseline {base * 1000:.1f}ms, x{current / base if base else 0:.2f})  {flag}"
        )

    # Silence is not health: a metric that stops being reported is an
    # unmonitored surface (a renamed key, a bench bucket gone empty).
    # Warn loudly per metric; fail outright if a whole suite vanished.
    missing = sorted(set(baseline) - set(metrics))
    for name in missing:
        print(
            f"[perf-smoke] WARNING: baseline metric {name!r} was not "
            "reported this run; its regression surface is unmonitored",
            file=sys.stderr,
        )
    missing_suites = {n.split(".", 1)[0] for n in missing} - {
        n.split(".", 1)[0] for n in metrics
    }
    if args.suite:  # a deliberate subset run is not a vanished suite
        missing_suites -= set(SUITES) - set(args.suite)
    if missing_suites:
        print(
            f"[perf-smoke] FAIL: no metrics at all from suite(s) "
            f"{', '.join(sorted(missing_suites))}",
            file=sys.stderr,
        )
        return 1

    regressions = gate(metrics, baseline, args.gate_ratio, speed_scale)
    if regressions:
        print(
            f"[perf-smoke] FAIL: {len(regressions)} metric(s) regressed "
            f">{args.gate_ratio:.1f}x vs baseline: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"[perf-smoke] OK: no metric above {args.gate_ratio:.1f}x baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
