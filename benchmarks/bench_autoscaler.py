"""Self-operating fleet benchmark: work stealing under a skewed fleet.

The straggler story (ROADMAP item 3): Hillview's sub-second
interactivity assumes no leaf is the long pole, but a skewed fleet —
here one worker with an **8x per-core share** of the shard work (a
1-core straggler next to an 8-core peer holding the same shard count) —
pushes the time to the first *exact* result far above the balanced
case.  Shard-level work stealing is the data path that fixes it; this
benchmark measures exactly how much:

* **p95 first-exact** — time until the first streamed partial with
  ``progress == 1.0`` (the paper's progress bar reaching 100%), with
  stealing on vs ``REPRO_STEAL=0``, same fleet, same shards;
* **steal speedup** — off/on ratio of those p95s.  The acceptance
  criterion (and the perf-smoke **hard floor**, ``REPRO_STEAL_SPEEDUP_MIN``,
  default 2x): stealing must at least halve the straggler's long pole.
  Sleep-dominated work makes the ratio robust to runner speed;
* **time-to-drain the hot worker** — wall clock until the straggler's
  backlog is gone in the stolen runs (every pending slice either
  summarized at home or ceded to the idle peer);
* **control-loop overhead** — 1k autoscaler ticks against an in-memory
  fleet: the decision path (pressure fold, hysteresis, state publish)
  must stay far off any query's critical path.

Results land in ``benchmarks/results/`` via the perf-smoke runner.
"""

from __future__ import annotations

import os
import time

from _harness import format_table, human_seconds
from conftest import add_report

from repro.core.buckets import DoubleBuckets
from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster, Worker
from repro.service.autoscaler import Autoscaler, AutoscalerConfig
from repro.service.slow import SlowdownSketch
from repro.sketches.histogram import HistogramSketch

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
ROWS = 4_000 if QUICK else 8_000
PARTITIONS = 48 if QUICK else 64
PER_SHARD_SECONDS = 0.015
REPS = 3 if QUICK else 7
#: The skew: a 1-core straggler beside an 8-core peer.  Both hold the
#: same number of shards, so the straggler carries 8x its per-core fair
#: share of the scan work — comfortably past the >=4x the acceptance
#: criterion demands.
CORES = (1, 8)


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def minimum_speedup() -> float:
    """The hard floor for the steal speedup (perf-smoke fails below)."""
    return float(os.environ.get("REPRO_STEAL_SPEEDUP_MIN", "2.0"))


def sketch() -> SlowdownSketch:
    return SlowdownSketch(
        HistogramSketch("Distance", DoubleBuckets(0, 3000, 10)),
        per_shard_seconds=PER_SHARD_SECONDS,
    )


def skewed_cluster() -> Cluster:
    return Cluster(
        workers=[
            Worker("straggler", cores=CORES[0]),
            Worker("peer", cores=CORES[1]),
        ],
        aggregation_interval=0.01,
    )


def measure_mode(steal: bool) -> tuple[list[float], int]:
    """First-exact latencies over REPS runs, plus total stolen slices.

    A fresh cluster per run: the slowdown sketch is uncacheable by
    design, but the straggler gate adapts to observed cadence, so each
    run must start from the same cold state.
    """
    os.environ["REPRO_STEAL"] = "1" if steal else "0"
    os.environ["REPRO_STEAL_AFTER"] = "0.01"
    latencies: list[float] = []
    stolen = 0
    source = FlightsSource(ROWS, partitions=PARTITIONS, seed=13)
    for _ in range(REPS):
        cluster = skewed_cluster()
        dataset = cluster.load(source)
        start = time.perf_counter()
        first_exact = None
        for partial in dataset.sketch_stream(sketch()):
            if first_exact is None and partial.progress >= 1.0:
                first_exact = time.perf_counter() - start
        assert first_exact is not None, "the stream never completed"
        latencies.append(first_exact)
        stolen += sum(w.slices_stolen for w in cluster.workers)
    return latencies, stolen


def measure_control_loop(ticks: int = 1_000) -> float:
    """Wall seconds for ``ticks`` autoscaler decisions over an
    in-memory fleet report — the pure control-path overhead."""
    reports = [
        {"inflight": 3, "datasetOps": 1, "cores": 2},
        {"inflight": 1, "datasetOps": 0, "cores": 2},
    ]
    scaler = Autoscaler(
        lambda: reports,
        lambda n: None,
        lambda n: None,
        config=AutoscalerConfig(cooldown_seconds=1e9),
    )
    start = time.perf_counter()
    for _ in range(ticks):
        scaler.tick()
    return time.perf_counter() - start


def collect() -> dict:
    off_latencies, off_stolen = measure_mode(steal=False)
    on_latencies, on_stolen = measure_mode(steal=True)
    assert off_stolen == 0, "REPRO_STEAL=0 must disable stealing"
    off_p95 = percentile(off_latencies, 0.95)
    on_p95 = percentile(on_latencies, 0.95)
    return {
        "off_p50": percentile(off_latencies, 0.50),
        "off_p95": off_p95,
        "on_p50": percentile(on_latencies, 0.50),
        "on_p95": on_p95,
        "speedup": off_p95 / max(on_p95, 1e-9),
        "stolen_slices": on_stolen,
        "drain_hot_worker_p50": percentile(on_latencies, 0.50),
        "control_loop_1k_ticks": measure_control_loop(),
    }


def main() -> None:
    metrics = collect()
    rows = [
        ("steal off", human_seconds(metrics["off_p50"]),
         human_seconds(metrics["off_p95"])),
        ("steal on", human_seconds(metrics["on_p50"]),
         human_seconds(metrics["on_p95"])),
    ]
    table = format_table(["mode", "p50 first-exact", "p95 first-exact"], rows)
    summary = (
        f"speedup {metrics['speedup']:.2f}x "
        f"(floor {minimum_speedup():.1f}x), "
        f"{metrics['stolen_slices']} slices stolen across "
        f"{REPS} runs, hot worker drained in "
        f"{human_seconds(metrics['drain_hot_worker_p50'])} (p50), "
        f"control loop {human_seconds(metrics['control_loop_1k_ticks'])}"
        f"/1k ticks"
    )
    print(table)
    print(summary)
    add_report(
        f"Work stealing under a {CORES[1]}x-skewed fleet",
        f"{table}\n{summary}",
    )


if __name__ == "__main__":
    main()
