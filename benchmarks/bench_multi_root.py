"""Multi-root benchmark: time-to-first-partial as the root tier widens.

The horizontal service tier's pitch (§5.2: "the web server is stateless")
is that front-end capacity scales by adding roots over one worker fleet.
This benchmark spawns a fixed fleet of 4 ``repro worker --listen``
daemons, then serves 8 concurrent sessions through 1, 2, and 4
``ServiceServer`` roots (dealt round-robin by the connection director),
reporting p50/p95 time-to-first-partial and time-to-complete per tier
width.  Results land in ``benchmarks/results/`` for EXPERIMENTS.md.

The per-shard throttle (5 ms) pins leaf cost, so the delta across tier
widths isolates what the root tier itself contributes: scheduler slots,
transport, and root-side merging — the worker fleet is identical in
every row.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time

from _harness import format_table, human_seconds
from conftest import add_report

from repro.engine.remote import ProcessCluster, _spawn_env
from repro.service import ConnectionDirector, ServiceServer

#: Quick mode (REPRO_BENCH_QUICK=1) for the nightly CI perf-smoke job:
#: same topology, smaller dataset, fewer tier widths.
QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
ROWS = 10_000 if QUICK else 30_000
PARTITIONS = 24
PER_SHARD_SECONDS = 0.005
ROOT_COUNTS = (1, 2) if QUICK else (1, 2, 4)
SESSIONS = 4 if QUICK else 8
MAX_CONCURRENT = 2  # per-root scheduler slots: the tier widens capacity
FLEET_SIZE = 2 if QUICK else 4
FLIGHTS_SPEC = {"kind": "flights", "rows": ROWS, "partitions": PARTITIONS, "seed": 17}


def sketch_spec() -> dict:
    return {
        "type": "slow",
        "perShardSeconds": PER_SHARD_SECONDS,
        "inner": {
            "type": "histogram",
            "column": "Distance",
            "buckets": {"type": "double", "min": 0, "max": 6000, "count": 25},
        },
    }


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def spawn_fleet(size: int):
    daemons, addresses = [], []
    for i in range(size):
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--listen",
                "127.0.0.1:0",
                "--name",
                f"bench-{i}",
                "--cores",
                "2",
            ],
            env=_spawn_env(),
            stdout=subprocess.PIPE,
            text=True,
        )
        announcement = json.loads(proc.stdout.readline())
        daemons.append(proc)
        addresses.append(("127.0.0.1", int(announcement["port"])))
    return daemons, addresses


def run_session(director: ConnectionDirector, results: list, errors: list) -> None:
    try:
        with director.connect() as client:
            handle = client.load(FLIGHTS_SPEC)
            start = time.perf_counter()
            first = None
            terminal = None
            for reply in client.sketch(handle, sketch_spec()).replies(timeout=300):
                if first is None:
                    first = time.perf_counter() - start
                terminal = reply
            assert terminal.kind == "complete", terminal.error
            results.append((first, time.perf_counter() - start))
    except Exception as exc:  # surfaced by the caller
        errors.append(exc)


def measure(fleet_addresses, roots: int) -> dict:
    servers = []
    clusters = []
    try:
        for _ in range(roots):
            cluster = ProcessCluster(
                addresses=fleet_addresses, aggregation_interval=0.02
            )
            clusters.append(cluster)
            server = ServiceServer(cluster, max_concurrent=MAX_CONCURRENT)
            server.start_background()
            servers.append(server)
        director = ConnectionDirector([s.address for s in servers])
        # Warm the fleet's shard stores once (content-addressed ids make
        # every root reuse the same worker-side shards afterwards).
        with director.connect() as warmup:
            warmup.row_count(warmup.load(FLIGHTS_SPEC))
        results: list = []
        errors: list = []
        threads = [
            threading.Thread(target=run_session, args=(director, results, errors))
            for _ in range(SESSIONS)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        wall = time.perf_counter() - wall_start
        assert not errors, errors[0]
        assert len(results) == SESSIONS
    finally:
        for server in servers:
            server.close()
        for cluster in clusters:
            cluster.close()
    firsts = [r[0] for r in results]
    totals = [r[1] for r in results]
    return {
        "roots": roots,
        "p50_first": percentile(firsts, 0.50),
        "p95_first": percentile(firsts, 0.95),
        "p50_total": percentile(totals, 0.50),
        "p95_total": percentile(totals, 0.95),
        "wall": wall,
    }


def test_multi_root_time_to_first_partial():
    daemons, addresses = spawn_fleet(FLEET_SIZE)
    try:
        measurements = [measure(addresses, roots) for roots in ROOT_COUNTS]
    finally:
        for proc in daemons:
            proc.terminate()
        for proc in daemons:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()

    # Interactivity shape: the tier must stay interactive at every width,
    # and widening the tier must not make the p95 first partial worse.
    by_roots = {m["roots"]: m for m in measurements}
    for m in measurements:
        assert m["p95_first"] < 10.0, m
    widest = max(ROOT_COUNTS)
    assert by_roots[widest]["p95_first"] <= by_roots[1]["p95_first"] * 1.5

    rows = [
        [
            m["roots"],
            SESSIONS,
            human_seconds(m["p50_first"]),
            human_seconds(m["p95_first"]),
            human_seconds(m["p50_total"]),
            human_seconds(m["p95_total"]),
            human_seconds(m["wall"]),
        ]
        for m in measurements
    ]
    body = format_table(
        [
            "roots",
            "sessions",
            "p50 first",
            "p95 first",
            "p50 done",
            "p95 done",
            "wall",
        ],
        rows,
    )
    body += (
        f"\n\n{ROWS:,} flight rows x {PARTITIONS} partitions, "
        f"{PER_SHARD_SECONDS * 1000:.0f}ms/shard throttle, shared fleet of "
        f"{FLEET_SIZE} `repro worker` daemons x 2 cores, "
        f"{MAX_CONCURRENT} scheduler slots per root, sessions dealt "
        "round-robin by the connection director"
    )
    add_report(
        "multi-root tier: time-to-first-partial at 1/2/4 roots", body
    )
