"""Figure 8 — weak scaling over server count.

Paper: 64 leaves per server; rows grow with servers (constant rows per
leaf).  Streaming latency stays constant (ideal weak scaling); sampled
latency *drops* super-linearly because the fixed total sample is split over
more servers.  (The paper's y-axis is logarithmic for this reason.)
"""

from __future__ import annotations

from _harness import format_table, human_seconds
from conftest import add_report

from repro.engine.simulation import SimCluster, SimPhase, simulate_phase

SERVER_COUNTS = (1, 2, 3, 4, 5, 6, 7, 8)
LEAVES_PER_SERVER = 64
ROWS_PER_LEAF = 15_000_000
#: Large enough that sampling work dominates fixed task/network overheads
#: (a heat-map-grade sample); the super-linear effect needs visible work.
TOTAL_SAMPLES = 20_000_000


def test_simulated_figure8(benchmark, calibrated_model):
    def run():
        out = {}
        for kind in ("streaming", "sampled"):
            latencies = []
            for servers in SERVER_COUNTS:
                cluster = SimCluster(
                    servers=servers,
                    cores_per_server=28,
                    total_rows=ROWS_PER_LEAF * LEAVES_PER_SERVER * servers,
                    micropartition_rows=ROWS_PER_LEAF,
                )
                phase = (
                    SimPhase(kind="scan", columns=1, summary_bytes=800)
                    if kind == "streaming"
                    else SimPhase(
                        kind="sample",
                        total_samples=TOTAL_SAMPLES,
                        summary_bytes=800,
                    )
                )
                latencies.append(simulate_phase(cluster, phase, calibrated_model).total_s)
            out[kind] = latencies
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    streaming, sampled = results["streaming"], results["sampled"]

    # Streaming: ideal weak scaling -> near-constant latency.
    assert max(streaming) / min(streaming) < 1.4
    # Sampled: super-linear (fixed sample split over more servers).
    assert sampled[-1] < sampled[0] / 3

    rows = [
        [servers, human_seconds(streaming[i]), human_seconds(sampled[i])]
        for i, servers in enumerate(SERVER_COUNTS)
    ]
    add_report(
        "Figure 8 scalability over servers (simulated, 64 leaves/server)",
        format_table(["servers", "streaming", "sampled"], rows)
        + "\n\nPaper: streaming constant (ideal); sampled super-linear "
        "(log-scale y axis).",
    )
