"""Service-layer concurrency benchmark: time-to-first-partial under load.

Hillview's promise is *interactivity at any scale* — the first
rendering-capable partial must arrive quickly even when many sessions
query at once (§2, §5.3).  This benchmark drives the real service stack
(TCP transport, session manager, fair-share scheduler) with 1/8/32
concurrent sessions, each streaming a throttled histogram over the
flights dataset, and reports p50/p95 time-to-first-partial and
time-to-complete per concurrency level.

The throttled (``slow``) sketch pins per-shard cost at 5 ms, so the
numbers measure *scheduling and transport* behavior, not how fast numpy
sums this machine's tiny shards.
"""

from __future__ import annotations

import threading
import time

from _harness import format_table, human_seconds
from conftest import add_report

from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.service import ServiceClient, ServiceServer

ROWS = 30_000
PARTITIONS = 24
PER_SHARD_SECONDS = 0.005
CONCURRENCY_LEVELS = (1, 8, 32)
MAX_CONCURRENT = 4  # scheduler query slots (fair-shared across sessions)


def sketch_spec() -> dict:
    return {
        "type": "slow",
        "perShardSeconds": PER_SHARD_SECONDS,
        "inner": {
            "type": "histogram",
            "column": "Distance",
            "buckets": {"type": "double", "min": 0, "max": 6000, "count": 25},
        },
    }


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def run_session(address, results: list, errors: list) -> None:
    try:
        with ServiceClient(*address) as client:
            handle = client.load()
            start = time.perf_counter()
            first = None
            partials = 0
            for reply in client.sketch(handle, sketch_spec()).replies(timeout=120):
                now = time.perf_counter()
                if first is None:
                    first = now - start
                if reply.kind == "partial":
                    partials += 1
                terminal = reply
            assert terminal.kind == "complete", terminal.error
            results.append((first, time.perf_counter() - start, partials))
    except Exception as exc:  # surfaced by the caller
        errors.append(exc)


def measure(address, sessions: int) -> dict:
    results: list = []
    errors: list = []
    threads = [
        threading.Thread(target=run_session, args=(address, results, errors))
        for _ in range(sessions)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall = time.perf_counter() - wall_start
    assert not errors, errors[0]
    assert len(results) == sessions
    firsts = [r[0] for r in results]
    totals = [r[1] for r in results]
    return {
        "sessions": sessions,
        "p50_first": percentile(firsts, 0.50),
        "p95_first": percentile(firsts, 0.95),
        "p50_total": percentile(totals, 0.50),
        "p95_total": percentile(totals, 0.95),
        "wall": wall,
        "partials": sum(r[2] for r in results) / sessions,
    }


def test_time_to_first_partial_under_concurrency():
    server = ServiceServer(
        Cluster(num_workers=2, cores_per_worker=2, aggregation_interval=0.02),
        default_source=FlightsSource(ROWS, partitions=PARTITIONS, seed=17),
        max_concurrent=MAX_CONCURRENT,
    )
    address = server.start_background()
    try:
        # Warm the shared dataset pool so measurements exclude generation.
        with ServiceClient(*address) as warmup:
            warmup.row_count(warmup.load())
        measurements = [measure(address, n) for n in CONCURRENCY_LEVELS]
    finally:
        server.close()

    # Interactivity shape: even at 32 sessions over 4 query slots, the
    # p95 first partial stays within interactive bounds (well under the
    # paper's "a few seconds" bar for its 100x larger deployment).
    by_sessions = {m["sessions"]: m for m in measurements}
    assert by_sessions[32]["p95_first"] < 10.0
    assert by_sessions[1]["p50_first"] <= by_sessions[32]["p95_first"]

    rows = [
        [
            m["sessions"],
            human_seconds(m["p50_first"]),
            human_seconds(m["p95_first"]),
            human_seconds(m["p50_total"]),
            human_seconds(m["p95_total"]),
            human_seconds(m["wall"]),
            f"{m['partials']:.1f}",
        ]
        for m in measurements
    ]
    body = format_table(
        [
            "sessions",
            "p50 first",
            "p95 first",
            "p50 done",
            "p95 done",
            "wall",
            "partials/q",
        ],
        rows,
    )
    body += (
        f"\n\n{ROWS:,} flight rows x {PARTITIONS} partitions, "
        f"{PER_SHARD_SECONDS * 1000:.0f}ms/shard throttle, "
        f"{MAX_CONCURRENT} scheduler slots, 2 workers x 2 cores"
    )
    add_report("service layer: time-to-first-partial under concurrency", body)
