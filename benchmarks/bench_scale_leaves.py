"""Figure 7 — weak scaling over leaf count on one server.

Paper: leaves and shards grow together (rows per leaf constant); streaming
latency stays flat up to 16 leaves (physical cores), degrades under
hyper-threading; the *sampled* vizketch scales super-linearly because the
total sample is fixed, so per-leaf work shrinks.

Reproduced twice: in the simulator at paper scale, and with real threads on
this machine (numpy releases the GIL during summarize).
"""

from __future__ import annotations

import pytest

from _harness import format_table, human_seconds
from conftest import add_report

from repro.core.buckets import DoubleBuckets
from repro.data.synth import numeric_table
from repro.engine.costmodel import CostModel
from repro.engine.local import LocalDataSet, ParallelDataSet
from repro.engine.simulation import SimCluster, SimPhase, simulate_phase
from repro.sketches.histogram import HistogramSketch

LEAF_COUNTS = (1, 2, 4, 8, 16, 32, 64)
ROWS_PER_LEAF_SIM = 15_000_000
ROWS_PER_LEAF_REAL = 400_000
BUCKETS = DoubleBuckets(0, 100, 100)
TOTAL_SAMPLES = 400_000


def test_simulated_figure7(benchmark, calibrated_model):
    model: CostModel = calibrated_model

    def run():
        out = {}
        for kind in ("streaming", "sampled"):
            latencies = []
            for leaves in LEAF_COUNTS:
                cluster = SimCluster(
                    servers=1,
                    cores_per_server=16,  # 16 physical cores, then HT
                    total_rows=ROWS_PER_LEAF_SIM * leaves,
                    micropartition_rows=ROWS_PER_LEAF_SIM,
                )
                phase = (
                    SimPhase(kind="scan", columns=1, summary_bytes=800)
                    if kind == "streaming"
                    else SimPhase(
                        kind="sample",
                        total_samples=TOTAL_SAMPLES,
                        summary_bytes=800,
                    )
                )
                latencies.append(simulate_phase(cluster, phase, model).total_s)
            out[kind] = latencies
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    streaming, sampled = results["streaming"], results["sampled"]

    # Flat until the core budget, worse beyond it.
    flat = streaming[: LEAF_COUNTS.index(16) + 1]
    assert max(flat) / min(flat) < 1.5
    assert streaming[-1] > streaming[0] * 2  # 64 leaves on 16 cores
    # Sampled scales super-linearly: fixed total sample, shrinking per leaf.
    assert sampled[LEAF_COUNTS.index(16)] < sampled[0] / 4

    rows = [
        [leaves, human_seconds(streaming[i]), human_seconds(sampled[i])]
        for i, leaves in enumerate(LEAF_COUNTS)
    ]
    add_report(
        "Figure 7 scalability over leaf count (simulated, 15M rows/leaf)",
        format_table(["leaves", "streaming", "sampled"], rows)
        + "\n\nPaper: streaming flat to 16 leaves (cores), hyper-threading "
        "hurts beyond;\nsampled super-linear (fixed total sample).",
    )


def test_real_threads_figure7(benchmark):
    """Real threads: rows grow with leaves; sampled uses a fixed sample."""
    leaf_counts = (1, 2, 4, 8)

    def run():
        out = {}
        tables = {
            n: numeric_table(ROWS_PER_LEAF_REAL * n, "uniform", seed=n)
            for n in leaf_counts
        }
        for kind in ("streaming", "sampled"):
            latencies = []
            for n in leaf_counts:
                table = tables[n]
                dataset = ParallelDataSet(
                    [LocalDataSet(shard) for shard in table.split(n)],
                    max_workers=n,
                )
                if kind == "streaming":
                    sketch = HistogramSketch("value", BUCKETS)
                else:
                    rate = min(1.0, TOTAL_SAMPLES / table.num_rows / 8)
                    sketch = HistogramSketch("value", BUCKETS, rate=rate, seed=1)
                run_stats = dataset.run(sketch)
                latencies.append(run_stats.total_seconds)
            out[kind] = latencies
        return out

    results = benchmark.pedantic(run, rounds=2, iterations=1)
    streaming, sampled = results["streaming"], results["sampled"]
    rows = [
        [n, human_seconds(streaming[i]), human_seconds(sampled[i])]
        for i, n in enumerate(leaf_counts)
    ]
    add_report(
        "Figure 7 companion: real threads (400k rows/leaf)",
        format_table(["leaves", "streaming", "sampled"], rows)
        + "\n\n(Python threads: numpy releases the GIL during binning, so "
        "streaming stays\nnear-flat; the fixed-size sample shrinks per "
        "leaf, so sampled latency drops.)",
    )
    # Weak-scaling sanity: 8 leaves on 8 workers shouldn't cost 8x 1 leaf.
    # The bound is deliberately loose — wall-clock thread timings wobble
    # when the machine is otherwise busy; the trend is what matters.
    assert streaming[-1] < streaming[0] * 8 * 0.9
