"""Figure 9 — lines of code per vizketch.

Paper (Java): Histogram 114, CDF 114, Stacked histogram 130, Heatmap 130,
Heatmap trellis 127, Quantile 79, Next items 191, Find text 108, Heavy
hitters (sampling) 35, Range 156, Number distinct 117 — "the largest
vizketch takes only 191 lines".

The reproduction counts the real source lines of each sketch class (code
lines, excluding blanks/comments/docstrings).  The shape: every vizketch is
a few dozen to ~200 lines, because the engine handles everything else.
"""

from __future__ import annotations

import inspect
import io
import time
import tokenize

from _harness import format_table
from conftest import add_report

from repro.sketches.bottomk import BottomKDistinctSketch, BottomKSummary
from repro.sketches.cdf import CdfSketch
from repro.sketches.find_text import FindResult, FindTextSketch
from repro.sketches.heatmap import HeatmapSketch, HeatmapSummary
from repro.sketches.heavy_hitters import (
    FrequencySummary,
    MisraGriesSketch,
    SampleHeavyHittersSketch,
)
from repro.sketches.histogram import HistogramSketch, HistogramSummary
from repro.sketches.hll import HllSummary, HyperLogLogSketch
from repro.sketches.moments import ColumnStats, MomentsSketch
from repro.sketches.next_items import NextKList, NextKSketch
from repro.sketches.quantile import QuantileSummary, SampleQuantileSketch
from repro.sketches.stacked import StackedHistogramSketch, StackedHistogramSummary
from repro.sketches.trellis import TrellisHeatmapSketch, TrellisSummary


def code_lines(*objects) -> int:
    """Count code lines of the given classes (no blanks/comments/docs)."""
    total = 0
    for obj in objects:
        source = inspect.getsource(obj)
        kept: set[int] = set()
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        previous_meaningful = None
        for token in tokens:
            if token.type in (
                tokenize.COMMENT,
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            ):
                continue
            if token.type == tokenize.STRING and previous_meaningful in (
                None,
                tokenize.NEWLINE,
                tokenize.INDENT,
            ):
                # A docstring (expression statement at suite start).
                previous_meaningful = token.type
                continue
            for line in range(token.start[0], token.end[0] + 1):
                kept.add(line)
            previous_meaningful = token.type
        total += len(kept)
    return total


#: vizketch -> (classes to count, paper LOC)
VIZKETCHES = {
    "Histogram": ((HistogramSketch, HistogramSummary), 114),
    "CDF": ((CdfSketch,), 114),
    "Stacked histogram": ((StackedHistogramSketch, StackedHistogramSummary), 130),
    "Heatmap": ((HeatmapSketch, HeatmapSummary), 130),
    "Heatmap trellis": ((TrellisHeatmapSketch, TrellisSummary), 127),
    "Quantile": ((SampleQuantileSketch, QuantileSummary), 79),
    "Next items": ((NextKSketch, NextKList), 191),
    "Find text": ((FindTextSketch, FindResult), 108),
    "Heavy hitters (sampling)": ((SampleHeavyHittersSketch,), 35),
    "Heavy hitters (streaming)": ((MisraGriesSketch, FrequencySummary), None),
    "Range/moments": ((MomentsSketch, ColumnStats), 156),
    "Number distinct (HLL)": ((HyperLogLogSketch, HllSummary), 117),
    "Bottom-k distinct": ((BottomKDistinctSketch, BottomKSummary), None),
}


def test_vizketch_loc(benchmark):
    benchmark(time.sleep, 0)
    rows = []
    for name, (classes, paper) in VIZKETCHES.items():
        lines = code_lines(*classes)
        rows.append([name, lines, paper if paper is not None else "-"])
        # The paper's point: vizketches are compact because the engine does
        # the distributed-systems work.  Ours must stay in the same regime.
        assert lines < 260, f"{name} is {lines} lines — no longer 'compact'"
    measured = [r[1] for r in rows]
    assert max(measured) < 260 and min(measured) >= 10
    body = format_table(["vizketch", "this repo (Python)", "paper (Java)"], rows)
    body += (
        "\n\nEvery vizketch is a pair of pure functions plus a summary type;"
        "\nno sketch knows about threads, networks, caching, or failures."
    )
    add_report("Figure 9 vizketch implementation effort (LOC)", body)
