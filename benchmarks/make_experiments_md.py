#!/usr/bin/env python3
"""Assemble EXPERIMENTS.md from the benchmark result files.

Run after ``pytest benchmarks/ --benchmark-only``; each benchmark writes its
paper-comparison table to ``benchmarks/results/*.txt`` and this script
stitches them into the experiment log, pairing each with the paper's
reported numbers and the reproduction verdict.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")

#: (result-file slug, paper claim, verdict) in presentation order.
SECTIONS = [
    (
        "s7_2_1_single_thread_histogram_microbenchmark",
        "Paper §7.2.1 (100M rows, one thread): streaming 527 ms, sampling "
        "197 ms, database 5,830 ms — the database is ~11x slower than the "
        "streaming vizketch; sampling is fastest.",
        "Reproduced: same ordering; the row-store database pays an order of "
        "magnitude more per row than the streaming vizketch, and sampling "
        "is cheapest. Absolute ns/row differ (Python/numpy vs Java), the "
        "ratios match.",
    ),
    (
        "figure_5_end_to_end_warm_data_simulated_at_paper_scale",
        "Paper Fig 5: for most operations Hillview is at least as fast as "
        "Spark even on twice the data; at 100x (13B rows) totals reach "
        "7.3-15.2 s but a partial visualization appears much earlier "
        "(Hillview100xF); Spark ships ~an order of magnitude more bytes to "
        "the root, except O11 whose heat-map summaries are large.",
        "Reproduced in the calibrated simulator: Hillview <= Spark at 5x "
        "for every operation; 100x totals are seconds with first partials "
        "substantially earlier (sorts/heavy-hitters/distinct in <2 s); "
        "byte ratios 3.5x-100x except O11 at ~2x. Note our O11 streams "
        "because the §4.3 heat-map sample bound exceeds the dataset, which "
        "is also why it ships the most bytes — same mechanism the paper "
        "reports.",
    ),
    (
        "figure_5_companion_real_engines_200k_rows",
        "Paper Fig 5 also implies the architectural bandwidth gap exists at "
        "any scale: a general-purpose engine returns complete results with "
        "per-task overheads.",
        "Measured on real engines in-process at 200k rows: the "
        "general-purpose baseline ships ~50x more bytes. (At this tiny "
        "scale its raw numpy scans are faster than our threaded cluster's "
        "coordination — latency crossover favors Hillview only at scale, "
        "which the simulator covers.)",
    ),
    (
        "figure_5_companion_real_cluster_engine_all_operations_120k_rows",
        "Fig 5's workload (Fig 4, O1-O11) must all execute through "
        "vizketches.",
        "All eleven operations run on the real cluster engine; tabular "
        "sorts and analytics complete in tens of ms, the heaviest "
        "(quantile O4) in ~2 s at 120k rows.",
    ),
    (
        "figure_6_end_to_end_cold_data_from_ssd_simulated",
        "Paper Fig 6: cold (SSD) runs finish in ~3 s at 5x/10x and up to "
        "20.7-24.1 s at 100x; first visualizations within 2.5-4 s; O4/O6 "
        "never run cold.",
        "Reproduced: cold > warm everywhere, growing with touched columns; "
        "5x/10x in the 1.3-15 s band, 100x in the tens of seconds; sorts "
        "and heavy hitters show first partials in 0.2-2.5 s. Chart "
        "operations are bounded by their preparation tree's full cold "
        "scan, so their first partials trail the paper's (the authors "
        "overlap range computation with rendering more aggressively).",
    ),
    (
        "figure_7_scalability_over_leaf_count_simulated_15m_rows_leaf",
        "Paper Fig 7 (weak scaling over leaves, one server): streaming "
        "latency constant up to 16 leaves (physical cores), worse under "
        "hyper-threading; sampled latency *drops* super-linearly.",
        "Reproduced: streaming flat within 11% up to 16 leaves, 2-4x "
        "beyond the core budget; sampled latency falls ~10x from 1 to 16 "
        "leaves (fixed total sample).",
    ),
    (
        "figure_7_companion_real_threads_400k_rows_leaf",
        "Same shape on real threads.",
        "Weak scaling holds on real Python threads (numpy releases the GIL "
        "during binning); the sampled sketch gets faster as leaves grow.",
    ),
    (
        "figure_8_scalability_over_servers_simulated_64_leaves_server",
        "Paper Fig 8 (weak scaling over 1-8 servers, 64 leaves each): "
        "streaming constant (ideal); sampled super-linear — the paper "
        "plots it on a log axis.",
        "Reproduced: streaming within 2% across 1-8 servers; sampled "
        "latency drops ~6.5x over the sweep.",
    ),
    (
        "figure_9_vizketch_implementation_effort_loc",
        "Paper Fig 9: every vizketch is 35-191 lines of Java; 'an expert "
        "takes only a few hours to implement and test' one, with no "
        "distributed-systems code.",
        "Reproduced structurally: every Python vizketch (sketch class + "
        "summary type) is a few dozen to ~230 code lines of pure "
        "single-threaded logic; the engine provides distribution, "
        "caching, replay and streaming uniformly.",
    ),
    (
        "figures_10_11_case_study_20_questions",
        "Paper Figs 10-11: all 20 questions answerable through UI actions; "
        "1-6 actions each (mean 3.4, median 3); Q4/Q6/Q10 only partially "
        "satisfactory; Q20 unanswerable from the data; operator thinking "
        "dominated the time.",
        "Reproduced: every question runs scripted in 1-5 actions (median "
        "2); the same four questions are flagged partial/unanswerable; "
        "total machine time ~1.5 s for all twenty questions. Answers match "
        "the planted ground truth (HA least delay, EV most cancellations, "
        "EV+MQ retired, Dec 21 peak / Dec 25 dip, ~5,100-mile longest "
        "flight, Chicago worst weather).",
    ),
    (
        "figure_3_13a_histogram_pixel_accuracy",
        "Paper Fig 3/13 + Theorem 3: at the display-derived sample size "
        "every histogram bar is within one pixel of the exact rendering "
        "w.h.p.",
        "Reproduced with genuine subsamples (rate < 1): worst bar error "
        "<= 1 pixel across trials; mean error ~0.06 px.",
    ),
    (
        "figure_13a_cdf_pixel_accuracy",
        "CDF renderings within one pixel per horizontal pixel (App. B.1).",
        "Reproduced: worst per-pixel error 1 at a 28% sample.",
    ),
    (
        "ablation_sample_size_constant_vs_pixel_error",
        "Appendix C.2: 'in practice CV^2 samples for constant C works "
        "well' — the constant matters.",
        "Swept C over 400x: error decays as expected; below C~1 the "
        "one-pixel guarantee visibly breaks (up to 21 px at C=0.05).",
    ),
    (
        "ablation_heavy_hitters_misra_gries_vs_sampling_b_2",
        "Appendix B.2: the sampling method 'is better than [Misra-Gries] "
        "when K >= 1/100'; both find everything above 1/K.",
        "Both methods find every >=1/K-frequent value at K=5/20/100; "
        "sampling is cheaper at small K.",
    ),
    (
        "ablation_membership_set_sampling_s5_6",
        "§5.6: sparse sets sample by hash order, dense sets by a random "
        "bitmap walk — both without reading each row.",
        "Both representations sample in sub-millisecond time at "
        "million-row universes, touching only members.",
    ),
    (
        "ablation_aggregation_cadence_s5_3_default_0_1s",
        "§5.3: nodes aggregate partials for 0.1 s — 'frequent updates to "
        "the UI; the increase in communication costs is modest because all "
        "vizketch results are small by construction'.",
        "Reproduced: 10x faster cadence costs only ~4x bytes (hundreds of "
        "KB at 13B rows) and leaves total latency unchanged.",
    ),
    (
        "ablation_aggregation_tree_fanout_s5_2_figure_1",
        "§5.2/Figure 1: one or more layers of aggregation nodes sit between "
        "the web server and the leaves; 'a small deployment with tens of "
        "servers needs only one layer'.",
        "Quantified: at 8 servers every fanout degenerates to a flat tree "
        "(the paper's setting); at 512 servers a fanout of 16 caps the "
        "root's in-degree at 32 for one extra sub-millisecond merge hop — "
        "summary sizes make tree depth, not bandwidth, the only cost.",
    ),
    (
        "ablation_json_protocol_overhead_s6",
        "§6: RPC messages between browser and web server are serialized as "
        "JSON; summaries are small by construction, so the protocol never "
        "dominates.",
        "Measured through the real WebServer: a full histogram query's "
        "client-facing JSON is ~1 KB, on par with the engine-internal "
        "binary summary bytes.",
    ),
    (
        "ablation_trellis_sample_size_economics_b_1",
        "Appendix B.1: a trellis of k heat maps needs a *smaller* sample "
        "than one large heat map of the same pixel dimensions, because the "
        "sample bound is quadratic in per-pane bins.",
        "Reproduced analytically from the Appendix C bounds: splitting a "
        "600x400 surface into 16 panes cuts the required sample size by "
        "orders of magnitude.",
    ),
    (
        "ablation_computation_cache_s5_4",
        "§5.4: vizketch results are tiny, so caching them makes repeated "
        "deterministic queries (ranges, counts) effectively free.",
        "Reproduced: cache hits are ~1000x faster than the full tree and "
        "ship zero bytes.",
    ),
]

PREAMBLE = """\
# EXPERIMENTS — paper vs. this reproduction

Generated from `benchmarks/results/` (re-create with
`pytest benchmarks/ --benchmark-only` followed by
`python benchmarks/make_experiments_md.py`).

**Reading guide.** The original evaluation ran on eight 2x14-core Xeon
servers over 130M-13B rows of the BTS flights data.  This reproduction runs
the identical vizketch/engine code paths in-process, uses a seeded synthetic
flights dataset with the same analytic structure, and regenerates
figure-scale numbers with a discrete-event cluster simulator whose per-row
constants are *calibrated from the real sketch implementations on this
machine* (see DESIGN.md, "Substitutions").  Absolute times therefore differ
from the paper; every claim below is about the **shape** — orderings,
ratios, crossovers — which the benchmark suite also asserts programmatically.

"""


def main() -> None:
    parts = [PREAMBLE]
    missing = []
    for slug, paper, verdict in SECTIONS:
        path = os.path.join(RESULTS_DIR, f"{slug}.txt")
        try:
            with open(path) as f:
                content = f.read().strip()
        except FileNotFoundError:
            missing.append(slug)
            continue
        title, _, rest = content.partition("\n")
        body = rest.partition("\n")[2].strip()  # drop the ==== underline
        parts.append(f"## {title.strip()}\n")
        parts.append(f"**Paper.** {paper}\n")
        parts.append(f"**This reproduction.** {verdict}\n")
        parts.append("```text\n" + body + "\n```\n")
    if missing:
        parts.append(
            "\n*Missing result files (benchmarks not yet run): "
            + ", ".join(missing)
            + "*\n"
        )
    with open(OUTPUT, "w") as f:
        f.write("\n".join(parts))
    print(f"wrote {os.path.abspath(OUTPUT)} ({len(SECTIONS) - len(missing)} sections)")


if __name__ == "__main__":
    main()
