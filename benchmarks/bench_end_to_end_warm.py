"""Figure 5 — end-to-end operation latency and root bytes, warm data.

Paper setup: 8 servers x 28 cores, datasets Flights-5x/10x/100x
(650M/1.3B/13B rows x 110 columns), Spark baseline at 5x only (larger
exhausted memory).  Reported: response time per operation (top) and bytes
received by the root (bottom, log scale); Hillview100xF is the time to the
first partial visualization at 100x.

Shapes to reproduce:
* Hillview >= as fast as Spark at the same scale;
* at 100x, totals reach seconds but first partials arrive much earlier;
* Spark ships ~an order of magnitude more bytes, except O11 (heat map),
  whose vizketch is itself large;
* the real small-scale run (cluster engine vs GeneralPurposeEngine) shows
  the same ordering in wall-clock time and measured bytes.
"""

from __future__ import annotations

import time

import pytest

from _harness import format_table, human_bytes, human_seconds
from _operations_sim import (
    measure_summary_sizes,
    simulate_operation,
    simulate_spark_operation,
)
from conftest import add_report

from repro.baseline.analytics import GeneralPurposeEngine
from repro.core.resolution import Resolution
from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.engine.simulation import SimCluster
from repro.spreadsheet import OPERATIONS, Spreadsheet, run_operation

SERVERS = 8
CORES = 28
ROWS_5X = 650_000_000
OP_IDS = [op.op_id for op in OPERATIONS]


@pytest.fixture(scope="module")
def sizes():
    return measure_summary_sizes()


def _cluster(scale: int) -> SimCluster:
    return SimCluster(
        servers=SERVERS,
        cores_per_server=CORES,
        total_rows=ROWS_5X * scale // 5,
    )


def test_simulated_figure5(benchmark, sizes, calibrated_model):
    def run():
        table = {}
        for op_id in OP_IDS:
            spark = simulate_spark_operation(op_id, _cluster(5), calibrated_model, sizes)
            h5 = simulate_operation(op_id, _cluster(5), calibrated_model, sizes)
            h10 = simulate_operation(op_id, _cluster(10), calibrated_model, sizes)
            h100 = simulate_operation(op_id, _cluster(100), calibrated_model, sizes)
            table[op_id] = (spark, h5, h10, h100)
        return table

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows_time = []
    rows_bytes = []
    for op_id in OP_IDS:
        spark, h5, h10, h100 = results[op_id]
        rows_time.append(
            [
                op_id,
                human_seconds(spark.total_s),
                human_seconds(h5.total_s),
                human_seconds(h10.total_s),
                human_seconds(h100.total_s),
                human_seconds(h100.first_partial_s),
            ]
        )
        rows_bytes.append(
            [
                op_id,
                human_bytes(spark.bytes_to_root),
                human_bytes(h5.bytes_to_root),
                human_bytes(h10.bytes_to_root),
                human_bytes(h100.bytes_to_root),
                f"{spark.bytes_to_root / max(h5.bytes_to_root, 1):.1f}x",
            ]
        )
        # Shape assertions (paper Figure 5).
        assert h5.total_s <= spark.total_s * 1.2, op_id
        assert h100.first_partial_s < h100.total_s or h100.total_s < 0.5
        if op_id != "O11":
            assert spark.bytes_to_root > 3 * h5.bytes_to_root, op_id

    body = (
        "Response time (top graph):\n"
        + format_table(
            ["op", "Spark5x", "Hillview5x", "Hillview10x", "Hillview100x", "100xF(first)"],
            rows_time,
        )
        + "\n\nBytes received by root (bottom graph, Spark/Hillview5x ratio):\n"
        + format_table(
            ["op", "Spark5x", "Hillview5x", "Hillview10x", "Hillview100x", "ratio@5x"],
            rows_bytes,
        )
        + "\n\nPaper: Hillview >= Spark speed at same scale; 100x totals "
        "7.3-15.2s with early partials;\nSpark ~10x more bytes except O11 "
        "(heat map summaries are large)."
    )
    add_report("Figure 5 end-to-end, warm data (simulated at paper scale)", body)


def test_real_small_scale_comparison(benchmark, flights_200k):
    """Wall-clock Hillview cluster vs general-purpose engine, 200k rows."""
    shards = flights_200k.split(16)
    engine = GeneralPurposeEngine(shards, max_workers=8)
    cluster = Cluster(num_workers=4, cores_per_worker=2, aggregation_interval=0.05)
    dataset = cluster.load(FlightsSource(200_000, partitions=16, seed=17))

    def hillview_histogram():
        # Fresh caches each round: Figure 5 measures first-time operations.
        cluster.computation_cache.clear()
        sheet = Spreadsheet(dataset, resolution=Resolution(300, 100), seed=1)
        sheet.histogram("DepDelay", with_cdf=False)
        record = sheet.log.actions[-1]
        return record.seconds, record.bytes_received

    def spark_histogram():
        lo, hi, _ = engine.column_range("DepDelay")
        bytes_range = engine.last_stats.bytes_to_driver
        seconds_range = engine.last_stats.seconds
        engine.histogram("DepDelay", lo, hi, 100)
        return (
            seconds_range + engine.last_stats.seconds,
            bytes_range + engine.last_stats.bytes_to_driver,
        )

    h_seconds, h_bytes = benchmark.pedantic(
        hillview_histogram, rounds=3, iterations=1
    )
    s_seconds, s_bytes = spark_histogram()
    body = format_table(
        ["system", "histogram latency", "bytes to root/driver"],
        [
            ["hillview-cluster", human_seconds(h_seconds), human_bytes(h_bytes)],
            ["general-purpose", human_seconds(s_seconds), human_bytes(s_bytes)],
        ],
    )
    assert s_bytes > h_bytes  # display-unbounded results + task overheads
    add_report("Figure 5 companion: real engines, 200k rows", body)


def test_real_all_operations(benchmark):
    """Run every O1-O11 on the real cluster engine once (latency survey)."""
    cluster = Cluster(num_workers=4, cores_per_worker=2, aggregation_interval=0.05)
    dataset = cluster.load(FlightsSource(120_000, partitions=12, seed=23))

    def run_all():
        sheet = Spreadsheet(dataset, resolution=Resolution(300, 100), seed=9)
        out = {}
        for op_id in OP_IDS:
            start = time.perf_counter()
            records = run_operation(sheet, op_id)
            out[op_id] = (
                time.perf_counter() - start,
                sum(r.bytes_received for r in records),
            )
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [op_id, human_seconds(seconds), human_bytes(nbytes)]
        for op_id, (seconds, nbytes) in results.items()
    ]
    add_report(
        "Figure 5 companion: real cluster engine, all operations (120k rows)",
        format_table(["op", "latency", "bytes to root"], rows),
    )
    assert all(seconds < 30 for seconds, _ in results.values())
