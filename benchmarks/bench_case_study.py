"""Figures 10 & 11 — the twenty-question case study.

Paper: an operator answered 20 free-form questions using only spreadsheet
actions; every question needed 1-6 actions (mean 3.4, median 3); Q4/Q6/Q10
were only partially answerable and Q20 could not be answered from the data.
Most time was the *operator thinking*; machine time was small.

The reproduction scripts the same workflows (repro.spreadsheet.case_study)
over the synthetic flights data and reports actions + machine seconds per
question, plus the answers themselves for inspection.
"""

from __future__ import annotations

import numpy as np

from _harness import format_table, human_seconds
from conftest import add_report

from repro.core.resolution import Resolution
from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.spreadsheet import Spreadsheet
from repro.spreadsheet.case_study import run_case_study

PAPER_ACTIONS = {
    "Q1": 5, "Q2": 3, "Q3": 4, "Q4": 5, "Q5": 5, "Q6": 4, "Q7": 2,
    "Q8": 5, "Q9": 1, "Q10": 1, "Q11": 3, "Q12": 5, "Q13": 6, "Q14": 2,
    "Q15": 4, "Q16": 3, "Q17": 3, "Q18": 2, "Q19": 2, "Q20": None,
}


def test_case_study(benchmark):
    cluster = Cluster(num_workers=4, cores_per_worker=2, aggregation_interval=0.05)
    dataset = cluster.load(FlightsSource(150_000, partitions=12, seed=29))

    def run():
        sheet = Spreadsheet(dataset, resolution=Resolution(300, 100), seed=13)
        return run_case_study(sheet)

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for result in results:
        paper = PAPER_ACTIONS[result.q_id]
        rows.append(
            [
                result.q_id,
                result.actions,
                paper if paper is not None else "n/a",
                human_seconds(result.seconds),
                ("" if result.fully_answerable else "* ") + result.answer[:58],
            ]
        )

    actions = [r.actions for r in results]
    body = format_table(
        ["q", "actions", "paper", "machine time", "answer (* = partial/unanswerable)"],
        rows,
    )
    body += (
        f"\n\nactions: mean {np.mean(actions):.1f} (paper 3.4), "
        f"median {np.median(actions):.0f} (paper 3), "
        f"max {max(actions)} (paper 6)\n"
        f"total machine time {human_seconds(sum(r.seconds for r in results))} "
        "— the paper's bottleneck was operator thinking, not the engine."
    )
    add_report("Figures 10-11 case study: 20 questions", body)

    # Shape: all questions executable in few actions with small machine time.
    assert max(actions) <= 8
    assert float(np.median(actions)) <= 4
    assert all(r.answer for r in results)
