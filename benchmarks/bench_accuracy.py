"""Figure 3/13 — rendering accuracy of sampled vizketches, plus the
sample-size ablation.

Paper: histogram bars are within 1/2 pixel (1 pixel after rounding) and
heat-map bins within one color shade of the exact rendering, with high
probability, at display-derived sample sizes.  The ablation sweeps the
practical constant C in ``n = C * V^2 * log(1/delta)`` to show the bound is
tight: smaller samples break the guarantee, larger ones waste work.
"""

from __future__ import annotations

import numpy as np
import pytest

from _harness import format_table
from conftest import add_report

from repro.core import sampling
from repro.core.buckets import DoubleBuckets
from repro.data.synth import numeric_table
from repro.render.cdf_render import cdf_pixel_errors
from repro.render.histogram_render import pixel_errors
from repro.sketches.cdf import CdfSketch
from repro.sketches.histogram import HistogramSketch

ROWS = 3_000_000  # large enough that display-derived samples truly sample
HEIGHT = 100
BUCKETS = DoubleBuckets(0, 100, 50)
TRIALS = 10


@pytest.fixture(scope="module")
def population():
    return numeric_table(ROWS, "bimodal", seed=41)


@pytest.fixture(scope="module")
def exact(population):
    return HistogramSketch("value", BUCKETS).summarize(population)


def _guarantee_samples(height: int, p_max: float, buckets: int) -> int:
    """Theorem-3 sample size with normal-tail constants (see tests)."""
    from scipy import stats as sps

    z = float(sps.norm.ppf(1 - 0.01 / (2 * buckets)))
    return int(np.ceil(z * z * height * height / p_max))


def test_histogram_pixel_accuracy(benchmark, population, exact):
    p_max = float(exact.counts.max()) / exact.total_in_range
    target = _guarantee_samples(HEIGHT, p_max, BUCKETS.count)
    rate = sampling.sample_rate(target, ROWS)

    def one_trial(seed=0):
        sampled = HistogramSketch("value", BUCKETS, rate=rate, seed=seed).summarize(
            population
        )
        return pixel_errors(sampled, exact, HEIGHT, rate)

    benchmark(one_trial)
    max_errors = [one_trial(seed).max() for seed in range(TRIALS)]
    mean_errors = [one_trial(seed).mean() for seed in range(TRIALS)]
    body = format_table(
        ["metric", "value", "paper guarantee"],
        [
            ["samples (Thm 3, z-form)", f"{target:,}", "O(V^2 log 1/d)"],
            ["rate", f"{rate:.4f}", "display-derived"],
            ["max pixel error (worst trial)", max(max_errors), "<= 1 px w.h.p."],
            ["trials exceeding 1 px", sum(e > 1 for e in max_errors), f"~1% of {TRIALS}"],
            ["mean pixel error", f"{np.mean(mean_errors):.3f}", "<< 1"],
        ],
    )
    add_report("Figure 3/13a histogram pixel accuracy", body)
    assert sum(e > 1 for e in max_errors) <= 1


def test_cdf_pixel_accuracy(benchmark, population):
    width = 200
    cdf_buckets = DoubleBuckets(0, 100, width)
    exact_cdf = CdfSketch("value", cdf_buckets).summarize(population)
    # slack=0.25: within one pixel after rounding, with a genuine subsample
    # (the paper's 0.1 slack needs more samples than rows at this scale).
    target = sampling.cdf_sample_size(HEIGHT, delta=0.01, slack=0.25, width=width)
    rate = sampling.sample_rate(target, ROWS)

    def one_trial(seed=0):
        sampled = CdfSketch("value", cdf_buckets, rate=rate, seed=seed).summarize(
            population
        )
        return cdf_pixel_errors(sampled, exact_cdf, HEIGHT)

    benchmark(one_trial)
    worst = max(one_trial(seed).max() for seed in range(TRIALS))
    add_report(
        "Figure 13a CDF pixel accuracy",
        f"samples {target:,} (rate {rate:.4f}); worst pixel error over "
        f"{TRIALS} trials: {worst} (guarantee: <= 1 px w.h.p.)",
    )
    assert worst <= 1


def test_sample_size_ablation(benchmark, population, exact):
    """Ablation: sweep the constant C; error decays ~1/sqrt(C)."""

    def sweep():
        out = []
        for c in (0.05, 0.2, 1.0, 5.0, 20.0):
            target = sampling.practical_histogram_sample_size(HEIGHT, c=c)
            rate = sampling.sample_rate(target, ROWS)
            errors = []
            for seed in range(5):
                sampled = HistogramSketch(
                    "value", BUCKETS, rate=rate, seed=seed
                ).summarize(population)
                errors.append(pixel_errors(sampled, exact, HEIGHT, rate))
            flat = np.concatenate(errors)
            out.append((c, target, float(flat.mean()), int(flat.max())))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [c, f"{n:,}", f"{mean:.3f}", worst]
        for c, n, mean, worst in results
    ]
    body = format_table(
        ["C", "samples", "mean px error", "max px error"], rows
    ) + (
        "\n\nThe paper uses C*V^2 'for constant C' (Appendix C.2): below "
        "C~1 the 1-pixel\nguarantee breaks; above it extra samples only "
        "cost time."
    )
    add_report("Ablation: sample-size constant vs pixel error", body)
    means = [mean for _, _, mean, _ in results]
    assert means[0] > means[-1]  # more samples -> lower error
