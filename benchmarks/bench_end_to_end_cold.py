"""Figure 6 — end-to-end latency with cold data (loaded from SSD).

Paper: O4 and O6 are omitted (never hit cold data in the UI); 5x/10x
complete within ~3s, 100x can take ~20-24s, and first visualizations still
arrive within 2.5-4s.  Shapes: cold > warm at every scale; cost grows with
the number of columns the operation touches; first partials stay early.
"""

from __future__ import annotations

import pytest

from _harness import format_table, human_seconds
from _operations_sim import measure_summary_sizes, simulate_operation
from conftest import add_report

from repro.engine.simulation import SimCluster
from repro.spreadsheet import OPERATIONS

SERVERS = 8
CORES = 28
ROWS_5X = 650_000_000
COLD_OPS = [op.op_id for op in OPERATIONS if op.cold_applicable]


def _cluster(scale: int) -> SimCluster:
    return SimCluster(
        servers=SERVERS, cores_per_server=CORES, total_rows=ROWS_5X * scale // 5
    )


@pytest.fixture(scope="module")
def sizes():
    return measure_summary_sizes()


def test_simulated_figure6(benchmark, sizes, calibrated_model):
    def run():
        out = {}
        for op_id in COLD_OPS:
            out[op_id] = {
                scale: simulate_operation(
                    op_id, _cluster(scale), calibrated_model, sizes, cold=True
                )
                for scale in (5, 10, 100)
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for op_id in COLD_OPS:
        by_scale = results[op_id]
        warm = simulate_operation(op_id, _cluster(100), calibrated_model, sizes)
        rows.append(
            [
                op_id,
                human_seconds(by_scale[5].total_s),
                human_seconds(by_scale[10].total_s),
                human_seconds(by_scale[100].total_s),
                human_seconds(by_scale[100].first_partial_s),
                human_seconds(warm.total_s),
            ]
        )
        # Cold runs are never faster than warm ones.
        assert by_scale[100].total_s >= warm.total_s * 0.95, op_id
        # Latency grows with dataset size.
        assert by_scale[100].total_s > by_scale[5].total_s, op_id

    body = format_table(
        ["op", "cold 5x", "cold 10x", "cold 100x", "100x first", "warm 100x"],
        rows,
    ) + (
        "\n\nPaper Figure 6: cold 5x/10x within ~3s, 100x up to 20.7-24.1s;"
        "\nfirst visualizations within 2.5s most of the time, 4s always."
        "\nO4/O6 omitted: those operations never run on cold data."
    )
    add_report("Figure 6 end-to-end, cold data from SSD (simulated)", body)

    # Multi-column operations pay more disk than single-column ones.
    assert (
        results["O2"][100].total_s > results["O1"][100].total_s
    ), "5-column sort must load more columns than 1-column sort"
