"""Elastic fleet benchmark: interactivity before/during/after a grow.

The tier-operations pitch: a placed worker fleet can change size under
live load without breaking interactivity.  This benchmark runs a steady
8-session workload through one ``ServiceServer`` root over a 2-daemon
fleet, then — mid-workload — has an administrative root grow the fleet
to 4 daemons (streaming the moved shard slices) and later shrink it
back, measuring:

* **time-to-rebalance** — wall clock of each ``grow``/``shrink`` call
  (dial + inventory + shard transfer + versioned commit);
* **first-partial latency** p50/p95 bucketed into *before* (steady
  state, 2 daemons), *during* (queries overlapping a rebalance window —
  these drain on the old placement or restart on the new one), and
  *after* (steady state again).

The regression gate mirrors the acceptance criterion: during-rebalance
p50 time-to-first-partial must stay within 2x of steady state, i.e. the
rebalance barrier and stale-placement retries cost a bounded amount of
interactivity, never a stall.  Results land in ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time

from _harness import format_table, human_seconds
from conftest import add_report

from repro.engine.remote import ProcessCluster, _spawn_env
from repro.service import ServiceClient, ServiceServer

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"
ROWS = 10_000 if QUICK else 30_000
PARTITIONS = 24
PER_SHARD_SECONDS = 0.004
SESSIONS = 4 if QUICK else 8
STEADY_SECONDS = 1.5 if QUICK else 3.0
FLIGHTS_SPEC = {"kind": "flights", "rows": ROWS, "partitions": PARTITIONS, "seed": 31}
SKETCH = {
    "type": "slow",
    "perShardSeconds": PER_SHARD_SECONDS,
    "inner": {
        "type": "histogram",
        "column": "Distance",
        "buckets": {"type": "double", "min": 0, "max": 6000, "count": 25},
    },
}


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def spawn_fleet(size: int):
    daemons, addresses = [], []
    for i in range(size):
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--listen",
                "127.0.0.1:0",
                "--name",
                f"elastic-bench-{i}",
                "--cores",
                "2",
            ],
            env=_spawn_env(),
            stdout=subprocess.PIPE,
            text=True,
        )
        announcement = json.loads(proc.stdout.readline())
        daemons.append(proc)
        addresses.append(("127.0.0.1", int(announcement["port"])))
    return daemons, addresses


def session_loop(address, samples: list, errors: list, stop: threading.Event):
    """One session issuing back-to-back sketches, recording
    (start, first-partial latency, total latency) per query."""
    try:
        with ServiceClient(*address) as client:
            handle = client.load(FLIGHTS_SPEC)
            while not stop.is_set():
                start = time.perf_counter()
                first = None
                terminal = None
                for reply in client.sketch(handle, SKETCH).replies(timeout=300):
                    if first is None:
                        first = time.perf_counter() - start
                    terminal = reply
                if terminal.kind != "complete":
                    raise AssertionError(
                        f"query ended {terminal.kind}: {terminal.error}"
                    )
                samples.append((start, first, time.perf_counter() - start))
    except Exception as exc:  # noqa: BLE001 — surfaced by the caller
        if not stop.is_set():
            errors.append(exc)


def bucket(samples, windows: dict[str, tuple[float, float]]):
    """Assign each sample to the first window its execution overlaps."""
    out: dict[str, list[tuple[float, float]]] = {name: [] for name in windows}
    for start, first, total in samples:
        end = start + total
        for name, (w0, w1) in windows.items():
            if start < w1 and end > w0:
                out[name].append((first, total))
                break
    return out


def collect() -> dict:
    daemons, addresses = spawn_fleet(4)
    serving = None
    server = None
    admin = None
    stop = threading.Event()
    try:
        serving = ProcessCluster(addresses=addresses[:2], aggregation_interval=0.02)
        server = ServiceServer(serving, max_concurrent=4)
        root_address = server.start_background()
        admin = ProcessCluster(addresses=addresses[:2], aggregation_interval=0.02)

        samples: list = []
        errors: list = []
        threads = [
            threading.Thread(
                target=session_loop, args=(root_address, samples, errors, stop)
            )
            for _ in range(SESSIONS)
        ]
        for thread in threads:
            thread.start()
        time.sleep(1.0)  # warmup: shards loaded, caches primed

        before_start = time.perf_counter()
        time.sleep(STEADY_SECONDS)

        grow_start = time.perf_counter()
        admin.grow(addresses[2:])
        grow_seconds = time.perf_counter() - grow_start

        time.sleep(STEADY_SECONDS)  # steady state on 4 daemons

        shrink_start = time.perf_counter()
        admin.shrink(addresses[2:])
        shrink_seconds = time.perf_counter() - shrink_start

        time.sleep(STEADY_SECONDS)
        after_end = time.perf_counter()

        stop.set()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors[0]

        windows = {
            "grow": (grow_start, grow_start + grow_seconds),
            "shrink": (shrink_start, shrink_start + shrink_seconds),
            "before (2 workers)": (before_start, grow_start),
            "steady (4 workers)": (grow_start + grow_seconds, shrink_start),
            "after (2 workers)": (shrink_start + shrink_seconds, after_end),
        }
        buckets = bucket(samples, windows)
        # Report rebalance windows merged as "during".
        during = buckets.pop("grow") + buckets.pop("shrink")
        buckets["during rebalance"] = during
        return {
            "grow_seconds": grow_seconds,
            "shrink_seconds": shrink_seconds,
            "buckets": buckets,
            "serving_version": serving.placement_version,
        }
    finally:
        stop.set()
        if server is not None:
            server.close()
        for cluster in (serving, admin):
            if cluster is not None:
                cluster.close()
        for proc in daemons:
            proc.terminate()
        for proc in daemons:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


def test_elastic_fleet_interactivity():
    metrics = collect()
    buckets = metrics["buckets"]

    rows = []
    stats: dict[str, dict[str, float]] = {}
    order = [
        "before (2 workers)",
        "during rebalance",
        "steady (4 workers)",
        "after (2 workers)",
    ]
    for phase in order:
        phase_samples = buckets[phase]
        if not phase_samples:
            continue
        firsts = [s[0] for s in phase_samples]
        totals = [s[1] for s in phase_samples]
        stats[phase] = {
            "p50_first": percentile(firsts, 0.50),
            "p95_first": percentile(firsts, 0.95),
        }
        rows.append(
            [
                phase,
                len(phase_samples),
                human_seconds(percentile(firsts, 0.50)),
                human_seconds(percentile(firsts, 0.95)),
                human_seconds(percentile(totals, 0.50)),
            ]
        )
    body = format_table(
        ["phase", "queries", "first p50", "first p95", "complete p50"], rows
    )
    body += (
        f"\n\ntime-to-rebalance: grow 2->4 {human_seconds(metrics['grow_seconds'])}, "
        f"shrink 4->2 {human_seconds(metrics['shrink_seconds'])}\n"
        f"{ROWS:,} flight rows x {PARTITIONS} partitions, "
        f"{PER_SHARD_SECONDS * 1000:.0f}ms/shard throttle, {SESSIONS} "
        "sessions through 1 root; rebalances issued by a separate "
        "administrative root (the serving root adopts via stale-placement "
        f"resync; final placement v{metrics['serving_version']})"
    )
    add_report(
        "Elastic fleet: first-partial latency before/during/after a grow",
        body,
    )
    print(body)

    # The serving root followed both rebalances.
    assert metrics["serving_version"] == 2

    # Interactivity gates (the acceptance criterion): queries overlapping
    # a rebalance stay within 2x of steady-state time-to-first-partial.
    steady = stats["before (2 workers)"]
    assert steady["p95_first"] < 10.0, stats
    during = stats.get("during rebalance")
    if during is not None:  # a very fast rebalance may overlap no query
        assert during["p50_first"] <= max(steady["p50_first"] * 2.0, 0.5), (
            f"rebalance broke interactivity: {during} vs steady {steady}"
        )
    return {
        "grow_seconds": metrics["grow_seconds"],
        "shrink_seconds": metrics["shrink_seconds"],
        "before_p50_first": steady["p50_first"],
        "during_p50_first": (during or steady)["p50_first"],
    }


if __name__ == "__main__":
    test_elastic_fleet_interactivity()
