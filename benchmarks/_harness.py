"""Formatting helpers shared by the benchmark reports."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """A fixed-width text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]

    def line(parts):
        return "  ".join(p.ljust(w) for p, w in zip(parts, widths))

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)


def human_bytes(count: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(count) < 1024 or unit == "GB":
            return f"{count:.1f}{unit}" if unit != "B" else f"{count:.0f}B"
        count /= 1024
    return f"{count:.1f}GB"


def human_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"
