"""Process-worker benchmark: in-process vs multiprocess time-to-first-partial.

PR 2 moved the workers out of the root's process (§5.2: one worker process
per server).  This benchmark quantifies what that hop costs on one machine:
the same throttled histogram streams over (a) the threaded in-process
cluster and (b) a :class:`ProcessCluster` of spawned ``repro worker``
subprocesses, at 4/8/16 workers, reporting p50/p95 time-to-first-partial
and time-to-complete.  Results land in ``benchmarks/results/`` for
EXPERIMENTS.md.

The per-shard throttle (2 ms) pins leaf cost, so the delta between the two
engines is dispatch + serialization + socket latency — the real price of
the process boundary — rather than numpy speed on tiny shards.
"""

from __future__ import annotations

import time

from _harness import format_table, human_seconds
from conftest import add_report

import repro.service.slow  # noqa: F401 — registers the "slow" sketch type
from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.engine.local import LocalDataSet
from repro.engine.rpc import sketch_from_json
from repro.engine.remote import ProcessCluster
from repro.table.table import Table

ROWS = 48_000
PARTITIONS = 48
PER_SHARD_SECONDS = 0.002
WORKER_COUNTS = (4, 8, 16)
RUNS = 7
SOURCE = FlightsSource(ROWS, partitions=PARTITIONS, seed=23)


def sketch_spec() -> dict:
    # "slow" is non-deterministic, so repeats bypass the computation cache
    # and every run exercises the full execution tree.
    return {
        "type": "slow",
        "perShardSeconds": PER_SHARD_SECONDS,
        "inner": {
            "type": "histogram",
            "column": "Distance",
            "buckets": {"type": "double", "min": 0, "max": 6000, "count": 25},
        },
    }


def percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def stream_once(dataset, reference_bytes: bytes) -> tuple[float, float, int]:
    start = time.perf_counter()
    first = None
    partials = 0
    final = None
    for partial in dataset.sketch_stream(sketch_from_json(sketch_spec())):
        if first is None:
            first = time.perf_counter() - start
        partials += 1
        final = partial.value
    total = time.perf_counter() - start
    assert final is not None and final.to_bytes() == reference_bytes
    return first, total, partials


def measure(cluster, engine: str, workers: int, reference_bytes: bytes) -> dict:
    dataset = cluster.load(SOURCE)
    stream_once(dataset, reference_bytes)  # warm shard stores and pools
    firsts, totals, partials = [], [], 0
    for _ in range(RUNS):
        first, total, count = stream_once(dataset, reference_bytes)
        firsts.append(first)
        totals.append(total)
        partials += count
    return {
        "workers": workers,
        "engine": engine,
        "p50_first": percentile(firsts, 0.50),
        "p95_first": percentile(firsts, 0.95),
        "p50_total": percentile(totals, 0.50),
        "p95_total": percentile(totals, 0.95),
        "partials": partials / RUNS,
    }


def test_in_process_vs_multiprocess_time_to_first_partial():
    reference_bytes = (
        LocalDataSet(Table.concat(SOURCE.load()))
        .sketch(sketch_from_json(sketch_spec()))
        .to_bytes()
    )
    measurements = []
    for workers in WORKER_COUNTS:
        threaded = Cluster(
            num_workers=workers, cores_per_worker=2, aggregation_interval=0.02
        )
        measurements.append(
            measure(threaded, "threads", workers, reference_bytes)
        )
        spawned = ProcessCluster(
            num_workers=workers, cores_per_worker=2, aggregation_interval=0.02
        )
        try:
            measurements.append(
                measure(spawned, "processes", workers, reference_bytes)
            )
        finally:
            spawned.close()

    # Sanity: both engines stay interactive at every fleet size.
    for m in measurements:
        assert m["p95_first"] < 5.0, m

    rows = [
        [
            m["workers"],
            m["engine"],
            human_seconds(m["p50_first"]),
            human_seconds(m["p95_first"]),
            human_seconds(m["p50_total"]),
            human_seconds(m["p95_total"]),
            f"{m['partials']:.1f}",
        ]
        for m in measurements
    ]
    body = format_table(
        [
            "workers",
            "engine",
            "p50 first",
            "p95 first",
            "p50 done",
            "p95 done",
            "partials/q",
        ],
        rows,
    )
    body += (
        f"\n\n{ROWS:,} flight rows x {PARTITIONS} partitions, "
        f"{PER_SHARD_SECONDS * 1000:.0f}ms/shard throttle, 2 cores/worker, "
        f"{RUNS} runs per cell; 'processes' = spawned `repro worker` "
        "subprocesses speaking uvarint-framed JSON"
    )
    add_report(
        "process workers: in-process vs multiprocess time-to-first-partial",
        body,
    )
