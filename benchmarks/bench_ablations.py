"""Design-choice ablations called out in DESIGN.md.

* Heavy hitters: Misra-Gries (streaming) vs sampling — the paper observes
  sampling is "better when K >= 1/100" of the data; we sweep K.
* Membership sampling: dense bitmap walk vs sparse hash-threshold (§5.6).
* Aggregation cadence: the 0.1 s partial-merge interval trades freshness
  for bytes (§5.3).
* Computation cache: hit vs miss latency (§5.4).
"""

from __future__ import annotations

import time

import numpy as np

from _harness import format_table, human_bytes, human_seconds
from conftest import add_report

from repro.core.buckets import DoubleBuckets
from repro.core.sampling import heavy_hitters_sample_size, sample_rate
from repro.data.synth import categorical_table
from repro.engine.costmodel import CostModel
from repro.engine.simulation import SimCluster, SimPhase, simulate_phase
from repro.sketches.heavy_hitters import MisraGriesSketch, SampleHeavyHittersSketch
from repro.sketches.histogram import HistogramSketch
from repro.table.membership import DenseMembership, SparseMembership


def test_heavy_hitters_methods(benchmark):
    """Misra-Gries vs sampling across K (accuracy + time)."""
    table = categorical_table(400_000, distinct=2_000, exponent=1.4, seed=3)
    truth: dict = {}
    rows = table.members.indices()
    column = table.column("word")
    codes = column.codes_at(rows)
    unique, counts = np.unique(codes, return_counts=True)
    for code, count in zip(unique, counts):
        truth[column.dictionary.value(int(code))] = int(count)
    n = table.num_rows

    def evaluate(k: int):
        must_find = {v for v, c in truth.items() if c >= n / k}
        out = []
        start = time.perf_counter()
        mg = MisraGriesSketch("word", 2 * k)
        mg_summary = mg.merge_all([mg.summarize(s) for s in table.split(8)])
        mg_time = time.perf_counter() - start
        mg_found = {v for v, _ in mg_summary.hitters(1.0 / k)}
        out.append(("misra-gries", k, mg_time, must_find <= mg_found))

        start = time.perf_counter()
        rate = sample_rate(heavy_hitters_sample_size(k, 0.01), n)
        sampler = SampleHeavyHittersSketch("word", k, rate, seed=7)
        sample_summary = sampler.merge_all(
            [sampler.summarize(s) for s in table.split(8)]
        )
        sample_time = time.perf_counter() - start
        sample_found = {v for v, _ in sampler.hitters(sample_summary)}
        out.append(("sampling", k, sample_time, must_find <= sample_found))
        return out

    def sweep():
        results = []
        for k in (5, 20, 100):
            results.extend(evaluate(k))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows_out = [
        [method, k, human_seconds(seconds), "yes" if ok else "NO"]
        for method, k, seconds, ok in results
    ]
    add_report(
        "Ablation: heavy hitters, Misra-Gries vs sampling (B.2)",
        format_table(["method", "K", "time", "all >=1/K found"], rows_out)
        + "\n\nPaper: the sampling method wins for small K (its sample is "
        "K^2 log K);\nMisra-Gries scans everything but never misses.",
    )
    assert all(ok for method, _, _, ok in results if method == "misra-gries")
    # Sampling beats the full scan for small K.
    small_k = {m: t for m, k, t, _ in results if k == 5}
    assert small_k["sampling"] < small_k["misra-gries"]


def test_membership_sampling(benchmark):
    """Dense bitmap walk vs sparse hash-threshold sampling (§5.6)."""
    universe = 2_000_000
    rng = np.random.default_rng(5)

    dense = DenseMembership(rng.random(universe) < 0.6)
    sparse = SparseMembership(
        np.flatnonzero(rng.random(universe) < 0.02), universe
    )

    def sample_both():
        out = {}
        for name, members in (("dense-bitmap", dense), ("sparse-hash", sparse)):
            start = time.perf_counter()
            for seed in range(5):
                members.sample_rate(0.01, np.random.default_rng(seed))
            out[name] = (time.perf_counter() - start) / 5
        return out

    results = benchmark.pedantic(sample_both, rounds=2, iterations=1)
    rows = [
        ["dense-bitmap (walk)", f"{dense.size:,}", human_seconds(results["dense-bitmap"])],
        ["sparse-hash (bottom-k)", f"{sparse.size:,}", human_seconds(results["sparse-hash"])],
    ]
    add_report(
        "Ablation: membership-set sampling (S5.6)",
        format_table(["representation", "members", "time per 1% sample"], rows)
        + "\n\nBoth touch only O(sample) or O(members) work — never the "
        "whole universe of\nthe parent table.",
    )


def test_aggregation_cadence(benchmark, calibrated_model):
    """The 0.1s partial-merge interval: freshness vs bytes (§5.3)."""
    cluster = SimCluster(servers=8, cores_per_server=28, total_rows=13_000_000_000)
    phase = SimPhase(kind="scan", columns=1, summary_bytes=800)

    def sweep():
        out = []
        for interval in (0.01, 0.05, 0.1, 0.5, 2.0):
            model = calibrated_model.with_overrides(
                aggregation_interval_s=interval
            )
            result = simulate_phase(cluster, phase, model)
            out.append((interval, result))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            f"{interval:.2f}s",
            result.partials_to_root,
            human_bytes(result.bytes_to_root),
            human_seconds(result.first_partial_s),
            human_seconds(result.total_s),
        ]
        for interval, result in results
    ]
    add_report(
        "Ablation: aggregation cadence (S5.3, default 0.1s)",
        format_table(
            ["interval", "partials", "bytes to root", "first partial", "total"],
            rows,
        )
        + "\n\nShorter intervals give fresher progress at modest byte cost "
        "(summaries are\nsmall by construction); the total latency is "
        "unaffected.",
    )
    partials = [r.partials_to_root for _, r in results]
    assert partials[0] > partials[-1]
    totals = [r.total_s for _, r in results]
    assert max(totals) / min(totals) < 1.05


def test_aggregation_tree_fanout(benchmark, calibrated_model):
    """Aggregation-tree fanout: root incast vs merge-hop latency (§5.2).

    Figure 1's architecture inserts aggregation layers so the root is never
    overwhelmed; the paper notes one layer suffices for tens of servers.
    This sweep quantifies the trade-off at larger fleet sizes.
    """
    from repro.engine.simulation import aggregation_tree

    summary_bytes = 800  # a histogram-sized summary

    def sweep():
        out = []
        for servers in (8, 64, 512):
            for fanout in (4, 16, 64):
                shape = aggregation_tree(servers, fanout)
                out.append(
                    (
                        servers,
                        fanout,
                        shape.layers,
                        shape.root_in_degree,
                        shape.root_bytes_per_round(summary_bytes),
                        shape.hop_latency_s(calibrated_model, summary_bytes),
                    )
                )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [
            servers,
            fanout,
            layers,
            in_degree,
            human_bytes(root_bytes),
            human_seconds(hop_latency),
        ]
        for servers, fanout, layers, in_degree, root_bytes, hop_latency in results
    ]
    add_report(
        "Ablation: aggregation-tree fanout (S5.2, Figure 1)",
        format_table(
            [
                "servers",
                "fanout",
                "extra layers",
                "root in-degree",
                "root bytes/round",
                "added hop latency",
            ],
            rows,
        )
        + "\n\nAt 8 servers every fanout yields a flat tree (the paper's "
        "deployment);\nat 512 servers a fanout of 16 caps the root's "
        "in-degree at 32 for one\nextra ~0.5 ms merge hop — summaries are "
        "so small that depth, not\nbandwidth, is the only cost.",
    )
    by_key = {(s, f): (l, d) for s, f, l, d, _, _ in results}
    # The paper's deployment: no aggregation layers needed at 8 servers.
    assert by_key[(8, 16)] == (0, 8)
    # Large fleets: smaller fanout => deeper tree but smaller incast.
    assert by_key[(512, 4)][0] > by_key[(512, 64)][0]
    assert by_key[(512, 4)][1] < 512


def test_protocol_overhead(benchmark, flights_200k):
    """JSON RPC envelope cost vs the binary summary encoding (§6).

    Hillview serializes RPC messages as JSON; summaries stay small by
    construction, so even a text encoding keeps the root's ingress tiny
    compared to a general-purpose engine shipping raw rows (Fig 5 bottom).
    """
    from repro.data.flights import FlightsSource
    from repro.engine.cluster import Cluster
    from repro.engine.rpc import RpcRequest
    from repro.engine.web import WebServer

    web = WebServer(Cluster(num_workers=2, cores_per_worker=2))
    handle = web.load(FlightsSource(100_000, partitions=8, seed=13))
    spec = {
        "sketch": {
            "type": "histogram",
            "column": "DepDelay",
            "buckets": {"type": "double", "min": -60, "max": 300, "count": 100},
        }
    }

    def round_trip():
        web.cluster.computation_cache.clear()
        request = RpcRequest(1, handle, "sketch", spec)
        start = time.perf_counter()
        replies = list(web.execute(request.to_json()))
        elapsed = time.perf_counter() - start
        json_bytes = sum(len(r.to_json()) for r in replies)
        # The same query, engine-direct: binary summary bytes at the root.
        web.cluster.computation_cache.clear()
        sketch_run = web.dataset(handle).run(
            HistogramSketch("DepDelay", DoubleBuckets(-60, 300, 100))
        )
        return elapsed, json_bytes, sketch_run.bytes_received

    elapsed, json_bytes, binary_bytes = benchmark.pedantic(
        round_trip, rounds=3, iterations=1
    )
    ratio = json_bytes / max(binary_bytes, 1)
    add_report(
        "Ablation: JSON protocol overhead (S6)",
        format_table(
            ["path", "bytes", "note"],
            [
                ["binary summaries at root", human_bytes(binary_bytes),
                 "engine-internal (Fig 5 bottom)"],
                ["JSON replies to client", human_bytes(json_bytes),
                 f"{ratio:.1f}x the binary bytes"],
            ],
        )
        + f"\n\nFull query answered over JSON in {human_seconds(elapsed)}. "
        "Because vizketch summaries\nare display-sized, the client-facing "
        "text encoding stays in the kilobytes per\nquery — the protocol "
        "never becomes the bottleneck the paper attributes to\n"
        "row-shipping engines.",
    )
    assert json_bytes < 512 * 1024  # kilobytes, not megabytes


def test_trellis_sample_economics(benchmark, calibrated_model):
    """Trellis panes shrink, so the whole array needs a *smaller* sample.

    Appendix B.1: "a large number of heat maps means that each heat map is
    small ... due to the quadratic dependency on the number of bins, this
    requires a smaller sample size than rendering a single heat map of the
    same pixel dimensions."
    """
    from repro.core.resolution import DISTINCT_COLORS, Resolution
    from repro.core.sampling import heatmap_sample_size

    surface = Resolution(600, 400)

    def sweep():
        out = []
        for panes in (1, 2, 4, 8, 16):
            pane_resolution, _, _ = surface.split_trellis(panes)
            bx, by = pane_resolution.heatmap_bins()
            per_pane = heatmap_sample_size(bx, by, DISTINCT_COLORS, 0.01)
            out.append((panes, bx, by, per_pane))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [panes, f"{bx}x{by}", f"{per_pane:,}"]
        for panes, bx, by, per_pane in results
    ]
    add_report(
        "Ablation: trellis sample-size economics (B.1)",
        format_table(["panes", "bins per pane", "sample size (whole query)"], rows)
        + "\n\nThe sample bound is quadratic in per-pane bins, and binning "
        "the group column\nis free, so splitting one surface into k panes "
        "*shrinks* the total sample —\nthe counter-intuitive economics the "
        "paper calls out for trellis plots.",
    )
    sizes = [per_pane for _, _, _, per_pane in results]
    assert sizes[0] > sizes[-1], "16 panes should need fewer samples than 1"


def test_computation_cache(benchmark, flights_200k):
    """Cache hit vs miss on a deterministic sketch (§5.4)."""
    from repro.data.flights import FlightsSource
    from repro.engine.cluster import Cluster

    cluster = Cluster(num_workers=4, cores_per_worker=2, aggregation_interval=0.05)
    dataset = cluster.load(FlightsSource(150_000, partitions=12, seed=31))
    sketch = HistogramSketch("DepDelay", DoubleBuckets(-60, 300, 100))

    def miss_then_hit():
        cluster.computation_cache.clear()
        miss = dataset.run(sketch)
        hit = dataset.run(sketch)
        return miss, hit

    miss, hit = benchmark.pedantic(miss_then_hit, rounds=3, iterations=1)
    assert not miss.cache_hit and hit.cache_hit
    speedup = miss.total_seconds / max(hit.total_seconds, 1e-9)
    add_report(
        "Ablation: computation cache (S5.4)",
        format_table(
            ["path", "latency", "bytes to root"],
            [
                ["miss (full tree)", human_seconds(miss.total_seconds), human_bytes(miss.bytes_received)],
                ["hit (root cache)", human_seconds(hit.total_seconds), human_bytes(hit.bytes_received)],
            ],
        )
        + f"\n\ncache speedup: {speedup:,.0f}x; hits ship zero bytes.",
    )
    assert hit.total_seconds < miss.total_seconds
