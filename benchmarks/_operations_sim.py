"""Figure 4 operations expressed as simulator phases.

Each O1-O11 operation maps to the execution trees it launches (§5.3): a
preparation tree (range / distinct — often cached, but Figures 5/6 measure
first-time operations) and a rendering tree.  Summary sizes are measured
from the *real* sketches on a small flights table, so the simulated bytes
are grounded in the actual wire format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import sampling
from repro.core.buckets import DoubleBuckets, ExplicitStringBuckets
from repro.core.resolution import DEFAULT_RESOLUTION
from repro.data.flights import generate_flights
from repro.engine.costmodel import CostModel
from repro.engine.simulation import SimCluster, SimPhase, SimResult, simulate_query
from repro.sketches.bottomk import BottomKDistinctSketch
from repro.sketches.cdf import CdfSketch
from repro.sketches.heatmap import HeatmapSketch
from repro.sketches.heavy_hitters import SampleHeavyHittersSketch
from repro.sketches.histogram import HistogramSketch
from repro.sketches.hll import HyperLogLogSketch
from repro.sketches.moments import MomentsSketch
from repro.sketches.next_items import NextKSketch
from repro.sketches.quantile import SampleQuantileSketch
from repro.sketches.stacked import StackedHistogramSketch
from repro.table.sort import RecordOrder

RES = DEFAULT_RESOLUTION
V = RES.height
H = RES.width


@dataclass(frozen=True)
class SummarySizes:
    """Measured wire sizes of each summary type (bytes)."""

    range_: int
    histogram: int
    cdf: int
    stacked: int
    heatmap: int
    next_k: int
    next_k5: int
    quantile: int
    heavy_hitters: int
    hll: int
    bottomk: int


def measure_summary_sizes() -> SummarySizes:
    """Run each sketch on a small real flights table and measure bytes."""
    table = generate_flights(20_000, seed=4)
    delay = DoubleBuckets(-60, 300, 100)
    pixels = DoubleBuckets(-60, 300, H)
    airlines = ExplicitStringBuckets(
        sorted({a for a in table.column("Airline").dictionary.values})
    )
    heat = HeatmapSketch(
        "DepDelay", DoubleBuckets(-60, 300, H // 3),
        "ArrDelay", DoubleBuckets(-60, 300, V // 3),
    )
    order1 = RecordOrder.of("DepDelay")
    order5 = RecordOrder.of("DepDelay", "ArrDelay", "Distance", "AirTime", "TaxiOut")
    quantile = SampleQuantileSketch(order5, rate=0.05, seed=1)
    return SummarySizes(
        range_=MomentsSketch("DepDelay").summarize(table).serialized_size(),
        histogram=HistogramSketch("DepDelay", delay).summarize(table).serialized_size(),
        cdf=CdfSketch("DepDelay", pixels).summarize(table).serialized_size(),
        stacked=StackedHistogramSketch(
            "DepDelay", delay, "Airline", airlines
        ).summarize(table).serialized_size(),
        heatmap=heat.summarize(table).serialized_size(),
        next_k=NextKSketch(order1, 20).summarize(table).serialized_size(),
        next_k5=NextKSketch(order5, 20).summarize(table).serialized_size(),
        quantile=quantile.summarize(table).serialized_size(),
        heavy_hitters=SampleHeavyHittersSketch(
            "Origin", 20, rate=0.1, seed=1
        ).summarize(table).serialized_size(),
        hll=HyperLogLogSketch("FlightNum").summarize(table).serialized_size(),
        bottomk=BottomKDistinctSketch("Origin", k=500).summarize(table).serialized_size(),
    )


def operation_phases(sizes: SummarySizes) -> dict[str, list[SimPhase]]:
    """Execution phases per operation, with display-derived sample sizes."""
    n_hist = sampling.practical_histogram_sample_size(V)
    n_cdf = sampling.cdf_sample_size(V, width=H)
    n_quant = sampling.quantile_sample_size(100)
    n_hh = sampling.heavy_hitters_sample_size(20)
    n_heat = sampling.heatmap_sample_size(H // 3, V // 3, 20)

    def scan(columns, size):
        return SimPhase(kind="scan", columns=columns, summary_bytes=size)

    def sample(n, size, columns=1):
        return SimPhase(
            kind="sample", columns=columns, total_samples=n, summary_bytes=size
        )

    def sort(columns, size):
        return SimPhase(kind="sort", columns=columns, summary_bytes=size)

    return {
        # O1-O3: next-items sorts (exact scans over the sort columns).
        "O1": [sort(1, sizes.next_k)],
        "O2": [sort(5, sizes.next_k5)],
        "O3": [sort(1, sizes.next_k)],
        # O4: quantile sample then next-items.
        "O4": [sample(n_quant, sizes.quantile), sort(5, sizes.next_k5)],
        # O5: range scan, then sampled histogram & cdf (concurrent -> one
        # tree whose sample is the max of the two).
        "O5": [scan(1, sizes.range_), sample(max(n_hist, n_cdf), sizes.histogram + sizes.cdf)],
        # O6: filter (scan) + O5.
        "O6": [
            scan(1, 64),
            scan(1, sizes.range_),
            sample(max(n_hist, n_cdf), sizes.histogram + sizes.cdf),
        ],
        # O7: bottom-k distinct scan + sampled string histogram.
        "O7": [scan(1, sizes.bottomk), sample(n_hist, sizes.histogram)],
        # O8: sampling heavy hitters (single sampled tree).
        "O8": [sample(n_hh, sizes.heavy_hitters)],
        # O9: HyperLogLog distinct count (exact scan).
        "O9": [scan(1, sizes.hll)],
        # O10: range + sampled stacked histogram & cdf.
        "O10": [scan(1, sizes.range_), sample(max(n_hist, n_cdf), sizes.stacked + sizes.cdf)],
        # O11: 2-column range + heat map.  At 20 colors and H/3 x V/3 bins
        # the required sample exceeds the data (§4.3's bound is enormous),
        # so the engine streams — which is why O11 ships the most bytes.
        "O11": [scan(2, sizes.range_ * 2), sample(n_heat, sizes.heatmap, columns=2)],
    }


#: Columns each operation touches (for cold-load accounting, Fig 6).
OPERATION_COLUMNS = {
    "O1": 1, "O2": 5, "O3": 1, "O4": 5, "O5": 1, "O6": 1,
    "O7": 1, "O8": 1, "O9": 1, "O10": 2, "O11": 2,
}


def simulate_operation(
    op_id: str,
    cluster: SimCluster,
    model: CostModel,
    sizes: SummarySizes,
    cold: bool = False,
) -> SimResult:
    phases = operation_phases(sizes)[op_id]
    cold_columns = OPERATION_COLUMNS[op_id] if cold else 0
    return simulate_query(cluster, phases, model, cold_columns=cold_columns)


def simulate_spark_operation(
    op_id: str,
    cluster: SimCluster,
    model: CostModel,
    sizes: SummarySizes,
) -> SimResult:
    """The general-purpose baseline under the same cost model.

    Differences from Hillview (§7.1, and our GeneralPurposeEngine):
    * exact computation — the sampled phases become full scans;
    * one complete task result per micropartition is shipped to the driver
      (no tree aggregation), each with ~4 KB of task overhead;
    * no partial results: the first visible result is the final one.
    """
    phases = operation_phases(sizes)[op_id]
    shards = sum(cluster.shards_per_server())
    total = None
    bytes_to_driver = 0
    for i, phase in enumerate(phases):
        exact = SimPhase(
            kind="sort" if phase.kind == "sort" else "scan",
            columns=max(phase.columns, 1),
            summary_bytes=phase.summary_bytes,
        )
        step = simulate_query(cluster, [exact], model, seed=100 + i)
        bytes_to_driver += (phase.summary_bytes + 4096) * shards
        total = step if total is None else total + step
    assert total is not None
    return SimResult(
        first_partial_s=total.total_s,  # nothing visible until completion
        total_s=total.total_s,
        bytes_to_root=bytes_to_driver,
        partials_to_root=shards,
        leaf_tasks=total.leaf_tasks,
    )
