"""The autoscaler control loop: hysteresis, cooldowns, no flapping.

Everything here drives :class:`repro.service.autoscaler.Autoscaler`
through injected metrics and an injected clock — simulated load through
simulated time — so the stability properties (the acceptance criterion:
no decision flapping across >= 3 cooldown windows under oscillating
load) are asserted deterministically, without a process or a socket.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import HillviewError
from repro.service.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    fleet_pressure,
    read_state,
    worker_pressure,
)

CFG = AutoscalerConfig(
    min_workers=1,
    max_workers=4,
    high_watermark=3.0,
    low_watermark=0.5,
    consecutive_ticks=3,
    cooldown_seconds=30.0,
    interval_seconds=5.0,
)


class FakeFleet:
    """A fleet the tests steer: per-tick pressure plus grow/shrink."""

    def __init__(self, size: int = 2, cores: int = 1):
        self.size = size
        self.cores = cores
        self.pressure = 0.0  # queued requests per worker
        self.unreachable = 0
        self.clock = 0.0
        self.actions: list[tuple[str, float]] = []

    def metrics(self) -> list[dict]:
        reports = []
        for i in range(self.size):
            if i < self.unreachable:
                reports.append({"address": f"w{i}", "error": "down"})
            else:
                reports.append({
                    # +1: the probe that produced the snapshot is still
                    # in flight, exactly as the live daemons report it.
                    "inflight": 1 + self.pressure * self.cores,
                    "datasetOps": 0,
                    "cores": self.cores,
                })
        return reports

    def grow(self, count: int) -> None:
        self.size += count
        self.actions.append(("grow", self.clock))

    def shrink(self, count: int) -> None:
        self.size -= count
        self.actions.append(("shrink", self.clock))

    def scaler(self, config: AutoscalerConfig = CFG, **kwargs) -> Autoscaler:
        return Autoscaler(
            self.metrics,
            self.grow,
            self.shrink,
            config=config,
            clock=lambda: self.clock,
            **kwargs,
        )

    def run_ticks(self, scaler: Autoscaler, ticks: int):
        decisions = []
        for _ in range(ticks):
            decisions.append(scaler.tick())
            self.clock += scaler.config.interval_seconds
        return decisions


class TestPressure:
    def test_worker_pressure_discounts_the_probe(self):
        assert worker_pressure({"inflight": 1, "datasetOps": 0, "cores": 2}) == 0.0
        assert worker_pressure({"inflight": 5, "datasetOps": 2, "cores": 2}) == 3.0

    def test_fleet_pressure_skips_unreachable(self):
        mean, reachable = fleet_pressure([
            {"inflight": 5, "cores": 1},
            {"address": "w1", "error": "down"},
        ])
        assert (mean, reachable) == (4.0, 1)
        assert fleet_pressure([{"error": "down"}]) == (0.0, 0)


class TestConfigValidation:
    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError, match="dead band"):
            AutoscalerConfig(low_watermark=3.0, high_watermark=1.0).validated()

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=0).validated()
        with pytest.raises(ValueError):
            AutoscalerConfig(min_workers=3, max_workers=2).validated()


class TestControlLaw:
    def test_grow_needs_consecutive_ticks(self):
        fleet = FakeFleet(size=2)
        scaler = fleet.scaler()
        fleet.pressure = 9
        decisions = fleet.run_ticks(scaler, 3)
        assert [d.action for d in decisions] == ["hold", "hold", "grow"]
        assert fleet.size == 3
        assert "est. scan" in decisions[-1].reason

    def test_one_spike_never_scales(self):
        fleet = FakeFleet(size=2)
        scaler = fleet.scaler()
        fleet.pressure = 9
        fleet.run_ticks(scaler, 2)  # 2/3 of the way to a grow...
        fleet.pressure = 1  # ...then back inside the band: streak resets
        fleet.run_ticks(scaler, 1)
        fleet.pressure = 9
        decisions = fleet.run_ticks(scaler, 2)
        assert fleet.actions == []
        assert all(d.action == "hold" for d in decisions)

    def test_cooldown_spaces_actions(self):
        fleet = FakeFleet(size=1)
        scaler = fleet.scaler()
        fleet.pressure = 9
        fleet.run_ticks(scaler, 12)
        assert [a for a, _ in fleet.actions] == ["grow", "grow"]
        (_, first), (_, second) = fleet.actions
        assert second - first >= CFG.cooldown_seconds

    def test_holds_at_max_and_min(self):
        fleet = FakeFleet(size=4)
        scaler = fleet.scaler()
        fleet.pressure = 9
        decisions = fleet.run_ticks(scaler, 4)
        assert fleet.actions == []
        assert "max_workers" in decisions[-1].reason

        fleet = FakeFleet(size=1)
        scaler = fleet.scaler()
        fleet.pressure = 0
        decisions = fleet.run_ticks(scaler, 4)
        assert fleet.actions == []
        assert "min_workers" in decisions[-1].reason

    def test_degraded_fleet_never_shrinks(self):
        fleet = FakeFleet(size=3)
        fleet.unreachable = 1
        scaler = fleet.scaler()
        fleet.pressure = 0
        decisions = fleet.run_ticks(scaler, 5)
        assert fleet.actions == []
        assert any("degraded" in d.reason for d in decisions)

    def test_fully_unreachable_fleet_holds_blind(self):
        fleet = FakeFleet(size=2)
        fleet.unreachable = 2
        scaler = fleet.scaler()
        decisions = fleet.run_ticks(scaler, 3)
        assert all(d.action == "hold" for d in decisions)
        assert "blind" in decisions[-1].reason

    def test_failed_grow_becomes_hold_and_opens_cooldown(self):
        fleet = FakeFleet(size=2)

        def broken_grow(count: int) -> None:
            raise HillviewError("standby pool exhausted; cannot grow")

        scaler = Autoscaler(
            fleet.metrics, broken_grow, fleet.shrink,
            config=CFG, clock=lambda: fleet.clock,
        )
        fleet.pressure = 9
        decisions = fleet.run_ticks(scaler, 4)
        assert decisions[2].action == "hold"
        assert "grow failed" in decisions[2].reason
        # The failed attempt opened a cooldown: the very next tick must
        # not hammer the broken pool again.
        assert "cooling down" in decisions[3].reason


class TestNoFlapping:
    """The acceptance criterion: oscillating load, >= 3 cooldown
    windows, no flapping."""

    def test_fast_oscillation_produces_zero_actions(self):
        """Load flipping sides every tick never builds a streak: across
        three-plus cooldown windows the fleet size never moves."""
        fleet = FakeFleet(size=2)
        scaler = fleet.scaler()
        windows = 4
        ticks = int(windows * CFG.cooldown_seconds / CFG.interval_seconds)
        for tick in range(ticks):
            fleet.pressure = 9 if tick % 2 == 0 else 0
            fleet.run_ticks(scaler, 1)
        assert fleet.actions == [], (
            f"oscillating load caused resizes: {fleet.actions}"
        )
        assert fleet.size == 2

    def test_slow_oscillation_respects_cooldown_spacing(self):
        """Load swinging slower than the streak threshold may scale,
        but never more than once per cooldown window and never as an
        immediate grow/shrink reversal."""
        fleet = FakeFleet(size=2)
        scaler = fleet.scaler()
        windows = 4
        ticks = int(windows * CFG.cooldown_seconds / CFG.interval_seconds)
        for tick in range(ticks):
            # Period of 8 ticks (40 simulated seconds): long enough to
            # build a 3-tick streak on each side.
            fleet.pressure = 9 if (tick // 4) % 2 == 0 else 0
            fleet.run_ticks(scaler, 1)
        for (_, earlier), (_, later) in zip(
            fleet.actions, fleet.actions[1:]
        ):
            assert later - earlier >= CFG.cooldown_seconds, (
                f"two resizes inside one cooldown window: {fleet.actions}"
            )
        assert 1 <= fleet.size <= 4

    def test_steady_load_reaches_stable_size(self):
        """Steady high load grows to max and then *stays* there."""
        fleet = FakeFleet(size=1)
        scaler = fleet.scaler()
        fleet.pressure = 9
        fleet.run_ticks(scaler, 40)
        assert fleet.size == CFG.max_workers
        grow_count = len([a for a, _ in fleet.actions if a == "grow"])
        assert grow_count == CFG.max_workers - 1
        settle = fleet.run_ticks(scaler, 6)
        assert all(d.action == "hold" for d in settle)


class TestStateFile:
    def test_state_roundtrip(self, tmp_path):
        path = str(tmp_path / "autoscaler.json")
        fleet = FakeFleet(size=1)
        scaler = fleet.scaler(state_path=path)
        fleet.pressure = 9
        fleet.run_ticks(scaler, 3)
        state = read_state(path)
        assert state is not None
        assert state["target"] == 2
        assert state["lastDecision"]["action"] == "grow"
        assert len(state["decisions"]) == 3
        assert state["config"]["cooldown_seconds"] == 30.0

    def test_read_state_degrades_on_garbage(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert read_state(missing) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert read_state(str(bad)) is None
        wrong_shape = tmp_path / "list.json"
        wrong_shape.write_text(json.dumps([1, 2]))
        assert read_state(str(wrong_shape)) is None

    def test_run_max_ticks_and_callback(self):
        fleet = FakeFleet(size=2)
        scaler = fleet.scaler(
            config=AutoscalerConfig(
                max_workers=4, interval_seconds=0.001,
                cooldown_seconds=0.0,
            ),
        )
        seen = []
        ticks = scaler.run(max_ticks=3, on_decision=seen.append)
        assert ticks == 3
        assert len(seen) == 3
