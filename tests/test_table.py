"""Table tests: construction, filtering, derivation, sharding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MissingColumnError, SchemaError
from repro.table.compute import ColumnPredicate
from repro.table.membership import SparseMembership
from repro.table.schema import ContentsKind, Schema, ColumnDescription
from repro.table.table import Table


class TestConstruction:
    def test_from_pydict_infers_kinds(self, small_table):
        schema = small_table.schema
        assert schema.kind("x") is ContentsKind.INTEGER
        assert schema.kind("y") is ContentsKind.DOUBLE
        assert schema.kind("name") is ContentsKind.STRING

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_pydict({"a": [1, 2], "b": [1]})

    def test_duplicate_columns_rejected(self, small_table):
        column = small_table.column("x")
        with pytest.raises(SchemaError):
            Table([column, column])

    def test_empty_tables_rejected(self):
        with pytest.raises(SchemaError):
            Table([])

    def test_cells_metric(self, small_table):
        assert small_table.num_cells == 8 * 3

    def test_missing_column_error_lists_available(self, small_table):
        with pytest.raises(MissingColumnError) as info:
            small_table.column("nope")
        assert "x" in str(info.value)


class TestRowAccess:
    def test_row_dict(self, small_table):
        row = small_table.row(0)
        assert row == {"x": 3, "y": 0.5, "name": "bob"}

    def test_missing_cells_are_none(self, small_table):
        assert small_table.row(3)["x"] is None
        assert small_table.row(2)["y"] is None

    def test_to_pydict_respects_membership(self, small_table):
        filtered = small_table.filter(ColumnPredicate("x", ">=", 4))
        data = filtered.to_pydict()
        assert data["x"] == [5, 4]


class TestFiltering:
    def test_filter_shares_columns(self, small_table):
        filtered = small_table.filter(ColumnPredicate("x", ">", 2))
        assert filtered.column("x") is small_table.column("x")
        assert filtered.num_rows == 3
        assert filtered.universe_size == small_table.universe_size

    def test_filter_chain(self, small_table):
        step1 = small_table.filter(ColumnPredicate("x", ">", 1))
        step2 = step1.filter(ColumnPredicate("name", "==", "alice"))
        assert step2.to_pydict()["x"] == [5, 2]

    def test_filter_mask_alignment(self, small_table):
        filtered = small_table.filter(ColumnPredicate("x", ">", 1))
        mask = np.array([True, False] * (filtered.num_rows // 2) + [True] * (filtered.num_rows % 2))
        again = filtered.filter_mask(mask)
        assert again.num_rows == int(mask.sum())
        with pytest.raises(SchemaError):
            filtered.filter_mask(np.array([True]))

    def test_missing_never_matches(self, small_table):
        filtered = small_table.filter(ColumnPredicate("x", "<", 100))
        assert filtered.num_rows == 7  # one missing x


class TestDerivation:
    def test_derive_rowwise(self, small_table):
        derived = small_table.derive(
            "x2", ContentsKind.INTEGER,
            lambda row: None if row["x"] is None else row["x"] * 2,
        )
        assert derived.to_pydict()["x2"] == [6, 2, 4, None, 10, 8, 2, 4]

    def test_derive_vectorized(self, small_table):
        derived = small_table.derive(
            "ratio",
            ContentsKind.DOUBLE,
            lambda arrays: arrays["x"] / 2.0,
            vectorized=True,
        )
        values = derived.to_pydict()["ratio"]
        assert values[0] == 1.5
        assert values[3] is None  # missing x -> NaN -> missing

    def test_derive_on_filtered_rows_only(self, small_table):
        filtered = small_table.filter(ColumnPredicate("x", ">=", 4))
        derived = filtered.derive(
            "flag", ContentsKind.INTEGER, lambda row: 1
        )
        # Universe positions outside the membership are missing.
        assert derived.column("flag").value(0) is None
        assert derived.to_pydict()["flag"] == [1, 1]

    def test_with_column_validates(self, small_table):
        with pytest.raises(SchemaError):
            small_table.with_column(small_table.column("x"))

    def test_derive_wrong_length_vectorized(self, small_table):
        with pytest.raises(SchemaError):
            small_table.derive(
                "bad", ContentsKind.INTEGER, lambda arrays: [1], vectorized=True
            )


class TestProjectionAndSharding:
    def test_select_columns(self, small_table):
        projected = small_table.select_columns(["name", "x"])
        assert projected.column_names == ["name", "x"]
        assert projected.num_rows == small_table.num_rows

    def test_split_preserves_rows(self, small_table):
        shards = small_table.split(3)
        assert sum(s.num_rows for s in shards) == small_table.num_rows
        ids = {s.shard_id for s in shards}
        assert len(ids) == len(shards)

    def test_split_shares_columns(self, small_table):
        shards = small_table.split(2)
        assert shards[0].column("x") is small_table.column("x")

    def test_split_of_filtered_table(self, small_table):
        filtered = small_table.filter(ColumnPredicate("x", ">", 1))
        shards = filtered.split(2)
        total = sum(s.num_rows for s in shards)
        assert total == filtered.num_rows

    def test_split_more_parts_than_rows(self, small_table):
        shards = small_table.split(100)
        assert sum(s.num_rows for s in shards) == small_table.num_rows
        assert all(s.num_rows > 0 for s in shards)

    def test_concat_roundtrip(self, small_table):
        shards = small_table.split(3)
        rebuilt = Table.concat(shards)
        assert rebuilt.to_pydict() == small_table.to_pydict()

    def test_concat_schema_mismatch(self, small_table):
        other = Table.from_pydict({"z": [1]})
        with pytest.raises(SchemaError):
            Table.concat([small_table, other])


class TestSchema:
    def test_project_and_append(self):
        schema = Schema(
            [
                ColumnDescription("a", ContentsKind.INTEGER),
                ColumnDescription("b", ContentsKind.STRING),
            ]
        )
        assert schema.project(["b"]).names == ["b"]
        extended = schema.append(ColumnDescription("c", ContentsKind.DOUBLE))
        assert extended.names == ["a", "b", "c"]
        with pytest.raises(SchemaError):
            extended.append(ColumnDescription("a", ContentsKind.DOUBLE))

    def test_json_roundtrip(self):
        schema = Schema([ColumnDescription("a", ContentsKind.DATE)])
        assert Schema.from_json_string(schema.to_json_string()) == schema

    def test_kind_requirements(self):
        schema = Schema([ColumnDescription("s", ContentsKind.STRING)])
        with pytest.raises(SchemaError):
            schema.require_numeric("s")
        assert schema.require_string("s").name == "s"

    def test_membership_universe_checked(self, small_table):
        with pytest.raises(SchemaError):
            Table(
                [small_table.column("x")],
                SparseMembership(np.array([0]), 99),
            )
