"""Shard-level work stealing and cache prewarming (self-operating fleet).

The tentpole contract under test: an idle worker may claim pending
shard slices from a straggling peer mid-sketch, and the result bytes
**must not change** — stolen partials fold in global shard order, so a
stolen run, an unstolen run (``REPRO_STEAL=0``), and a single-process
reference all produce identical summaries.  Plus prewarming: a worker
joining via ``grow`` recomputes the donors' hottest memo recipes over
its own slice, so a fresh root's first query hits its memo.

Tier-1 classes run in-process; the tier-2 class spawns real worker
subprocesses, steals over the ``claimSlices``/``stolenPartial`` wire
verbs, and SIGKILLs the thief mid-claim.
"""

from __future__ import annotations

import signal
import threading
import time

import pytest

from tests.conftest import requires_caches
from repro.core.buckets import DoubleBuckets
from repro.data.flights import FlightsSource
from repro.engine.cluster import (
    Cluster,
    StealLedger,
    Worker,
    prewarm_budget_bytes,
    steal_enabled,
)
from repro.engine.local import LocalDataSet
from repro.service.slow import SlowdownSketch
from repro.sketches.histogram import HistogramSketch
from repro.table.table import Table

ROWS = 6_000
PARTITIONS = 12
SOURCE = FlightsSource(ROWS, partitions=PARTITIONS, seed=13)
DISTANCE = DoubleBuckets(0, 3000, 10)


def hist() -> HistogramSketch:
    return HistogramSketch("Distance", DISTANCE)


def reference_bytes(sketch) -> bytes:
    return LocalDataSet(Table.concat(SOURCE.load())).sketch(sketch).to_bytes()


def skewed_cluster() -> Cluster:
    """One 1-core straggler next to a 4-core peer: the peer drains its
    own slice early and (with stealing on) claims the straggler's
    pending shards."""
    return Cluster(
        workers=[Worker("straggler", cores=1), Worker("fast", cores=4)],
        aggregation_interval=0.02,
    )


class TestStealSwitch:
    def test_on_by_default_and_env_opt_out(self, monkeypatch):
        monkeypatch.delenv("REPRO_STEAL", raising=False)
        assert steal_enabled()
        monkeypatch.setenv("REPRO_STEAL", "0")
        assert not steal_enabled()
        monkeypatch.setenv("REPRO_STEAL", "1")
        assert steal_enabled()

    def test_prewarm_budget_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PREWARM_BYTES", raising=False)
        assert prewarm_budget_bytes() > 0
        monkeypatch.setenv("REPRO_PREWARM_BYTES", "0")
        assert prewarm_budget_bytes() == 0
        monkeypatch.setenv("REPRO_PREWARM_BYTES", "123")
        assert prewarm_budget_bytes() == 123


class TestStealLedger:
    def test_cede_cancels_trailing_unstarted_suffix(self):
        """Only a contiguous *trailing* run of unstarted shards may be
        ceded: the victim's own fold then covers a clean prefix, which
        is what keeps the global fold order byte-identical."""
        import concurrent.futures

        gate = threading.Event()
        started = threading.Event()

        def task(i):
            started.set()
            gate.wait(5.0)
            return i

        worker = Worker("victim", cores=1)
        shards = [Table.from_pydict({"x": [i]}) for i in range(6)]
        with concurrent.futures.ThreadPoolExecutor(1) as pool:
            futures = [pool.submit(task, i) for i in range(6)]
            started.wait(5.0)
            ledger = StealLedger(worker, futures, shards)
            parcels = ledger.cede(3)
            gate.set()
        # Unconfigured worker: slice 0 of 1, so global index == position.
        positions = [p.global_index for p in parcels]
        assert positions == [3, 4, 5], (
            "cede must take the trailing suffix in ascending order"
        )
        assert worker.slices_donated == 3

    def test_cede_empty_when_everything_started(self):
        import concurrent.futures

        worker = Worker("victim", cores=1)
        with concurrent.futures.ThreadPoolExecutor(2) as pool:
            futures = [pool.submit(lambda: 1) for _ in range(3)]
            concurrent.futures.wait(futures)
            ledger = StealLedger(worker, futures, [None] * 3)
            assert ledger.cede(8) == []
        assert worker.slices_donated == 0


class TestInProcessStealing:
    def test_byte_identity_on_vs_off(self, monkeypatch):
        """The acceptance invariant: stealing changes wall-clock, never
        bytes."""
        monkeypatch.setenv("REPRO_STEAL_AFTER", "0.05")
        slow = SlowdownSketch(hist(), per_shard_seconds=0.03)

        monkeypatch.setenv("REPRO_STEAL", "0")
        off_cluster = skewed_cluster()
        off = off_cluster.load(SOURCE).run(slow).value.to_bytes()
        assert all(w.slices_stolen == 0 for w in off_cluster.workers)

        monkeypatch.setenv("REPRO_STEAL", "1")
        on_cluster = skewed_cluster()
        on = on_cluster.load(SOURCE).run(slow).value.to_bytes()

        fast = on_cluster.workers[1]
        straggler = on_cluster.workers[0]
        assert fast.slices_stolen > 0, "the idle peer never stole"
        assert straggler.slices_donated > 0
        assert on == off == reference_bytes(slow), (
            "stealing changed the summary bytes"
        )

    def test_balanced_fleet_does_not_steal(self, monkeypatch):
        """The straggler gate: a balanced fleet finishing within the
        grace window must not shed slices (stolen shards would dodge
        their home worker's memo for no latency win)."""
        monkeypatch.setenv("REPRO_STEAL", "1")
        monkeypatch.delenv("REPRO_STEAL_AFTER", raising=False)
        cluster = Cluster(num_workers=2, cores_per_worker=2,
                          aggregation_interval=0.02)
        cluster.load(SOURCE).run(hist())
        assert all(w.slices_stolen == 0 for w in cluster.workers)


class TestPrewarming:
    @requires_caches
    def test_grow_prewarms_and_fresh_root_first_query_hits(self, monkeypatch):
        """Acceptance: a prewarmed joiner serves its first query with a
        nonzero memo hit rate.  The *fresh root* matters — on the grown
        root the computation cache answers repeats before any worker is
        consulted, so only a cold root proves the joiner's memo is warm."""
        monkeypatch.delenv("REPRO_PREWARM_BYTES", raising=False)
        cluster = Cluster(
            workers=[Worker("a", cores=2), Worker("b", cores=2)],
            aggregation_interval=0.02,
        )
        ds = cluster.load(SOURCE)
        for _ in range(3):  # memoize + accumulate recipe hits
            ds.run(hist())
        joiner = Worker("joiner", cores=2)
        assert cluster.grow([joiner]) == 3
        assert joiner.entries_warmed > 0, "grow did not prewarm the joiner"

        hits_before = joiner.memo.stats().hits
        fresh = Cluster(workers=cluster.workers, aggregation_interval=0.02)
        fresh_run = fresh.load(SOURCE).run(hist())
        assert joiner.memo.stats().hits > hits_before, (
            "the fresh root's first query missed the prewarmed memo"
        )
        assert fresh_run.value.to_bytes() == reference_bytes(hist())

    def test_prewarm_disabled_by_zero_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREWARM_BYTES", "0")
        cluster = Cluster(
            workers=[Worker("a", cores=2), Worker("b", cores=2)],
            aggregation_interval=0.02,
        )
        ds = cluster.load(SOURCE)
        ds.run(hist())
        joiner = Worker("joiner", cores=2)
        cluster.grow([joiner])
        assert joiner.entries_warmed == 0

    @requires_caches
    def test_export_ranks_by_hits_and_respects_budget(self):
        """The donor exports its hottest recipes first and stops at the
        byte budget (always at least one)."""
        worker = Worker("donor", cores=2)
        cluster = Cluster(workers=[worker], aggregation_interval=0.02)
        ds = cluster.load(SOURCE)
        hot = hist()
        cold = HistogramSketch("Distance", DoubleBuckets(0, 3000, 5))
        lineage = cluster.lineage(ds.dataset_id)
        for _ in range(4):
            # Drive the worker directly: the root computation cache
            # would otherwise absorb the repeats before the memo sees
            # them.
            worker_runs = list(
                worker.sketch_partials(ds.dataset_id, hot, lineage)
            )
            assert worker_runs
        list(worker.sketch_partials(ds.dataset_id, cold, lineage))

        everything = worker.export_hot_entries(1 << 30)
        assert len(everything) == 2
        assert everything[0]["hits"] >= everything[-1]["hits"]
        tight = worker.export_hot_entries(1)
        assert len(tight) == 1, "a tiny budget still exports one entry"
        assert tight[0]["hits"] == everything[0]["hits"]

    @requires_caches
    def test_import_skips_bad_recipes(self):
        """One malformed recipe must not poison the batch: the importer
        recomputes what it can and skips the rest."""
        donor = Worker("donor", cores=2)
        cluster = Cluster(workers=[donor], aggregation_interval=0.02)
        ds = cluster.load(SOURCE)
        list(donor.sketch_partials(
            ds.dataset_id, hist(), cluster.lineage(ds.dataset_id)
        ))
        exported = donor.export_hot_entries(1 << 30)
        assert exported
        bad = {"dataset": "no-such", "sketch": {"type": "nope"}, "lineage": []}
        importer = Worker("importer", cores=2)
        warmed = importer.import_entries([bad] + exported)
        assert warmed == len(exported)
        assert importer.entries_warmed == len(exported)


@pytest.mark.tier2
class TestWireStealingTier2:
    """Stealing over the binary worker wire, with real processes."""

    def test_remote_byte_identity_and_sigkill_thief_mid_claim(
        self, monkeypatch
    ):
        """A 1-core straggler and a 4-core thief: stealing happens over
        ``claimSlices``/``stolenPartial``, then the thief is SIGKILLed
        *after donations began* — the root summarizes any orphaned
        parcels itself, respawns the thief for its own slice, and the
        final bytes still match the single-process reference."""
        from repro.engine.remote import ProcessCluster

        monkeypatch.setenv("REPRO_STEAL", "1")
        monkeypatch.setenv("REPRO_STEAL_AFTER", "0.05")
        sketch = SlowdownSketch(hist(), per_shard_seconds=0.06)
        cluster = ProcessCluster(
            num_workers=2,
            cores_per_worker=(1, 4),
            aggregation_interval=0.02,
        )
        try:
            dataset = cluster.load(SOURCE)
            victim, thief = cluster.workers

            killed = threading.Event()

            def kill_thief_once_stealing() -> None:
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    try:
                        snap = victim.metrics_snapshot()
                    except Exception:  # noqa: BLE001 — mid-kill races
                        return
                    if snap.get("slicesDonated", 0) > 0:
                        cluster.kill_worker_process(1, signal.SIGKILL)
                        killed.set()
                        return
                    time.sleep(0.01)

            watcher = threading.Thread(target=kill_thief_once_stealing)
            watcher.start()
            run = dataset.run(sketch)
            watcher.join(timeout=30.0)

            assert killed.is_set(), (
                "no donation observed: the steal path never engaged"
            )
            assert run.value.to_bytes() == reference_bytes(sketch), (
                "bytes diverged after SIGKILLing the thief mid-claim"
            )
        finally:
            cluster.close()

    def test_remote_steal_matches_steal_off(self, monkeypatch):
        """Same skewed fleet, no chaos: on vs off, identical bytes and
        a nonzero stolen count."""
        from repro.engine.remote import ProcessCluster

        monkeypatch.setenv("REPRO_STEAL_AFTER", "0.05")
        sketch = SlowdownSketch(hist(), per_shard_seconds=0.03)
        results: dict[str, bytes] = {}
        stolen = 0
        for mode in ("0", "1"):
            monkeypatch.setenv("REPRO_STEAL", mode)
            cluster = ProcessCluster(
                num_workers=2,
                cores_per_worker=(1, 4),
                aggregation_interval=0.02,
            )
            try:
                run = cluster.load(SOURCE).run(sketch)
                results[mode] = run.value.to_bytes()
                if mode == "1":
                    stolen = sum(
                        w.get("slicesStolen", 0)
                        for w in cluster.metrics_snapshot()["workers"]
                    )
            finally:
                cluster.close()
        assert stolen > 0, "no slices were stolen over the wire"
        assert results["0"] == results["1"] == reference_bytes(sketch)
