"""PCA correlation sketch and save-table sketch tests."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.serialization import Decoder, Encoder
from repro.sketches.pca import CorrelationSketch, CorrelationSummary
from repro.sketches.save import SaveStatus, SaveTableSketch
from repro.storage import columnar, csv_io
from repro.table.table import Table


@pytest.fixture(scope="module")
def correlated():
    rng = np.random.default_rng(21)
    n = 20_000
    a = rng.normal(0, 1, n)
    b = 2.0 * a + rng.normal(0, 0.3, n)
    c = rng.normal(5, 2, n)
    return Table.from_pydict({"a": a.tolist(), "b": b.tolist(), "c": c.tolist()})


class TestCorrelationSketch:
    def test_matches_numpy_corrcoef(self, correlated):
        sketch = CorrelationSketch(["a", "b", "c"])
        summary = sketch.summarize(correlated)
        data = np.column_stack(
            [correlated.column(c).data for c in ("a", "b", "c")]
        )
        expected = np.corrcoef(data.T)
        assert np.allclose(summary.correlation(), expected, atol=1e-9)

    def test_merge_equals_whole(self, correlated):
        sketch = CorrelationSketch(["a", "b", "c"])
        whole = sketch.summarize(correlated)
        merged = sketch.merge_all(
            [sketch.summarize(s) for s in correlated.split(6)]
        )
        assert merged.count == whole.count
        assert np.allclose(merged.correlation(), whole.correlation())

    def test_principal_components(self, correlated):
        summary = CorrelationSketch(["a", "b", "c"]).summarize(correlated)
        values, vectors = summary.principal_components(2)
        # a and b are nearly collinear: the first component captures both.
        assert values[0] > values[1]
        assert abs(vectors[0][0]) > 0.5 and abs(vectors[0][1]) > 0.5
        assert summary.explained_variance(2) > 0.95

    def test_missing_rows_excluded(self):
        table = Table.from_pydict(
            {"a": [1.0, None, 3.0], "b": [2.0, 5.0, None]}
        )
        summary = CorrelationSketch(["a", "b"]).summarize(table)
        assert summary.count == 1

    def test_sampled_correlation_close(self, correlated):
        exact = CorrelationSketch(["a", "b", "c"]).summarize(correlated)
        sampled = CorrelationSketch(["a", "b", "c"], rate=0.2, seed=3).summarize(
            correlated
        )
        assert np.allclose(sampled.correlation(), exact.correlation(), atol=0.05)

    def test_needs_two_columns(self):
        with pytest.raises(ValueError):
            CorrelationSketch(["a"])

    def test_component_count_validated(self, correlated):
        summary = CorrelationSketch(["a", "b"]).summarize(correlated)
        with pytest.raises(ValueError):
            summary.principal_components(3)

    def test_serialization(self, correlated):
        summary = CorrelationSketch(["a", "b", "c"]).summarize(correlated)
        enc = Encoder()
        summary.encode(enc)
        back = CorrelationSummary.decode(Decoder(enc.to_bytes()))
        assert back.count == summary.count
        assert np.allclose(back.correlation(), summary.correlation())


class TestSaveSketch:
    def test_saves_shards_hvc(self, small_table, tmp_path):
        directory = str(tmp_path / "out")
        sketch = SaveTableSketch(directory, "hvc")
        shards = small_table.split(3)
        status = sketch.merge_all([sketch.summarize(s) for s in shards])
        assert status.ok
        assert status.rows_written == small_table.num_rows
        assert len(status.files) == len(shards)
        total = 0
        for path in status.files:
            total += columnar.read_table(path).num_rows
        assert total == small_table.num_rows

    def test_saves_csv(self, small_table, tmp_path):
        directory = str(tmp_path / "csvout")
        status = SaveTableSketch(directory, "csv").summarize(small_table)
        assert status.ok
        back = csv_io.read_csv(status.files[0])
        assert back.num_rows == small_table.num_rows

    def test_error_captured_not_raised(self, small_table, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        sketch = SaveTableSketch(str(blocked), "hvc")
        status = sketch.summarize(small_table)
        assert not status.ok
        assert status.errors

    def test_merge_combines_errors(self):
        left = SaveStatus(files=["a"], rows_written=5)
        right = SaveStatus(errors=["disk full"])
        sketch = SaveTableSketch("/nonexistent")
        merged = sketch.merge(left, right)
        assert merged.rows_written == 5
        assert not merged.ok

    def test_invalid_format(self):
        with pytest.raises(ValueError):
            SaveTableSketch("/tmp", "parquet")

    def test_serialization(self):
        status = SaveStatus(files=["x"], rows_written=3, errors=["boom"])
        enc = Encoder()
        status.encode(enc)
        back = SaveStatus.decode(Decoder(enc.to_bytes()))
        assert back.files == ["x"]
        assert back.errors == ["boom"]
