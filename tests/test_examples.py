"""Smoke tests: every example script runs cleanly end to end.

Examples are the library's living documentation; a broken one is a
documentation bug.  Each runs in its own interpreter (as a user would run
it) and must exit 0 and print its key landmark output.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

#: script -> substrings its stdout must contain.
LANDMARKS = {
    "quickstart.py": ["histogram", "Trellis of histograms", "actions performed"],
    "flights_exploration.py": ["Q1", "Q20"],
    "progressive_visualization.py": ["partial", "cancel"],
    "fault_tolerance_demo.py": ["redo log", "identical"],
    "server_logs.py": ["errors", "latency"],
    "web_session.py": ["session root handle", "rebuilt from lineage", "JSON"],
}


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("script", sorted(LANDMARKS))
def test_example_runs(script):
    result = _run(script)
    assert result.returncode == 0, result.stderr[-2000:]
    for landmark in LANDMARKS[script]:
        assert landmark.lower() in result.stdout.lower(), (
            f"{script} output missing {landmark!r}"
        )


def test_every_example_is_covered():
    """A new example must be added to LANDMARKS (and thereby smoke-tested)."""
    scripts = {
        name
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py") and not name.startswith("_")
    }
    assert scripts == set(LANDMARKS)
