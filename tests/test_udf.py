"""Expression-based user-defined map columns (§5.6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.dataset import ExpressionMap
from repro.table.table import Table
from repro.table.udf import ALLOWED_FUNCTIONS, ColumnExpression, ExpressionError


@pytest.fixture(scope="module")
def table() -> Table:
    return Table.from_pydict(
        {
            "a": [1.0, 2.0, None, 4.0],
            "b": [10, 20, 30, 40],
            "s": ["x", "y", "z", "w"],
        }
    )


class TestValidation:
    @pytest.mark.parametrize(
        "expression",
        [
            "a + b",
            "a / b - 2",
            "-a ** 2",
            "log1p(abs(a))",
            "where(a > 2, a, b)",
            "minimum(a, b) % 3",
            "(a <= b) + 0.0",
        ],
    )
    def test_accepts_whitelisted_grammar(self, expression):
        compiled = ColumnExpression(expression)
        assert compiled.expression == expression

    @pytest.mark.parametrize(
        "expression,message",
        [
            ("__import__('os')", "whitelisted functions"),
            ("a.real", "not allowed"),
            ("a[0]", "not allowed"),
            ("lambda: 1", "not allowed"),
            ("[v for v in a]", "not allowed"),
            ("a and b", "not allowed"),
            ("a if b else 0", "not allowed"),
            ("'text'", "numeric constants"),
            ("open('x')", "whitelisted functions"),
            ("where(a > 0, a, b, out=a)", "keyword"),
            ("1 + 2", "references no columns"),
            ("a +", "invalid expression"),
        ],
    )
    def test_rejects_off_whitelist(self, expression, message):
        with pytest.raises(ExpressionError, match=message):
            ColumnExpression(expression)

    def test_collects_column_names(self):
        compiled = ColumnExpression("log(a) + b * Distance")
        assert compiled.columns == ["Distance", "a", "b"]
        # Whitelisted function names are not columns.
        assert "log" not in compiled.columns


class TestEvaluation:
    def test_arithmetic(self):
        compiled = ColumnExpression("a * 2 + b")
        out = compiled.evaluate(
            {"a": np.array([1.0, 2.0]), "b": np.array([10.0, 20.0])}
        )
        assert out.tolist() == [12.0, 24.0]

    def test_nan_propagates(self):
        compiled = ColumnExpression("a + 1")
        out = compiled.evaluate({"a": np.array([1.0, np.nan])})
        assert out[0] == 2.0 and np.isnan(out[1])

    def test_division_by_zero_is_quiet(self):
        compiled = ColumnExpression("a / b")
        out = compiled.evaluate(
            {"a": np.array([1.0]), "b": np.array([0.0])}
        )
        assert np.isinf(out[0])

    def test_unknown_column_rejected(self):
        compiled = ColumnExpression("nope + 1")
        with pytest.raises(ExpressionError, match="unknown column"):
            compiled.evaluate({"a": np.array([1.0])})

    def test_string_column_rejected(self):
        compiled = ColumnExpression("s + 1")
        with pytest.raises(ExpressionError, match="not numeric"):
            compiled.evaluate({"s": ["x", "y"]})

    def test_scalar_result_rejected(self):
        # `a * 0 + 1` broadcasts fine; something collapsing shape must fail.
        compiled = ColumnExpression("where(a > 0, 1.0, 0.0)")
        out = compiled.evaluate({"a": np.array([1.0, -1.0])})
        assert out.tolist() == [1.0, 0.0]


class TestExpressionMap:
    def test_derives_column_at_shards(self, table):
        derived = ExpressionMap("total", "a + b").apply(table)
        assert derived.schema.names[-1] == "total"
        assert derived.column("total").value(0) == 11.0
        # Missing input -> missing output.
        assert derived.column("total").value(2) is None

    def test_spec_carries_source_text(self):
        table_map = ExpressionMap("r", "a / b")
        assert table_map.spec() == "Expression('r','a / b')"

    def test_partition_invariance(self, table):
        whole = ExpressionMap("t", "a * b").apply(table)
        parts = [ExpressionMap("t", "a * b").apply(s) for s in table.split(2)]
        merged = Table.concat(parts)
        assert np.array_equal(
            merged.column("t").numeric_values(merged.members.indices()),
            whole.column("t").numeric_values(whole.members.indices()),
            equal_nan=True,
        )

    def test_invalid_expression_rejected_at_construction(self):
        with pytest.raises(ExpressionError):
            ExpressionMap("bad", "exec('x')")


class TestThroughTheStack:
    def test_spreadsheet_derive_expression(self, flights_cluster):
        from repro.spreadsheet import Spreadsheet

        _, dataset = flights_cluster
        sheet = Spreadsheet(dataset, seed=4)
        gained = sheet.derive_expression("Gained", "DepDelay - ArrDelay")
        stats = gained.column_summary("Gained")
        assert stats.present_count > 0
        chart = gained.histogram("Gained", with_cdf=False)
        assert chart.summary.total_in_range > 0

    def test_derive_through_rpc_and_replay(self):
        from repro.engine.cluster import Cluster
        from repro.engine.rpc import RpcRequest
        from repro.engine.web import WebServer
        from repro.storage.loader import TableSource

        rng = np.random.default_rng(5)
        table = Table.from_pydict(
            {
                "x": rng.uniform(1, 10, 2_000).tolist(),
                "y": rng.uniform(1, 10, 2_000).tolist(),
            }
        )
        web = WebServer(Cluster(num_workers=2))
        root = web.load(TableSource([table], shards_per_table=4))
        [ack] = web.execute(
            RpcRequest(1, root, "derive", {"name": "r", "expression": "x / y"})
        )
        handle = ack.payload["handle"]
        [schema_reply] = web.execute(RpcRequest(2, handle, "schema"))
        names = [c["name"] for c in schema_reply.payload["columns"]]
        assert names == ["x", "y", "r"]
        # Soft-state eviction replays the expression from its source text.
        web.evict(handle)
        web.evict(root)
        replies = list(
            web.execute(
                RpcRequest(
                    3,
                    handle,
                    "sketch",
                    {"sketch": {"type": "moments", "column": "r"}},
                )
            )
        )
        assert replies[-1].kind == "complete"
        assert replies[-1].payload["presentCount"] == 2_000

    def test_bad_expression_is_error_reply(self):
        from repro.engine.cluster import Cluster
        from repro.engine.rpc import RpcRequest
        from repro.engine.web import WebServer
        from repro.storage.loader import TableSource

        table = Table.from_pydict({"x": [1.0, 2.0]})
        web = WebServer(Cluster(num_workers=1))
        root = web.load(TableSource([table]))
        [reply] = web.execute(
            RpcRequest(1, root, "derive", {"name": "e", "expression": "exec('x')"})
        )
        assert reply.kind == "error"


class TestFunctionWhitelist:
    def test_every_listed_function_evaluates(self):
        values = {"a": np.array([0.5, 2.0, 9.0])}
        two_arg = {"minimum", "maximum"}
        three_arg = {"where", "clip"}
        for name in ALLOWED_FUNCTIONS:
            if name in three_arg:
                expression = f"{name}(a, 0.0, 1.0)"
            elif name in two_arg:
                expression = f"{name}(a, 1.0)"
            else:
                expression = f"{name}(a)"
            out = ColumnExpression(expression).evaluate(values)
            assert out.shape == (3,), name
