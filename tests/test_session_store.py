"""Shared session stores: resume a session id on any root of the tier."""

from __future__ import annotations

import json

import pytest

from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.engine.rpc import RpcRequest
from repro.service import (
    InMemorySessionStore,
    SessionManager,
    SessionRecord,
    SqliteSessionStore,
)

#: Serializable-by-description, so its recipe can cross roots (§5.7).
SOURCE = FlightsSource(2_000, partitions=8, seed=7)

HIST = {
    "type": "histogram",
    "column": "Distance",
    "buckets": {"type": "double", "min": 0, "max": 3000, "count": 9},
}


def execute(session, request_id, target, method, args=None):
    replies = list(
        session.web.execute(RpcRequest(request_id, target, method, args or {}))
    )
    terminal = replies[-1]
    assert terminal.kind in ("ack", "complete"), terminal.error
    return terminal


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        yield InMemorySessionStore()
    else:
        backed = SqliteSessionStore(str(tmp_path / "sessions.db"))
        yield backed
        backed.close()


def manager_over_fresh_cluster(store) -> SessionManager:
    """One root of the tier: its own cluster, the shared store."""
    return SessionManager(
        Cluster(num_workers=2, cores_per_worker=2), store=store
    )


class TestStores:
    def test_record_round_trip(self, store):
        record = SessionRecord(
            session_id="alpha",
            created_at=123.0,
            last_active=456.0,
            counter=7,
            handles=[{"handle": "obj-1", "source": {"kind": "flights", "rows": 5}}],
        )
        store.put(record)
        back = store.get("alpha")
        assert back is not None
        assert back.to_json() == record.to_json()
        assert store.list_ids() == ["alpha"]
        assert store.delete("alpha") is True
        assert store.get("alpha") is None
        assert store.delete("alpha") is False

    def test_put_replaces(self, store):
        store.put(SessionRecord("s", 1.0, 1.0, counter=1))
        store.put(SessionRecord("s", 1.0, 2.0, counter=9))
        assert store.get("s").counter == 9
        assert store.list_ids() == ["s"]


class TestSqliteStore:
    def test_two_handles_share_one_file(self, tmp_path):
        """Two roots pointing at the same path see each other's writes."""
        path = str(tmp_path / "tier.db")
        root_a, root_b = SqliteSessionStore(path), SqliteSessionStore(path)
        try:
            root_a.put(SessionRecord("roam", 1.0, 1.0))
            assert root_b.get("roam") is not None
            assert root_b.delete("roam") is True
            assert root_a.get("roam") is None
        finally:
            root_a.close()
            root_b.close()

    def test_corrupt_record_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "corrupt.db")
        store = SqliteSessionStore(path)
        try:
            store._conn.execute(
                "INSERT INTO sessions VALUES (?, ?, ?)", ("bad", "{not json", 0.0)
            )
            store._conn.commit()
            assert store.get("bad") is None  # dropped, client starts fresh
            assert store.list_ids() == []
        finally:
            store.close()


class TestResumeOnAnotherRoot:
    def test_session_resumes_with_handles_rebuilt_by_lineage(self, store):
        """The tier's core promise: a session created on root A — load,
        filter, derive — resumes by id on root B (its own cluster, the
        shared store) and answers byte-identically, every handle rebuilt
        by §5.7 replay."""
        root_a = manager_over_fresh_cluster(store)
        session_a = root_a.get_or_create("laptop")
        root_handle = session_a.web.load(SOURCE)
        derived = execute(
            session_a,
            1,
            root_handle,
            "filter",
            {
                "predicate": {
                    "type": "column",
                    "column": "Distance",
                    "op": ">",
                    "value": 500.0,
                }
            },
        ).payload["handle"]
        reference = execute(
            session_a, 2, derived, "sketch", {"sketch": HIST}
        ).payload

        root_b = manager_over_fresh_cluster(store)
        session_b = root_b.get_or_create("laptop")
        assert session_b is not session_a
        assert root_b.sessions_resumed == 1
        # Both handles resolve on the new root, through lazy rebuild.
        assert set(session_b.web.handles) >= {root_handle, derived}
        resumed = execute(
            session_b, 3, derived, "sketch", {"sketch": HIST}
        ).payload
        assert json.dumps(resumed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_resumed_session_mints_non_colliding_handles(self, store):
        root_a = manager_over_fresh_cluster(store)
        session_a = root_a.get_or_create("minty")
        handle = session_a.web.load(SOURCE)

        root_b = manager_over_fresh_cluster(store)
        session_b = root_b.get_or_create("minty")
        fresh = session_b.web.load(FlightsSource(1_000, partitions=4, seed=9))
        assert fresh != handle

    def test_unknown_id_is_minted_not_resumed(self, store):
        root = manager_over_fresh_cluster(store)
        session = root.get_or_create("brand-new")
        assert session.web.handles == []
        assert root.sessions_resumed == 0

    def test_close_and_expiry_delete_the_record(self, store):
        class FakeClock:
            t = 1000.0

            def now(self):
                return self.t

        clock = FakeClock()
        root = SessionManager(
            Cluster(num_workers=1, cores_per_worker=1),
            idle_ttl_seconds=10.0,
            expire_ttl_seconds=20.0,
            clock=clock.now,
            store=store,
        )
        session = root.get_or_create("doomed")
        session.web.load(SOURCE)
        assert store.get("doomed") is not None
        clock.t += 21.0
        assert root.expire() == ["doomed"]
        assert store.get("doomed") is None, "expired session must not resume"

        root.get_or_create("leaver").web.load(SOURCE)
        assert store.get("leaver") is not None
        assert root.close("leaver") is True
        assert store.get("leaver") is None

    def test_expiry_on_one_root_spares_a_session_live_elsewhere(self, store):
        """Root A expiring its stale local copy must not delete the store
        record another root has refreshed since — only the root that
        wrote the record last may expire it tier-wide."""

        class FakeClock:
            t = 1000.0

            def now(self):
                return self.t

        clock_a, clock_b = FakeClock(), FakeClock()
        root_a = SessionManager(
            Cluster(num_workers=1, cores_per_worker=1),
            idle_ttl_seconds=10.0,
            expire_ttl_seconds=20.0,
            clock=clock_a.now,
            store=store,
        )
        root_b = SessionManager(
            Cluster(num_workers=1, cores_per_worker=1),
            idle_ttl_seconds=10.0,
            expire_ttl_seconds=20.0,
            clock=clock_b.now,
            store=store,
        )
        root_a.get_or_create("roamer").web.load(SOURCE)
        # The client moves to root B, which refreshes the record (mint).
        root_b.get_or_create("roamer").web.load(
            FlightsSource(1_000, partitions=4, seed=3)
        )
        clock_a.t += 21.0
        assert root_a.expire() == ["roamer"]
        assert store.get("roamer") is not None, (
            "root A deleted a record root B had refreshed"
        )
        # Root B wrote last, so its expiry retires the session tier-wide.
        clock_b.t += 21.0
        assert root_b.expire() == ["roamer"]
        assert store.get("roamer") is None

    def test_unserializable_handles_are_skipped_not_fatal(self, store):
        """An in-memory TableSource cannot cross roots; its handle (and
        descendants) are simply absent from the stored recipe book."""
        from repro.storage.loader import TableSource
        from repro.table.table import Table

        root_a = manager_over_fresh_cluster(store)
        session_a = root_a.get_or_create("mixed")
        local_only = session_a.web.load(
            TableSource([Table.from_pydict({"x": [1.0, 2.0]})])
        )
        portable = session_a.web.load(SOURCE)

        root_b = manager_over_fresh_cluster(store)
        session_b = root_b.get_or_create("mixed")
        assert portable in session_b.web.handles
        assert local_only not in session_b.web.handles
