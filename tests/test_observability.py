"""Observability tests: tracing, metrics, query profiles, structured logs.

The plane's core guarantees:

* **byte identity** — untraced envelopes encode exactly the pre-tracing
  wire format (frozen here as literal strings), so turning the feature
  off really is free;
* **span parenting** — one trace context flows client -> scheduler ->
  engine -> worker streams, and every recorded span chains back to the
  request's root span;
* **fault survival** — revive-and-retry and a mid-sketch placement
  restart stay inside the same trace (retries appear as extra spans,
  the query still answers exactly);
* **profiles** — ``profile: true`` gets a per-stage breakdown on the
  terminal reply and nothing anywhere else;
* **metrics** — the registry aggregates and renders, and the
  ``metricsSnapshot``/``traceDump`` RPCs expose both planes.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.buckets import DoubleBuckets
from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.engine.rpc import NO_PAYLOAD, RpcReply, RpcRequest
from repro.engine.placement import StalePlacementError
from repro.errors import WorkerUnavailableError
from repro.obs.logs import configure_logging, log_event, reset_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    RECORDER,
    TraceContext,
    chrome_trace,
    current_context,
    record_span,
    serve_span,
    span,
    spans_to_jsonl,
    trace_enabled,
    use_context,
)
from repro.service import ServiceClient, ServiceServer
from repro.sketches.histogram import HistogramSketch
from repro.storage.loader import TableSource

BUCKETS = DoubleBuckets(0, 100, 10)


@pytest.fixture(autouse=True)
def clean_slate():
    RECORDER.clear()
    yield
    RECORDER.clear()


# ---------------------------------------------------------------------------
# Byte identity: tracing off == the pre-tracing wire format, exactly
# ---------------------------------------------------------------------------
class TestWireByteIdentity:
    def test_untraced_request_is_byte_identical(self):
        request = RpcRequest(7, "obj-1", "rowCount", {})
        assert request.to_json() == (
            '{"requestId": 7, "target": "obj-1", '
            '"method": "rowCount", "args": {}}'
        )

    def test_unprofiled_reply_is_byte_identical(self):
        reply = RpcReply(3, "complete", progress=1.0, payload={"rows": 5})
        assert reply.to_json() == (
            '{"requestId": 3, "kind": "complete", '
            '"progress": 1.0, "payload": {"rows": 5}}'
        )

    def test_ack_reply_is_byte_identical(self):
        assert RpcReply(1, "ack").to_json() == (
            '{"requestId": 1, "kind": "ack", "progress": 1.0}'
        )

    def test_trace_field_round_trips_when_present(self):
        ctx = TraceContext.new_root()
        request = RpcRequest(9, "t", "sketch", {"a": 1}, trace=ctx.to_json())
        back = RpcRequest.from_json(request.to_json())
        assert back.trace == ctx.to_json()
        assert TraceContext.from_json(back.trace) == ctx

    def test_profile_field_round_trips_when_present(self):
        reply = RpcReply(4, "complete", payload=None, profile={"totalSeconds": 0.5})
        back = RpcReply.from_json(reply.to_json())
        assert back.profile == {"totalSeconds": 0.5}

    def test_pre_tracing_envelopes_still_decode(self):
        request = RpcRequest.from_json(
            '{"requestId": 2, "target": "x", "method": "schema", "args": {}}'
        )
        assert request.trace is None
        reply = RpcReply.from_json('{"requestId": 2, "kind": "ack"}')
        assert reply.profile is None
        assert reply.payload is NO_PAYLOAD


# ---------------------------------------------------------------------------
# Trace contexts and spans
# ---------------------------------------------------------------------------
class TestTraceContext:
    def test_root_has_no_parent_and_children_chain(self):
        root = TraceContext.new_root()
        assert root.parent_id is None
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id

    def test_to_json_omits_absent_parent(self):
        root = TraceContext.new_root()
        assert set(root.to_json()) == {"traceId", "spanId"}
        assert set(root.child().to_json()) == {"traceId", "spanId", "parentId"}

    def test_from_json_tolerates_garbage(self):
        assert TraceContext.from_json(None) is None
        assert TraceContext.from_json("nope") is None
        assert TraceContext.from_json({"traceId": "only"}) is None

    def test_trace_enabled_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not trace_enabled()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert trace_enabled()
        monkeypatch.setenv("REPRO_TRACE", "off")
        assert not trace_enabled()


class TestSpans:
    def test_span_is_a_no_op_without_context(self):
        with span("orphan"):
            pass
        assert len(RECORDER) == 0

    def test_nested_spans_parent_correctly(self):
        root = TraceContext.new_root()
        with use_context(root):
            with span("outer") as outer_ctx:
                with span("inner"):
                    pass
        spans = RECORDER.spans(root.trace_id)
        by_name = {s["name"]: s for s in spans}
        assert by_name["outer"]["parentId"] == root.span_id
        assert by_name["inner"]["parentId"] == outer_ctx.span_id
        assert current_context() is None  # restored on exit

    def test_serve_span_records_the_propagated_context_itself(self):
        ctx = TraceContext.new_root().child()
        with serve_span(ctx, "worker.sketch", worker="w0"):
            pass
        (recorded,) = RECORDER.spans(ctx.trace_id)
        assert recorded["spanId"] == ctx.span_id
        assert recorded["parentId"] == ctx.parent_id
        assert recorded["attrs"]["worker"] == "w0"

    def test_record_span_is_retroactive(self):
        root = TraceContext.new_root()
        child = record_span("queue", root, 123.0, 0.25, depth=3)
        (recorded,) = RECORDER.spans(root.trace_id)
        assert recorded["spanId"] == child.span_id
        assert recorded["parentId"] == root.span_id
        assert recorded["start"] == 123.0
        assert recorded["duration"] == 0.25

    def test_chrome_trace_export(self):
        root = TraceContext.new_root()
        with use_context(root):
            with span("work"):
                pass
        trace = chrome_trace(RECORDER.spans(root.trace_id))
        kinds = {e["ph"] for e in trace["traceEvents"]}
        assert kinds == {"M", "X"}
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["name"] == "work"
        assert complete[0]["dur"] >= 1.0  # never a zero-width slice
        # one line per span, each valid JSON
        lines = spans_to_jsonl(RECORDER.spans(root.trace_id)).splitlines()
        assert all(json.loads(line)["traceId"] == root.trace_id for line in lines)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("c", "a counter").inc(3)
        registry.counter("c", "a counter").inc(2)
        registry.gauge("g", "a gauge", callback=lambda: 7)
        h = registry.histogram("h", "a histogram")
        for v in (0.001, 0.002, 0.004, 0.008):
            h.observe(v)
        snap = registry.snapshot()
        assert snap["c"] == 5
        assert snap["g"] == 7.0
        assert snap["h"]["count"] == 4
        assert 0.001 <= snap["h"]["p50"] <= 0.008

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("queries", "queries served").inc()
        registry.gauge("queue.depth", "queue depth", callback=lambda: 2)
        text = registry.render_prometheus()
        assert "# TYPE repro_queries counter" in text
        assert "repro_queries 1" in text
        assert "repro_queue_depth 2" in text


# ---------------------------------------------------------------------------
# Structured logs
# ---------------------------------------------------------------------------
class TestStructuredLogs:
    @pytest.fixture(autouse=True)
    def silent_after(self):
        yield
        reset_logging()

    def test_off_by_default(self):
        sink = io.StringIO()
        log_event("ignored")
        assert sink.getvalue() == ""

    def test_json_records_carry_trace_ids(self):
        sink = io.StringIO()
        configure_logging(json_mode=True, level="info", stream=sink)
        root = TraceContext.new_root()
        with use_context(root):
            log_event("session.create", session="s-1")
        record = json.loads(sink.getvalue())
        assert record["event"] == "session.create"
        assert record["session"] == "s-1"
        assert record["traceId"] == root.trace_id

    def test_level_filtering(self):
        sink = io.StringIO()
        configure_logging(json_mode=True, level="warning", stream=sink)
        log_event("quiet", level="info")
        log_event("loud", level="warning")
        lines = sink.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "loud"


# ---------------------------------------------------------------------------
# Engine-level: traces survive revival and placement restarts
# ---------------------------------------------------------------------------
@pytest.fixture
def small_cluster(medium_numeric):
    cluster = Cluster(num_workers=2, cores_per_worker=2)
    loaded = cluster.load(TableSource([medium_numeric], shards_per_table=8))
    yield cluster, loaded, medium_numeric
    cluster.close()


class TestTraceSurvivesFaults:
    def test_revive_and_retry_stays_in_one_trace(self, small_cluster):
        cluster, loaded, table = small_cluster
        victim = cluster.workers[0]
        original = victim.sketch_partials
        state = {"failed": False}

        def dying(*args, **kwargs):
            if not state["failed"]:
                state["failed"] = True
                raise WorkerUnavailableError("simulated mid-sketch death")
            return original(*args, **kwargs)

        victim.sketch_partials = dying
        cluster.revive_worker = lambda index: True

        ctx = TraceContext.new_root()
        with use_context(ctx):
            summary = loaded.sketch(HistogramSketch("value", BUCKETS))
        exact = HistogramSketch("value", BUCKETS).summarize(table)
        assert np.array_equal(summary.counts, exact.counts)

        streams = [
            s
            for s in RECORDER.spans(ctx.trace_id)
            if s["name"] == "worker.stream"
            and s["attrs"]["worker"] == victim.name
        ]
        attempts = sorted(s["attrs"]["attempt"] for s in streams)
        assert attempts == [1, 2]  # the retry is a sibling span, same trace

    def test_mid_sketch_placement_restart_stays_in_one_trace(
        self, small_cluster
    ):
        cluster, loaded, table = small_cluster
        victim = cluster.workers[1]
        original = victim.sketch_partials
        state = {"failed": False}

        def stale(*args, **kwargs):
            if not state["failed"]:
                state["failed"] = True
                raise StalePlacementError("fleet rebalanced mid-sketch")
            return original(*args, **kwargs)

        victim.sketch_partials = stale
        cluster.resync_placement = lambda observed=None: True

        ctx = TraceContext.new_root()
        with use_context(ctx):
            summary = loaded.sketch(HistogramSketch("value", BUCKETS))
        exact = HistogramSketch("value", BUCKETS).summarize(table)
        assert np.array_equal(summary.counts, exact.counts)

        fanouts = [
            s
            for s in RECORDER.spans(ctx.trace_id)
            if s["name"] == "cluster.fanout"
        ]
        assert len(fanouts) == 2  # the restarted fan-out, same trace


# ---------------------------------------------------------------------------
# Service-level: the client->root wire, profiles, and the obs RPCs
# ---------------------------------------------------------------------------
HIST_SPEC = {
    "type": "histogram",
    "column": "Distance",
    "buckets": {"type": "double", "min": 0, "max": 6000, "count": 12},
}


@pytest.fixture(scope="module")
def obs_server():
    server = ServiceServer(
        Cluster(num_workers=2, cores_per_worker=2, aggregation_interval=0.02),
        default_source=FlightsSource(8_000, partitions=8, seed=3),
        max_concurrent=4,
    )
    server.start_background()
    yield server
    server.close()


@pytest.fixture
def obs_client(obs_server):
    with ServiceClient(*obs_server.address) as client:
        yield client


def drain(pending):
    final = None
    for reply in pending.replies():
        final = reply
    return final


class TestServiceTracing:
    def test_spans_cover_every_stage_and_parent_to_the_root(self, obs_client):
        handle = obs_client.load()
        ctx = TraceContext.new_root()
        final = drain(
            obs_client.submit("sketch", handle, {"sketch": HIST_SPEC}, trace=ctx)
        )
        assert final.kind == "complete"

        spans = obs_client.trace_dump(ctx.trace_id)
        names = {s["name"] for s in spans}
        assert {
            "scheduler.queue",
            "query.sketch",
            "cluster.ensure",
            "cluster.fanout",
            "worker.stream",
        } <= names
        assert all(s["traceId"] == ctx.trace_id for s in spans)

        # Parenting: the propagated request context is the one root span;
        # every other span chains back to a recorded span.
        ids = {s["spanId"] for s in spans}
        roots = [s for s in spans if s["parentId"] is None]
        assert [s["spanId"] for s in roots] == [ctx.span_id]
        for s in spans:
            if s["parentId"] is not None:
                assert s["parentId"] in ids

    def test_trace_dump_filters_by_trace_id(self, obs_client):
        handle = obs_client.load()
        first, second = TraceContext.new_root(), TraceContext.new_root()
        drain(obs_client.submit("sketch", handle, {"sketch": HIST_SPEC}, trace=first))
        drain(obs_client.submit("sketch", handle, {"sketch": HIST_SPEC}, trace=second))
        spans = obs_client.trace_dump(first.trace_id)
        assert spans
        assert all(s["traceId"] == first.trace_id for s in spans)

    def test_untraced_requests_record_no_spans(
        self, obs_client, monkeypatch
    ):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        RECORDER.clear()
        handle = obs_client.load()
        final = drain(obs_client.submit("sketch", handle, {"sketch": HIST_SPEC}))
        assert final.kind == "complete"
        assert final.profile is None
        assert len(RECORDER) == 0

    def test_env_switch_originates_traces_server_side(
        self, obs_client, monkeypatch
    ):
        # The scheduler originates a context when REPRO_TRACE is on even
        # though the client sent a bare envelope.
        monkeypatch.setenv("REPRO_TRACE", "1")
        RECORDER.clear()
        handle = obs_client.load()
        final = drain(obs_client.submit("sketch", handle, {"sketch": HIST_SPEC}))
        assert final.kind == "complete"
        assert any(
            s["name"] == "query.sketch" for s in RECORDER.spans()
        )

    def test_profile_rides_only_the_terminal_reply(self, obs_client):
        handle = obs_client.load()
        # A bucket count no other test uses: a computation-cache hit
        # would legitimately skip the fan-out (and its profile stages).
        cold_spec = dict(HIST_SPEC, buckets=dict(HIST_SPEC["buckets"], count=17))
        replies = list(
            obs_client.submit(
                "sketch", handle, {"sketch": cold_spec, "profile": True}
            ).replies()
        )
        final = replies[-1]
        assert final.kind == "complete"
        assert all(r.profile is None for r in replies[:-1])
        profile = final.profile
        assert profile is not None
        for key in (
            "queueWaitSeconds",
            "firstPartialSeconds",
            "totalSeconds",
            "ensureSeconds",
            "fanoutSeconds",
            "mergeSeconds",
            "workers",
        ):
            assert key in profile
        assert len(profile["workers"]) == 2
        for stat in profile["workers"]:
            assert stat["attempts"] >= 1
            assert stat["shards"] >= 1

    def test_metrics_snapshot_reports_fleet_state(self, obs_client):
        handle = obs_client.load()
        drain(obs_client.submit("sketch", handle, {"sketch": HIST_SPEC}))
        snap = obs_client.metrics_snapshot()
        assert snap["type"] == "metricsSnapshot"
        assert snap["scheduler"]["completed"] >= 1
        workers = snap["cluster"]["workers"]
        assert len(workers) == 2
        for worker in workers:
            assert "shardsSummarized" in worker
            assert 0.0 <= worker["storeHitRate"] <= 1.0
            assert 0.0 <= worker["memoHitRate"] <= 1.0
        registry = snap["registry"]
        assert registry["web.first_partial_seconds"]["count"] >= 1
        assert "scheduler.queued" in registry

    def test_prometheus_exposition(self, obs_client):
        text = obs_client.metrics_snapshot(fmt="prometheus")["text"]
        assert "# TYPE" in text
        assert "scheduler_queued" in text


# ---------------------------------------------------------------------------
# The root->worker wire: spans parent across a real process boundary
# ---------------------------------------------------------------------------
@pytest.mark.tier2
class TestWorkerWireTracing:
    def test_spans_parent_across_the_worker_wire(self):
        from repro.engine.remote import ProcessCluster

        cluster = ProcessCluster(
            num_workers=1, cores_per_worker=2, aggregation_interval=0.01
        )
        try:
            loaded = cluster.load(FlightsSource(2_000, partitions=4, seed=5))
            ctx = TraceContext.new_root()
            with use_context(ctx):
                summary = loaded.sketch(
                    HistogramSketch("Distance", DoubleBuckets(0, 6000, 12))
                )
            assert summary.counts.sum() > 0

            root_spans = RECORDER.spans(ctx.trace_id)
            stream_ids = {
                s["spanId"]
                for s in root_spans
                if s["name"] == "worker.stream"
            }
            assert stream_ids

            daemon_spans = cluster.trace_dump(ctx.trace_id)
            sketch_spans = [
                s for s in daemon_spans if s["name"] == "worker.sketch"
            ]
            assert sketch_spans
            for s in sketch_spans:
                # The channel stamped a child of the root-side stream span
                # on the envelope; the daemon recorded exactly that child.
                assert s["traceId"] == ctx.trace_id
                assert s["parentId"] in stream_ids
                assert s["service"].startswith("worker-")
        finally:
            cluster.close()

    def test_fleet_metrics_reach_a_live_daemon(self):
        import subprocess
        import sys

        from repro.engine.remote import (
            ProcessCluster,
            _spawn_env,
            query_fleet_metrics,
        )

        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "worker",
                "--listen", "127.0.0.1:0",
                "--name", "obs-daemon", "--cores", "2",
            ],
            env=_spawn_env(),
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            announcement = json.loads(proc.stdout.readline())
            address = ("127.0.0.1", int(announcement["port"]))
            cluster = ProcessCluster(
                addresses=[address], aggregation_interval=0.01
            )
            try:
                loaded = cluster.load(FlightsSource(2_000, partitions=4, seed=5))
                loaded.sketch(
                    HistogramSketch("Distance", DoubleBuckets(0, 6000, 6))
                )
                (snap,) = [w.metrics_snapshot() for w in cluster.workers]
                assert snap["name"] == "obs-daemon"
                assert snap["shardsSummarized"] >= 1
                assert snap["inflight"] >= 0
                assert "registry" in snap
            finally:
                cluster.close()
            # The sessionless path `repro fleet top` uses.
            (report,) = query_fleet_metrics([address])
            assert "error" not in report
            assert report["name"] == "obs-daemon"
            assert report["requestsServed"] >= 1
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
