"""Shared fixtures: small deterministic tables, flights data, clusters."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "tier2: distributed correctness tests that spawn worker processes "
        "(also run by the scheduled CI chaos job)",
    )

from repro.data.flights import FlightsSource, generate_flights
from repro.engine.cache import caches_disabled
from repro.engine.cluster import Cluster
from repro.storage.loader import TableSource
from repro.table.table import Table

#: Shared guard for tests that assert *cache hits happen*: the CI matrix
#: leg running with REPRO_DISABLE_CACHES=1 makes every memoization tier
#: pass-through by design, so only byte-identity assertions remain
#: meaningful there.  Import from tests.conftest — do not redefine.
requires_caches = pytest.mark.skipif(
    caches_disabled(), reason="memoization disabled via REPRO_DISABLE_CACHES"
)


@pytest.fixture
def small_table() -> Table:
    """A tiny mixed-kind table with missing values, used across tests."""
    return Table.from_pydict(
        {
            "x": [3, 1, 2, None, 5, 4, 1, 2],
            "y": [0.5, 1.5, None, 2.5, 3.5, 0.5, 1.5, 2.5],
            "name": ["bob", "alice", "carol", None, "alice", "dave", "bob", "alice"],
        }
    )


@pytest.fixture(scope="session")
def medium_numeric() -> Table:
    """50k uniform rows in one numeric column plus a category column."""
    rng = np.random.default_rng(7)
    n = 50_000
    return Table.from_pydict(
        {
            "value": rng.uniform(0, 100, n).tolist(),
            "group": [f"g{int(v)}" for v in rng.integers(0, 12, n)],
        }
    )


@pytest.fixture(scope="session")
def flights() -> Table:
    """A session-scoped synthetic flights table (60k rows)."""
    return generate_flights(60_000, seed=42)


@pytest.fixture
def cluster() -> Cluster:
    """A 3-worker cluster with a fast aggregation cadence for tests."""
    return Cluster(num_workers=3, cores_per_worker=2, aggregation_interval=0.01)


@pytest.fixture
def flights_cluster(cluster: Cluster):
    """A cluster pre-loaded with 40k flights in 12 partitions."""
    dataset = cluster.load(FlightsSource(40_000, partitions=12, seed=5))
    return cluster, dataset


def make_shards(table: Table, parts: int) -> list[Table]:
    """Split a table into shards (helper used by mergeability tests)."""
    return table.split(parts)


@pytest.fixture
def table_source():
    """Factory: wrap tables in a TableSource."""

    def build(table: Table, shards: int = 4) -> TableSource:
        return TableSource([table], shards_per_table=shards)

    return build
