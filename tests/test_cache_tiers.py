"""The multi-tier memoization subsystem (§5.4).

One cache interface from worker partials to the multi-root tier:

* :class:`MemoCache` semantics — byte budgets, TTL/LRU, stats, prefix
  invalidation, the ``REPRO_DISABLE_CACHES`` pass-through switch, and the
  locking/TTL regression on ``__contains__``/``__len__``;
* the worker tier — two roots (two ``Cluster`` objects) over one shared
  worker set: a deterministic sketch computed for root A is served to
  root B from the workers' memo caches with zero shard scans;
* the invalidation invariant — evicting a dataset drops its dependent
  entries at every tier, and recomputation is byte-identical;
* cache-key hygiene — non-deterministic sketches are never cacheable and
  wire round-trips preserve cache keys exactly, for every registered
  sketch type;
* the periodic sweep — the paper's "unused for 2 hours → purged"
  behavior on workers and worker daemons;
* session-store compaction — ``purge_expired`` on both stores and the
  session manager's sweep wiring.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import DoubleBuckets
from repro.data.flights import FlightsSource
from repro.engine.cache import (
    KEY_SEP,
    ComputationCache,
    DataCache,
    MemoCache,
    caches_disabled,
)
from repro.engine.cluster import Cluster, Worker
from repro.engine.rpc import SKETCH_BUILDERS, sketch_from_json, sketch_to_json
from repro.sketches.histogram import HistogramSketch
from repro.storage.loader import TableSource

import repro.service.slow  # noqa: F401 — registers the "slow" sketch type

from tests.conftest import requires_caches

BUCKETS = DoubleBuckets(0, 3000, 10)
SOURCE = FlightsSource(4_000, partitions=8, seed=3)


class _Sized:
    """A value with a fixed serialized size (drives byte budgets)."""

    def __init__(self, size: int):
        self.size = size

    def serialized_size(self) -> int:
        return self.size


# ---------------------------------------------------------------------------
# The shared interface
# ---------------------------------------------------------------------------
class TestMemoCache:
    def test_byte_budget_evicts_lru_first(self):
        cache: MemoCache[_Sized] = MemoCache(
            max_entries=100,
            max_bytes=100,
            sizer=lambda v: v.serialized_size(),
        )
        cache.put("a", _Sized(40))
        cache.put("b", _Sized(40))
        cache.get("a")  # a becomes MRU
        cache.put("c", _Sized(40))  # 120 bytes: b (LRU) must go
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.current_bytes == 80
        assert cache.evictions == 1

    def test_replacing_an_entry_reaccounts_bytes(self):
        cache: MemoCache[_Sized] = MemoCache(
            max_entries=10, max_bytes=1000, sizer=lambda v: v.serialized_size()
        )
        cache.put("a", _Sized(100))
        cache.put("a", _Sized(30))
        assert cache.current_bytes == 30
        assert len(cache) == 1

    def test_invalidate_prefix_drops_only_that_dataset(self):
        cache: MemoCache[int] = MemoCache(max_entries=10)
        cache.put(f"ds-1{KEY_SEP}hist", 1)
        cache.put(f"ds-1{KEY_SEP}moments", 2)
        cache.put(f"ds-2{KEY_SEP}hist", 3)
        assert cache.invalidate_prefix("ds-1" + KEY_SEP) == 2
        assert cache.get(f"ds-1{KEY_SEP}hist") is None
        assert cache.get(f"ds-2{KEY_SEP}hist") == 3
        assert cache.invalidations == 2

    def test_stats_snapshot(self):
        clock = [0.0]
        cache: MemoCache[int] = MemoCache(
            max_entries=10, ttl_seconds=5.0, clock=lambda: clock[0], name="t"
        )
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats.name == "t"
        assert stats.hits == 1 and stats.misses == 1
        assert stats.entries == 1
        clock[0] = 10.0
        assert cache.stats().entries == 0  # expired entries are not live

    def test_disable_switch_is_pass_through(self, monkeypatch):
        cache: MemoCache[int] = MemoCache(max_entries=10, disableable=True)
        always_on: MemoCache[int] = MemoCache(max_entries=10)
        monkeypatch.setenv("REPRO_DISABLE_CACHES", "1")
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        # Non-disableable caches (the worker shard store) keep working.
        always_on.put("a", 1)
        assert always_on.get("a") == 1
        monkeypatch.setenv("REPRO_DISABLE_CACHES", "0")
        cache.put("a", 2)
        assert cache.get("a") == 2


class TestDataCacheRegression:
    """The satellite fix: ``__contains__``/``__len__`` used to read
    ``_entries`` without the lock, and ``__contains__`` reported
    TTL-expired entries as present."""

    def test_contains_applies_ttl(self):
        clock = [0.0]
        cache: DataCache[int] = DataCache(
            max_entries=10, ttl_seconds=5.0, clock=lambda: clock[0]
        )
        cache.put("a", 1)
        assert "a" in cache
        clock[0] = 10.0
        assert "a" not in cache, "expired entry reported as present"
        # ...and it is indeed unreachable through get().
        assert cache.get("a") is None

    def test_len_counts_live_entries_only(self):
        clock = [0.0]
        cache: DataCache[int] = DataCache(
            max_entries=10, ttl_seconds=5.0, clock=lambda: clock[0]
        )
        cache.put("a", 1)
        cache.put("b", 2)
        clock[0] = 3.0
        cache.put("c", 3)
        clock[0] = 7.0  # a and b expired, c alive
        assert len(cache) == 1

    def test_contains_takes_the_lock(self):
        cache: DataCache[int] = DataCache(max_entries=4)
        cache.put("a", 1)
        # The lock must be free after every public call (no deadlock) and
        # __contains__ must acquire it: holding the lock blocks membership.
        assert cache._lock.acquire(timeout=1)
        try:
            import threading

            result: list[bool] = []
            probe = threading.Thread(target=lambda: result.append("a" in cache))
            probe.start()
            probe.join(timeout=0.2)
            assert probe.is_alive(), "__contains__ did not take the lock"
        finally:
            cache._lock.release()
        probe.join(timeout=2)
        assert result == [True]


class TestComputationCacheInterface:
    @requires_caches
    def test_byte_accounting_and_dataset_invalidation(self):
        cache = ComputationCache(max_entries=100)
        cache.put("ds-1", "hist", _Sized(100))
        cache.put("ds-1", "cdf", _Sized(50))
        cache.put("ds-2", "hist", _Sized(25))
        assert cache.current_bytes == 175
        assert cache.invalidate_dataset("ds-1") == 2
        assert cache.current_bytes == 25
        assert cache.get("ds-2", "hist") is not None

    @requires_caches
    def test_real_eviction_under_byte_budget(self):
        cache = ComputationCache(max_entries=100, max_bytes=120)
        for i in range(5):
            cache.put("ds", f"k{i}", _Sized(50))
        assert len(cache) <= 3
        assert cache.current_bytes <= 120


# ---------------------------------------------------------------------------
# The worker tier: cross-root warm hits over shared workers
# ---------------------------------------------------------------------------
@pytest.fixture
def shared_workers():
    return [Worker(f"w{i}", cores=2) for i in range(3)]


@pytest.fixture
def two_roots(shared_workers):
    """Two independent roots over one worker set — the in-process
    analogue of two ``ServiceServer`` roots sharing a daemon fleet."""
    root_a = Cluster(workers=shared_workers, aggregation_interval=0.01)
    root_b = Cluster(workers=shared_workers, aggregation_interval=0.01)
    return root_a, root_b


class TestWorkerMemoTier:
    @requires_caches
    def test_cross_root_warm_hit_zero_shard_scans(self, two_roots, shared_workers):
        root_a, root_b = two_roots
        ds_a = root_a.load(SOURCE)
        ds_b = root_b.load(SOURCE)
        assert ds_a.dataset_id == ds_b.dataset_id  # content-addressed
        sketch = HistogramSketch("Distance", BUCKETS)
        cold = ds_a.run(sketch)
        scans_after_cold = [w.shards_summarized for w in shared_workers]
        warm = ds_b.run(sketch)
        assert [w.shards_summarized for w in shared_workers] == scans_after_cold, (
            "the cross-root warm run scanned shards"
        )
        assert not warm.cache_hit  # root B's own computation cache was cold
        assert warm.worker_cache_hits == len(shared_workers)
        assert warm.value.to_bytes() == cold.value.to_bytes()

    @requires_caches
    def test_same_root_second_run_hits_root_tier(self, two_roots):
        root_a, _ = two_roots
        dataset = root_a.load(SOURCE)
        sketch = HistogramSketch("Distance", BUCKETS)
        cold = dataset.run(sketch)
        warm = dataset.run(sketch)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.bytes_received == 0
        assert warm.value.to_bytes() == cold.value.to_bytes()

    def test_non_deterministic_sketch_never_memoized(self, two_roots, shared_workers):
        root_a, root_b = two_roots
        ds_a = root_a.load(SOURCE)
        ds_b = root_b.load(SOURCE)
        sampled = HistogramSketch("Distance", BUCKETS, rate=0.5, seed=7)
        first = ds_a.run(sampled)
        before = [w.shards_summarized for w in shared_workers]
        second = ds_b.run(sampled)
        assert [w.shards_summarized for w in shared_workers] != before
        assert second.worker_cache_hits == 0 and not second.cache_hit
        # Same seed + same shard ids -> identical anyway (§5.8), which is
        # exactly why correctness never depends on the cache tiers.
        assert first.value.to_bytes() == second.value.to_bytes()

    @requires_caches
    def test_memo_keyed_by_shard_slice(self):
        """A worker re-used under a different slice assignment must not
        serve partials computed over its old slice."""
        worker = Worker("w", cores=2)
        solo = Cluster(workers=[worker], aggregation_interval=0.01)
        dataset = solo.load(SOURCE)
        sketch = HistogramSketch("Distance", BUCKETS)
        dataset.run(sketch)
        key_full = worker._memo_key(dataset.dataset_id, sketch.cache_key())
        assert key_full in worker.memo
        worker.configure(1, 4, 0.01)
        key_sliced = worker._memo_key(dataset.dataset_id, sketch.cache_key())
        assert key_sliced != key_full
        assert key_sliced not in worker.memo

    @requires_caches
    def test_cancelled_runs_are_not_memoized(self, two_roots):
        from repro.engine.progress import CancellationToken

        root_a, _ = two_roots
        dataset = root_a.load(SOURCE)
        sketch = HistogramSketch("Distance", BUCKETS)
        token = CancellationToken()
        token.cancel()
        list(dataset.sketch_stream(sketch, token))
        for worker in root_a.workers:
            assert len(worker.memo) == 0, "a cancelled run was memoized"

    @requires_caches
    def test_worker_crash_clears_memo_and_replay_is_identical(
        self, two_roots, shared_workers
    ):
        root_a, root_b = two_roots
        dataset = root_a.load(SOURCE)
        sketch = HistogramSketch("Distance", BUCKETS)
        cold = dataset.run(sketch)
        root_a.kill_worker(0)
        assert len(shared_workers[0].memo) == 0
        root_a.computation_cache.clear()
        replayed = dataset.run(sketch)
        assert replayed.value.to_bytes() == cold.value.to_bytes()


class TestEvictionInvalidatesEveryTier:
    @requires_caches
    def test_evict_dataset_drops_all_dependent_entries(
        self, two_roots, shared_workers
    ):
        root_a, root_b = two_roots
        ds_a = root_a.load(SOURCE)
        ds_b = root_b.load(SOURCE)
        sketch = HistogramSketch("Distance", BUCKETS)
        cold = ds_a.run(sketch)
        assert ds_a.total_rows == 4_000
        ds_b.run(sketch)  # warms root B's tier too
        assert len(root_a.computation_cache) == 1
        assert root_a.cached_row_count(ds_a.dataset_id) == 4_000
        assert all(len(w.memo) == 1 for w in shared_workers)

        root_a.evict_dataset(ds_a.dataset_id)

        # Every tier of root A and the shared workers is clean.
        assert len(root_a.computation_cache) == 0
        assert root_a.cached_row_count(ds_a.dataset_id) is None
        assert all(len(w.memo) == 0 for w in shared_workers)
        # Recomputation replays lineage and is byte-identical.
        scans_before = [w.shards_summarized for w in shared_workers]
        recomputed = ds_a.run(sketch)
        assert [w.shards_summarized for w in shared_workers] != scans_before
        assert recomputed.worker_cache_hits == 0
        assert recomputed.value.to_bytes() == cold.value.to_bytes()

    @requires_caches
    def test_single_worker_eviction_invalidates_that_worker_only(
        self, two_roots, shared_workers
    ):
        root_a, _ = two_roots
        dataset = root_a.load(SOURCE)
        sketch = HistogramSketch("Distance", BUCKETS)
        dataset.run(sketch)
        root_a.evict_dataset(dataset.dataset_id, worker_index=0)
        assert len(shared_workers[0].memo) == 0
        assert len(shared_workers[1].memo) == 1
        # The root tier survives a partial eviction: the dataset still
        # exists; only one worker's soft copy went away.
        assert len(root_a.computation_cache) == 1


# ---------------------------------------------------------------------------
# Cache-key hygiene: every registered sketch type
# ---------------------------------------------------------------------------
from tests.test_engine_equivalence import SKETCH_SPECS  # noqa: E402

#: One spec per registered wire type, including the side-effecting "save".
ALL_SPECS = dict(SKETCH_SPECS)
ALL_SPECS["save"] = {"type": "save", "directory": "/tmp/unused", "format": "hvc"}


class TestCacheKeyHygiene:
    def test_specs_cover_every_registered_builder(self):
        assert set(ALL_SPECS) >= set(SKETCH_BUILDERS)

    @pytest.mark.parametrize("kind", sorted(ALL_SPECS))
    def test_non_deterministic_implies_no_cache_key(self, kind):
        sketch = sketch_from_json(ALL_SPECS[kind])
        if not sketch.deterministic:
            assert sketch.cache_key() is None, (
                f"{kind}: non-deterministic sketches must never be cacheable"
            )

    @given(rate=st.floats(0.01, 0.99), seed=st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_sampled_variants_are_never_cacheable(self, rate, seed):
        """Every sampled-capable spec, re-keyed to a genuine sampling
        rate, must refuse a cache key (the §5.4 invariant)."""
        for kind in ("histogram", "cdf", "heatmap", "stacked", "quantile"):
            spec = dict(ALL_SPECS[kind])
            spec["rate"] = rate
            spec["seed"] = seed
            sketch = sketch_from_json(spec)
            assert not sketch.deterministic
            assert sketch.cache_key() is None

    @pytest.mark.parametrize("kind", sorted(ALL_SPECS))
    def test_wire_round_trip_preserves_cache_key(self, kind):
        sketch = sketch_from_json(ALL_SPECS[kind])
        round_tripped = sketch_from_json(sketch_to_json(sketch))
        assert round_tripped.cache_key() == sketch.cache_key(), (
            f"{kind}: cache key changed across a wire round-trip"
        )
        assert round_tripped.deterministic == sketch.deterministic


# ---------------------------------------------------------------------------
# The periodic sweep (satellite: purge_stale actually runs)
# ---------------------------------------------------------------------------
class TestWorkerSweep:
    def test_worker_sweep_purges_stale_store_and_memo(self):
        clock = [0.0]
        worker = Worker(
            "w", cores=1, cache_ttl_seconds=100.0, clock=lambda: clock[0]
        )
        cluster = Cluster(workers=[worker], aggregation_interval=0.01)
        dataset = cluster.load(TableSource(SOURCE.load(), shards_per_table=1))
        dataset.run(HistogramSketch("Distance", BUCKETS))
        assert len(worker.store) >= 1
        clock[0] = 200.0
        purged = worker.sweep_caches()
        assert purged >= 1
        assert len(worker.store) == 0
        assert len(worker.memo) == 0

    def test_cluster_sweep_covers_root_tiers(self):
        cluster = Cluster(num_workers=2, cores_per_worker=1)
        # Root tiers use an infinite TTL: the sweep must be a safe no-op.
        dataset = cluster.load(SOURCE)
        dataset.run(HistogramSketch("Distance", BUCKETS))
        assert cluster.sweep_caches() == 0
        if not caches_disabled():
            assert len(cluster.computation_cache) == 1

    def test_worker_server_periodic_sweep_thread(self):
        from repro.engine.remote import WorkerServer

        clock = [0.0]
        server = WorkerServer(
            name="sweeper", cores=1, cache_sweep_interval_seconds=0.05
        )
        # Swap in TTL'd caches driven by a fake clock.
        server.worker.store.ttl_seconds = 10.0
        server.worker.store._clock = lambda: clock[0]
        server.worker.store.put("ds", [])
        server._start_sweeper()
        try:
            clock[0] = 50.0
            deadline = time.monotonic() + 5.0
            # len() is TTL-aware and reports 0 immediately; the sweeper's
            # purge counter shows the entry was actually *dropped*.
            while time.monotonic() < deadline and server.cache_entries_purged == 0:
                time.sleep(0.02)
            assert server.cache_entries_purged >= 1
            assert len(server.worker.store) == 0
        finally:
            server._shutdown.set()

    def test_sweep_caches_rpc(self):
        """The on-demand daemon sweep, over the real wire."""
        import threading

        from repro.engine.remote import ProcessCluster

        cluster = ProcessCluster(
            num_workers=1, cores_per_worker=1, aggregation_interval=0.01
        )
        try:
            dataset = cluster.load(SOURCE)
            dataset.run(HistogramSketch("Distance", BUCKETS))
            proxy = cluster.workers[0]
            stats = proxy.cache_stats()
            assert stats["store"]["entries"] >= 1
            assert proxy.sweep_remote_caches() == 0  # nothing stale yet
        finally:
            cluster.close()


# ---------------------------------------------------------------------------
# Session-store compaction (satellite)
# ---------------------------------------------------------------------------
class TestSessionStoreCompaction:
    @pytest.mark.parametrize("backend", ["memory", "sqlite"])
    def test_purge_expired_drops_only_stale_records(self, backend, tmp_path):
        from repro.service.session_store import (
            InMemorySessionStore,
            SessionRecord,
            SqliteSessionStore,
        )

        store = (
            InMemorySessionStore()
            if backend == "memory"
            else SqliteSessionStore(str(tmp_path / "tier.db"))
        )
        now = time.time()
        store.put(SessionRecord("old", now - 5000, now - 5000))
        store.put(SessionRecord("fresh", now, now))
        if backend == "sqlite":
            # Backdate the row stamp the DELETE filters on (put() stamps
            # "now"; a genuinely old record was written long ago).
            with store._lock:
                store._conn.execute(
                    "UPDATE sessions SET updated_at = ? WHERE session_id = ?",
                    (now - 5000, "old"),
                )
                store._conn.commit()
        assert store.purge_expired(3600.0) == 1
        assert store.list_ids() == ["fresh"]
        assert store.purge_expired(3600.0) == 0
        store.close()

    def test_manager_sweep_compacts_the_store(self):
        from repro.service.session_store import InMemorySessionStore, SessionRecord
        from repro.service.sessions import SessionManager

        store = InMemorySessionStore()
        now = time.time()
        store.put(SessionRecord("abandoned", now - 9000, now - 9000))
        manager = SessionManager(
            Cluster(num_workers=1, cores_per_worker=1),
            store=store,
            store_ttl_seconds=3600.0,
        )
        assert manager.sweep() == 0  # no handles to evict...
        assert store.list_ids() == []  # ...but the store was compacted
        assert manager.store_records_purged == 1

    def test_manager_purge_is_throttled(self):
        from repro.service.session_store import InMemorySessionStore, SessionRecord
        from repro.service.sessions import SessionManager

        store = InMemorySessionStore()
        manager = SessionManager(
            Cluster(num_workers=1, cores_per_worker=1),
            store=store,
            store_ttl_seconds=3600.0,
        )
        manager.sweep()
        now = time.time()
        store.put(SessionRecord("late", now - 9000, now - 9000))
        # Within the refresh window the purge must not re-run.
        assert manager.purge_store() == 0
        assert store.list_ids() == ["late"]

    def test_no_ttl_means_no_compaction(self):
        from repro.service.session_store import InMemorySessionStore, SessionRecord
        from repro.service.sessions import SessionManager

        store = InMemorySessionStore()
        now = time.time()
        store.put(SessionRecord("ancient", now - 10**6, now - 10**6))
        manager = SessionManager(
            Cluster(num_workers=1, cores_per_worker=1), store=store
        )
        manager.sweep()
        assert store.list_ids() == ["ancient"]


# ---------------------------------------------------------------------------
# The disable switch end to end (the CI matrix leg's contract)
# ---------------------------------------------------------------------------
class TestDisableSwitch:
    def test_disabled_paths_are_byte_identical(self, monkeypatch):
        sketch = HistogramSketch("Distance", BUCKETS)
        cluster = Cluster(num_workers=2, cores_per_worker=2)
        dataset = cluster.load(SOURCE)
        warm_capable = dataset.run(sketch)

        monkeypatch.setenv("REPRO_DISABLE_CACHES", "1")
        uncached_first = dataset.run(sketch)
        uncached_second = dataset.run(sketch)
        assert not uncached_first.cache_hit
        assert not uncached_second.cache_hit
        assert uncached_second.worker_cache_hits == 0
        assert (
            uncached_first.value.to_bytes()
            == uncached_second.value.to_bytes()
            == warm_capable.value.to_bytes()
        )

    def test_cache_stats_reports_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_CACHES", "1")
        cluster = Cluster(num_workers=1, cores_per_worker=1)
        stats = cluster.cache_stats()
        assert stats["disabled"] is True
        assert stats["root"]["computation"]["disabled"] is True
