"""The horizontal service tier: N roots over one shared worker fleet.

Two real ``ServiceServer`` front-ends attach to the same pre-started
``repro worker --listen`` daemons (the paper's stateless-web-server
deployment, §5.2–5.3) and must be indistinguishable to clients: identical
shard placement, byte-identical summaries for every wire-level sketch
type, and sessions that resume on either root through the shared
session store with handles rebuilt by lineage replay (§5.7).
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading

import pytest

from repro.data.flights import FlightsSource
from repro.engine.local import LocalDataSet
from repro.engine.remote import ProcessCluster, _spawn_env
from repro.engine.rpc import sketch_from_json, summary_to_json
from repro.service import (
    ConnectionDirector,
    ServiceClient,
    ServiceServer,
    SqliteSessionStore,
)
from repro.table.table import Table

from tests.conftest import requires_caches
from tests.test_engine_equivalence import SKETCH_SPECS

pytestmark = pytest.mark.tier2

ROWS = 2_000
PARTITIONS = 8
SEED = 5
SOURCE = FlightsSource(ROWS, partitions=PARTITIONS, seed=SEED)
#: The same dataset, described the way a wire client loads it.
FLIGHTS_SPEC = {
    "kind": "flights",
    "rows": ROWS,
    "partitions": PARTITIONS,
    "seed": SEED,
}
HIST = {
    "type": "histogram",
    "column": "Distance",
    "buckets": {"type": "double", "min": 0, "max": 3000, "count": 9},
}


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def spawn_daemon(index: int):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--listen",
            "127.0.0.1:0",
            "--name",
            f"fleet-{index}",
            "--cores",
            "2",
        ],
        env=_spawn_env(),
        stdout=subprocess.PIPE,
        text=True,
    )
    announcement = json.loads(proc.stdout.readline())
    return proc, ("127.0.0.1", int(announcement["port"]))


@pytest.fixture(scope="module")
def fleet():
    """Two pre-started worker daemons that outlive any root."""
    daemons, addresses = [], []
    try:
        for i in range(2):
            proc, address = spawn_daemon(i)
            daemons.append(proc)
            addresses.append(address)
        yield addresses
    finally:
        for proc in daemons:
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()


@pytest.fixture(scope="module")
def tier(fleet, tmp_path_factory):
    """Two ServiceServer roots over the shared fleet + shared store."""
    store_path = str(tmp_path_factory.mktemp("tier") / "sessions.db")
    roots = []
    try:
        for _ in range(2):
            cluster = ProcessCluster(
                addresses=fleet, aggregation_interval=0.01
            )
            server = ServiceServer(
                cluster,
                port=0,
                session_store=SqliteSessionStore(store_path),
                sweep_interval_seconds=30.0,
            )
            address = server.start_background()
            roots.append((server, cluster, address))
        yield roots
    finally:
        for server, cluster, _ in roots:
            server.close()
            cluster.close()


@pytest.fixture(scope="module")
def reference_table() -> Table:
    return Table.concat(SOURCE.load())


class TestSharedPlacement:
    def test_roots_adopt_one_slicing(self, tier):
        """Both roots hold the same workers in the same slice order —
        the placement registry's byte-for-byte agreement."""
        (_, cluster_a, _), (_, cluster_b, _) = tier
        names_a = [w.name for w in cluster_a.workers]
        names_b = [w.name for w in cluster_b.workers]
        assert names_a == names_b
        assert sorted(names_a) == ["fleet-0", "fleet-1"]
        for index, worker in enumerate(cluster_b.workers):
            placement = worker.query_placement()
            assert placement is not None
            assert placement.index == index
            assert placement.count == len(cluster_b.workers)

    def test_partial_fleet_spec_adopts_membership_never_reslices(
        self, fleet, tier
    ):
        """A root attaching with a stale fleet list (one address of the
        two-worker placed fleet) must not re-slice it.  Since workers
        report the fleet's membership alongside their placement
        (versioned placements, elastic fleets), the attach adopts the
        full membership instead of being rejected — the operator's
        stale file still lands on the fleet as it is now."""
        cluster = ProcessCluster(addresses=fleet[:1])
        try:
            assert sorted(w.name for w in cluster.workers) == [
                "fleet-0",
                "fleet-1",
            ]
        finally:
            cluster.close()


class TestByteIdenticalSummaries:
    @pytest.mark.parametrize("kind", sorted(SKETCH_SPECS))
    def test_every_sketch_agrees_across_roots(
        self, kind, tier, reference_table
    ):
        """Every SKETCH_BUILDERS entry returns byte-identical summaries
        from both roots, equal to the single-process reference.

        Across roots the *wire payload text* must match byte for byte
        (same placement, same merge order, same JSON).  Against the local
        reference the comparison is the summary's canonical ``to_bytes``
        encoding — JSON key order there legitimately reflects merge
        order (e.g. frequency maps), which a single process lacks.
        """
        from repro.engine.rpc import summary_from_json

        spec = SKETCH_SPECS[kind]
        local_bytes = (
            LocalDataSet(reference_table)
            .sketch(sketch_from_json(spec))
            .to_bytes()
        )
        payloads = []
        for _, _, (host, port) in tier:
            with ServiceClient(host, port) as client:
                handle = client.load(FLIGHTS_SPEC)
                reply = client.sketch(handle, spec).result(timeout=120)
                assert reply.kind == "complete", reply.error
                payloads.append(canonical(reply.payload))
                assert (
                    summary_from_json(reply.payload).to_bytes() == local_bytes
                ), f"{kind} differs from the local reference on {host}:{port}"
        assert payloads[0] == payloads[1], (
            f"{kind}: the two roots returned different wire payloads"
        )

    def test_concurrent_sessions_across_roots(self, tier, reference_table):
        """Eight sessions spread over both roots, all streaming at once,
        every result byte-identical to the single-root answer."""
        local = canonical(
            summary_to_json(
                LocalDataSet(reference_table).sketch(sketch_from_json(HIST))
            )
        )
        director = ConnectionDirector([address for _, _, address in tier])
        results, errors = [], []

        def one_session() -> None:
            try:
                with director.connect() as client:
                    handle = client.load(FLIGHTS_SPEC)
                    reply = client.sketch(handle, HIST).result(timeout=120)
                    results.append(canonical(reply.payload))
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=one_session) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors[0]
        assert len(results) == 8
        assert all(result == local for result in results)
        # Both roots actually served traffic.
        for server, _, _ in tier:
            assert server.connections_accepted >= 4


@requires_caches
class TestCrossRootWarmCache:
    """The multi-tier memoization acceptance path (§5.4): a sketch first
    run via root A completes via root B with *zero* worker-side shard
    scans, served from the worker daemons' memo caches."""

    #: A bucketing no other test in this module uses, so the fleet's memo
    #: caches are guaranteed cold for it until this test runs.
    WARM_SPEC = {
        "type": "histogram",
        "column": "Distance",
        "buckets": {"type": "double", "min": 0, "max": 3000, "count": 13},
    }

    def worker_scans(self, client: ServiceClient) -> list[int]:
        stats = client.cache_stats()
        workers = stats["cluster"]["workers"]
        assert all("error" not in w for w in workers), workers
        return [w["shardsSummarized"] for w in workers]

    def test_sketch_warmed_via_root_a_hits_via_root_b(self, tier):
        (_, _, address_a), (_, _, address_b) = tier
        with ServiceClient(*address_a) as client_a:
            handle = client_a.load(FLIGHTS_SPEC)
            cold = client_a.sketch(handle, self.WARM_SPEC).result(timeout=120)
            assert cold.kind == "complete", cold.error
            assert cold.cache == {"hit": False, "workerHits": 0}

        with ServiceClient(*address_b) as client_b:
            scans_before = self.worker_scans(client_b)
            handle = client_b.load(FLIGHTS_SPEC)
            warm = client_b.sketch(handle, self.WARM_SPEC).result(timeout=120)
            assert warm.kind == "complete", warm.error
            scans_after = self.worker_scans(client_b)
            # Zero worker-side shard scans: every daemon answered root B
            # from the memo entry root A's run left behind.
            assert scans_after == scans_before, (
                f"warm run scanned shards: {scans_before} -> {scans_after}"
            )
            assert warm.cache is not None
            assert warm.cache["workerHits"] == len(scans_after)
            assert not warm.cache["hit"]  # root B's own root tier was cold
            assert canonical(warm.payload) == canonical(cold.payload)
            # The per-session telemetry shows up in the cacheStats RPC.
            session_stats = client_b.cache_stats()["sessions"]
            assert (
                session_stats[client_b.session_id]["workerCacheHits"]
                == len(scans_after)
            )

    def test_second_run_on_same_root_hits_root_tier(self, tier):
        (_, _, address_a), _ = tier
        spec = {  # a bucketing of this test's own, so it self-warms
            "type": "histogram",
            "column": "Distance",
            "buckets": {"type": "double", "min": 0, "max": 3000, "count": 17},
        }
        with ServiceClient(*address_a) as client:
            handle = client.load(FLIGHTS_SPEC)
            first = client.sketch(handle, spec).result(timeout=120)
            assert first.kind == "complete", first.error
            again = client.sketch(handle, spec).result(timeout=120)
            assert again.kind == "complete", again.error
            assert again.cache is not None and again.cache["hit"]
            assert canonical(again.payload) == canonical(first.payload)
            session_stats = client.cache_stats()["sessions"]
            assert session_stats[client.session_id]["cacheHits"] >= 1


class TestSessionMobility:
    def test_session_created_on_root_a_resumes_on_root_b(self, tier):
        """The acceptance path: load + filter on root A, reconnect to
        root B by session id, and query the *derived* handle — root B
        rebuilds it from the stored recipe book via lineage replay."""
        (server_a, _, address_a), (server_b, _, address_b) = tier
        with ServiceClient(*address_a, session="roaming") as client_a:
            root_handle = client_a.load(FLIGHTS_SPEC)
            derived = client_a.call(
                "filter",
                root_handle,
                {
                    "predicate": {
                        "type": "column",
                        "column": "Distance",
                        "op": ">",
                        "value": 500.0,
                    }
                },
            ).payload["handle"]
            reference = client_a.sketch(derived, HIST).result(timeout=120)
            reference_rows = client_a.row_count(derived)

        with ServiceClient(*address_b, session="roaming") as client_b:
            assert client_b.session_id == "roaming"
            assert client_b.row_count(derived) == reference_rows
            resumed = client_b.sketch(derived, HIST).result(timeout=120)
            assert canonical(resumed.payload) == canonical(reference.payload)
        assert server_b.sessions.sessions_resumed >= 1

    def test_director_pins_sessions_and_rotates_fresh_connections(self):
        """Round-robin for fresh connections; affinity pins a session to
        the root that actually served it — and only after the dial
        succeeded, so a dead root cannot capture a session forever."""
        addresses = [("root-a", 1), ("root-b", 2)]
        dialed = []

        class StubClient:
            def __init__(self, host, port, session=None):
                if host == "root-b" and down["b"]:
                    raise ConnectionRefusedError("root-b is down")
                dialed.append((host, port))
                self.session_id = session or f"minted-{len(dialed)}"

        down = {"b": False}
        director = ConnectionDirector(addresses, client_factory=StubClient)
        first = director.connect(session="sticky")
        assert dialed[-1] == ("root-a", 1)
        for _ in range(3):  # reconnects stay pinned
            assert director.connect(session="sticky").session_id == "sticky"
            assert dialed[-1] == ("root-a", 1)
        # Fresh connections keep rotating across the remaining slots.
        fresh = director.connect()
        assert dialed[-1] == ("root-b", 2)
        assert director.connect(session=fresh.session_id).session_id == fresh.session_id
        assert dialed[-1] == ("root-b", 2), "minted ids pin too"
        # A failed dial must not pin: the session retries onto a live root.
        director.connect()  # consume the root-a rotation slot
        down["b"] = True
        with pytest.raises(ConnectionRefusedError):
            director.connect(session="roamer")  # round-robin lands on b
        assert director.connect(session="roamer").session_id == "roamer"
        assert dialed[-1] == ("root-a", 1)
        assert first.session_id == "sticky"
        # A dead *pinned* root must not capture its session either: the
        # failed dial drops the pin, and the retry (with the shared
        # store behind it) resumes the session on a healthy root.
        with pytest.raises(ConnectionRefusedError):
            director.connect(session=fresh.session_id)  # pinned to dead b
        with pytest.raises(ConnectionRefusedError):
            director.connect(session=fresh.session_id)  # rotation hits b too
        assert (
            director.connect(session=fresh.session_id).session_id
            == fresh.session_id
        )
        assert dialed[-1] == ("root-a", 1)
