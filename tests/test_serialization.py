"""Codec tests: every write has an exact inverse, sizes are accounted."""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialization import (
    Decoder,
    Encoder,
    encoded_size,
    read_tagged_value,
    write_tagged_value,
)
from repro.errors import SerializationError


class TestVarints:
    def test_small_values_single_byte(self):
        for value in (0, 1, 127):
            enc = Encoder()
            enc.write_uvarint(value)
            assert enc.size == 1

    def test_negative_uvarint_rejected(self):
        enc = Encoder()
        with pytest.raises(SerializationError):
            enc.write_uvarint(-1)

    @given(st.integers(min_value=0, max_value=2**63))
    def test_uvarint_roundtrip(self, value):
        enc = Encoder()
        enc.write_uvarint(value)
        assert Decoder(enc.to_bytes()).read_uvarint() == value

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_signed_roundtrip(self, value):
        enc = Encoder()
        enc.write_int(value)
        assert Decoder(enc.to_bytes()).read_int() == value

    def test_zigzag_small_negatives_compact(self):
        enc = Encoder()
        enc.write_int(-1)
        assert enc.size == 1


class TestScalars:
    @given(st.floats(allow_nan=False))
    def test_float_roundtrip(self, value):
        enc = Encoder()
        enc.write_float(value)
        assert Decoder(enc.to_bytes()).read_float() == value

    def test_float_nan_roundtrip(self):
        enc = Encoder()
        enc.write_float(float("nan"))
        assert np.isnan(Decoder(enc.to_bytes()).read_float())

    def test_bool_roundtrip(self):
        enc = Encoder()
        enc.write_bool(True)
        enc.write_bool(False)
        dec = Decoder(enc.to_bytes())
        assert dec.read_bool() is True
        assert dec.read_bool() is False

    @given(st.text())
    def test_str_roundtrip(self, value):
        enc = Encoder()
        enc.write_str(value)
        assert Decoder(enc.to_bytes()).read_str() == value

    def test_none_string_distinct_from_empty(self):
        enc = Encoder()
        enc.write_str(None)
        enc.write_str("")
        dec = Decoder(enc.to_bytes())
        assert dec.read_str() is None
        assert dec.read_str() == ""

    @given(st.binary(max_size=200))
    def test_bytes_roundtrip(self, value):
        enc = Encoder()
        enc.write_bytes(value)
        assert Decoder(enc.to_bytes()).read_bytes() == value


class TestArrays:
    @pytest.mark.parametrize(
        "dtype", ["float64", "int64", "int32", "uint8", "bool", "float32"]
    )
    def test_supported_dtypes_roundtrip(self, dtype):
        arr = np.arange(10).astype(dtype)
        enc = Encoder()
        enc.write_array(arr)
        back = Decoder(enc.to_bytes()).read_array()
        assert back.dtype == np.dtype(dtype)
        assert np.array_equal(back, arr)

    def test_2d_shape_preserved(self):
        arr = np.arange(12, dtype=np.int64).reshape(3, 4)
        enc = Encoder()
        enc.write_array(arr)
        back = Decoder(enc.to_bytes()).read_array()
        assert back.shape == (3, 4)
        assert np.array_equal(back, arr)

    def test_empty_array(self):
        enc = Encoder()
        enc.write_array(np.empty(0, dtype=np.float64))
        assert len(Decoder(enc.to_bytes()).read_array()) == 0

    def test_unsupported_dtype_raises(self):
        enc = Encoder()
        with pytest.raises(SerializationError):
            enc.write_array(np.array(["a"], dtype=object))

    def test_decoded_array_is_writable_copy(self):
        enc = Encoder()
        enc.write_array(np.arange(4, dtype=np.int64))
        back = Decoder(enc.to_bytes()).read_array()
        back[0] = 99  # must not raise (frombuffer alone would be read-only)
        assert back[0] == 99


class TestStringLists:
    @given(st.lists(st.one_of(st.none(), st.text(max_size=30)), max_size=20))
    @settings(max_examples=50)
    def test_roundtrip(self, values):
        enc = Encoder()
        enc.write_str_list(values)
        assert Decoder(enc.to_bytes()).read_str_list() == values


class TestTaggedValues:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            0,
            -17,
            2**40,
            3.25,
            "hello",
            "",
            datetime(2019, 7, 10, 12, 0, tzinfo=timezone.utc),
        ],
    )
    def test_roundtrip(self, value):
        enc = Encoder()
        write_tagged_value(enc, value)
        assert read_tagged_value(Decoder(enc.to_bytes())) == value

    def test_numpy_scalars_accepted(self):
        enc = Encoder()
        write_tagged_value(enc, np.int64(5))
        write_tagged_value(enc, np.float64(2.5))
        dec = Decoder(enc.to_bytes())
        assert read_tagged_value(dec) == 5
        assert read_tagged_value(dec) == 2.5

    def test_unencodable_raises(self):
        enc = Encoder()
        with pytest.raises(SerializationError):
            write_tagged_value(enc, object())


class TestDecoderErrors:
    def test_truncated_data_raises(self):
        enc = Encoder()
        enc.write_float(1.0)
        data = enc.to_bytes()[:4]
        with pytest.raises(SerializationError):
            Decoder(data).read_float()

    def test_encoded_size_matches(self):
        size = encoded_size(lambda e: e.write_str("abcdef"))
        enc = Encoder()
        enc.write_str("abcdef")
        assert size == enc.size == len(enc.to_bytes())

    def test_remaining_tracks_position(self):
        enc = Encoder()
        enc.write_uvarint(7)
        enc.write_uvarint(9)
        dec = Decoder(enc.to_bytes())
        assert dec.remaining == 2
        dec.read_uvarint()
        assert dec.remaining == 1
