"""Elastic worker fleets: grow/shrink with shard re-balancing (tier ops).

The tentpole contract under test: a placed fleet can change size at
runtime — only the moved shard slices travel between workers, the
placement version bumps so every root adopts the new assignment, and
sketch results stay **byte-identical** to a static fleet throughout.
Plus the director's root health checks (consecutive-failure ejection)
and maintenance draining (refuse new sessions, existing ones roam via
the shared session store), and the worker daemon's graceful SIGTERM.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster, Worker
from repro.engine.dataset import FilterMap
from repro.engine.local import LocalDataSet
from repro.engine.placement import (
    PlacementError,
    ShardPlacement,
    StalePlacementError,
    agree_placement,
    expected_slice,
    plan_moves,
)
from repro.engine.remote import ProcessCluster, WorkerServer, _spawn_env
from repro.engine.rpc import (
    RpcRequest,
    predicate_from_json,
    sketch_from_json,
    summary_to_json,
)
from repro.service import (
    ConnectionDirector,
    ServiceClient,
    ServiceError,
    ServiceServer,
    SqliteSessionStore,
    probe_root,
)
from repro.table.table import Table

ROWS = 4_000
PARTITIONS = 16
SEED = 11
SOURCE = FlightsSource(ROWS, partitions=PARTITIONS, seed=SEED)
FLIGHTS_SPEC = {
    "kind": "flights",
    "rows": ROWS,
    "partitions": PARTITIONS,
    "seed": SEED,
}
HIST = {
    "type": "histogram",
    "column": "Distance",
    "buckets": {"type": "double", "min": 0, "max": 3000, "count": 9},
}


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def run_canonical(dataset, spec: dict) -> str:
    return canonical(summary_to_json(dataset.run(sketch_from_json(spec)).value))


# ---------------------------------------------------------------------------
# The move plan (pure function)
# ---------------------------------------------------------------------------
class TestPlanMoves:
    def test_grow_2_to_4_moves_exactly_the_departing_slices(self):
        # Worker 0 holds globals {0,2,4,6}, worker 1 holds {1,3,5,7}.
        resident = [[0, 2, 4, 6], [1, 3, 5, 7]]
        moves = plan_moves(resident, [0, 1], 4)
        assert moves == {(0, 2): [2, 6], (1, 3): [3, 7]}

    def test_shrink_4_to_2_trailing_workers_hand_everything_over(self):
        resident = [[0, 4], [1, 5], [2, 6], [3, 7]]
        moves = plan_moves(resident, [0, 1, None, None], 2)
        assert moves == {(2, 0): [2, 6], (3, 1): [3, 7]}

    def test_removing_a_middle_worker_scatters_only_as_needed(self):
        resident = [[0, 4, 8], [1, 5, 9], [2, 6, 10], [3, 7, 11]]
        moves = plan_moves(resident, [0, None, 1, 2], 3)
        # Every shard's new owner is its global index mod 3.
        owners: dict[int, int] = {}
        for (_, owner), globals_moved in moves.items():
            for g in globals_moved:
                owners[g] = owner
        for g, owner in owners.items():
            assert owner == g % 3
        # Worker 1's shards all depart; kept shards never appear.
        for g in (1, 5, 9):
            assert g in owners
        assert 0 not in owners  # stays on worker 0 (0 % 3 == 0)

    def test_no_move_when_assignment_is_unchanged(self):
        resident = [[0, 2], [1, 3]]
        assert plan_moves(resident, [0, 1], 2) == {}

    def test_mismatched_inputs_are_rejected(self):
        with pytest.raises(PlacementError):
            plan_moves([[0]], [0, 1], 2)

    def test_expected_slice_matches_load_slice_striping(self):
        assert expected_slice(1, 4, 10) == [1, 5, 9]
        assert expected_slice(3, 4, 3) == []


# ---------------------------------------------------------------------------
# Versioned placements on the wire
# ---------------------------------------------------------------------------
class TestVersionedPlacement:
    def test_version_and_members_round_trip(self):
        placement = ShardPlacement(
            1, 4, version=3, members=("a:1", "b:2", "c:3", "d:4")
        )
        decoded = ShardPlacement.from_json(placement.to_json())
        assert decoded == placement

    def test_version_defaults_to_zero_for_old_reports(self):
        decoded = ShardPlacement.from_json({"index": 1, "count": 2})
        assert decoded == ShardPlacement(1, 2, version=0, members=None)

    def test_mixed_versions_are_a_retryable_conflict(self):
        reported = [ShardPlacement(0, 2, version=1), ShardPlacement(1, 2, version=2)]
        with pytest.raises(PlacementError) as info:
            agree_placement([("a", 1), ("b", 2)], reported)
        assert info.value.retryable

    def test_agreed_fleet_adopts_verbatim_across_versions(self):
        reported = [ShardPlacement(1, 2, version=5), ShardPlacement(0, 2, version=5)]
        assert agree_placement([("a", 1), ("b", 2)], reported) == [1, 0]


# ---------------------------------------------------------------------------
# Worker store re-keying
# ---------------------------------------------------------------------------
class TestRebalanceStore:
    def _worker(self, index: int, count: int, shards: list[Table]):
        worker = Worker(f"w{index}", cores=1)
        worker.configure(index, count, 0.01)
        worker.put("ds", shards)
        return worker

    def test_keeps_owned_merges_adopted_sorted_by_global_index(self):
        tables = SOURCE.load()  # 16 shards
        # Worker 0 of 2 holds globals 0,2,...,14.
        worker = self._worker(0, 2, tables[0::2])
        # Re-key to slice 0 of 4: keeps {0,4,8,12}, adopts nothing new.
        kept = worker.rebalance_store(0, 4, {"ds": len(tables)})
        assert kept == {"ds": 4}
        resident = worker.store.get("ds")
        assert [t.shard_id for t in resident] == [
            t.shard_id for t in tables[0::4]
        ]

    def test_incomplete_slice_is_dropped_for_replay(self):
        tables = SOURCE.load()
        worker = self._worker(0, 2, tables[0::2])
        # Slice 1 of 2 needs the odd globals, which this worker lacks and
        # nothing was adopted: the entry must drop, not half-survive.
        kept = worker.rebalance_store(1, 2, {"ds": len(tables)})
        assert kept == {}
        assert worker.store.get("ds") is None

    def test_unlisted_datasets_are_evicted(self):
        tables = SOURCE.load()
        worker = self._worker(0, 2, tables[0::2])
        worker.put("derived", tables[0:2])
        worker.rebalance_store(0, 2, {"ds": len(tables)})
        assert worker.store.get("ds") is not None
        assert worker.store.get("derived") is None

    def test_adopted_shards_fill_a_fresh_worker(self):
        tables = SOURCE.load()
        fresh = Worker("fresh", cores=1)
        adopted = {"ds": {g: tables[g] for g in range(1, len(tables), 2)}}
        kept = fresh.rebalance_store(1, 2, {"ds": len(tables)}, adopted)
        assert kept == {"ds": len(tables) // 2}
        resident = fresh.store.get("ds")
        assert [t.shard_id for t in resident] == [
            t.shard_id for t in tables[1::2]
        ]


# ---------------------------------------------------------------------------
# In-process elasticity: byte identity across grow/shrink
# ---------------------------------------------------------------------------
class TestInProcessElasticity:
    @pytest.fixture()
    def reference(self):
        table = Table.concat(SOURCE.load())
        return canonical(
            summary_to_json(LocalDataSet(table).sketch(sketch_from_json(HIST)))
        )

    def test_grow_and_shrink_keep_results_byte_identical(self, reference):
        cluster = Cluster(num_workers=2, aggregation_interval=0.01)
        dataset = cluster.load(SOURCE)
        derived = dataset.map(
            FilterMap(
                predicate_from_json(
                    {"type": "column", "column": "Distance", "op": ">", "value": 500.0}
                )
            )
        )
        before = run_canonical(dataset, HIST)
        before_derived = run_canonical(derived, HIST)
        assert before == reference

        assert cluster.grow(2) == 4
        assert cluster.placement_version == 1
        assert [w.index for w in cluster.workers] == [0, 1, 2, 3]
        # Shards were re-striped, not duplicated: every worker holds 1/4
        # and still knows the dataset is a (transferable) load.
        for worker in cluster.workers:
            entry = worker.inventory()[dataset.dataset_id]
            assert entry == {"shards": PARTITIONS // 4, "loaded": True}
        cluster.computation_cache.clear()  # force a real re-execution
        assert run_canonical(dataset, HIST) == before
        assert run_canonical(derived, HIST) == before_derived

        assert cluster.shrink(["worker-3", 2]) == 2
        assert cluster.placement_version == 2
        cluster.computation_cache.clear()
        assert run_canonical(dataset, HIST) == before
        assert run_canonical(derived, HIST) == before_derived
        assert dataset.total_rows == ROWS

    def test_rebalance_waits_for_inflight_streams(self):
        cluster = Cluster(num_workers=2, aggregation_interval=0.01)
        dataset = cluster.load(SOURCE)
        slow_spec = {"type": "slow", "perShardSeconds": 0.02, "inner": HIST}
        results: list[str] = []
        errors: list[Exception] = []

        def stream() -> None:
            try:
                results.append(run_canonical(dataset, slow_spec))
            except Exception as exc:  # noqa: BLE001 — asserted below
                errors.append(exc)

        thread = threading.Thread(target=stream)
        thread.start()
        time.sleep(0.05)  # the stream is mid-flight
        grown = cluster.grow(2)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert grown == 4
        assert not errors, errors[0]
        # The in-flight stream drained on the old placement and its
        # result matches a fresh run on the new one.
        cluster.computation_cache.clear()
        assert results[0] == run_canonical(dataset, slow_spec)

    def test_shrink_to_zero_is_refused(self):
        cluster = Cluster(num_workers=2)
        with pytest.raises(PlacementError):
            cluster.shrink([0, 1])

    def test_unknown_worker_selector_is_refused(self):
        cluster = Cluster(num_workers=2)
        with pytest.raises(PlacementError):
            cluster.shrink(["nonesuch"])


# ---------------------------------------------------------------------------
# Director: health checks and draining
# ---------------------------------------------------------------------------
class _StubClient:
    def __init__(self, host, port, session=None, registry=None):
        self.session_id = session or f"minted-{id(self)}"


class TestDirectorHealth:
    def _director(self, health: dict, max_failures: int = 3):
        addresses = [("root-a", 1), ("root-b", 2)]
        return ConnectionDirector(
            addresses,
            client_factory=_StubClient,
            max_ping_failures=max_failures,
            probe=lambda address: health[address],
        )

    def test_ejection_after_n_consecutive_failures_and_recovery(self):
        health = {("root-a", 1): True, ("root-b", 2): False}
        director = self._director(health)
        for round_number in range(3):
            director.check_health()
            if round_number < 2:
                assert director.ejected() == []  # not yet N consecutive
        assert director.ejected() == [("root-b", 2)]
        assert director.ejections == 1
        # Every connection now lands on the healthy root.
        for _ in range(4):
            director.connect()
        assert director.routable() == [("root-a", 1)]
        # Recovery: one good ping restores the root and resets the count.
        health[("root-b", 2)] = True
        director.check_health()
        assert director.ejected() == []
        assert director.recoveries == 1

    def test_intermittent_failures_never_eject(self):
        flips = {"n": 0}

        def flaky(address):
            flips["n"] += 1
            return flips["n"] % 2 == 0  # fail, succeed, fail, succeed...

        director = ConnectionDirector(
            [("root-a", 1)],
            client_factory=_StubClient,
            max_ping_failures=3,
            probe=flaky,
        )
        for _ in range(10):
            director.check_health()
        assert director.ejected() == []

    def test_session_pinned_to_ejected_root_migrates(self):
        health = {("root-a", 1): True, ("root-b", 2): True}
        director = self._director(health, max_failures=1)
        sticky = director.connect(session="sticky")
        assert sticky.session_id == "sticky"
        pinned = director._affinity["sticky"]
        health[pinned] = False
        director.check_health()
        assert pinned in director.ejected()
        other = [a for a in director.addresses if a != pinned][0]
        for _ in range(3):
            director.connect(session="sticky")
            assert director._affinity["sticky"] == other

    def test_all_roots_down_raises(self):
        health = {("root-a", 1): False, ("root-b", 2): False}
        director = self._director(health, max_failures=1)
        director.check_health()
        with pytest.raises(ConnectionError):
            director.connect()


class TestDirectorDrain:
    def test_drain_stops_routing_and_drops_pins(self):
        director = ConnectionDirector(
            [("root-a", 1), ("root-b", 2)], client_factory=_StubClient
        )
        director.connect(session="resident")
        pinned = director._affinity["resident"]
        other = [a for a in director.addresses if a != pinned][0]
        result = director.drain(pinned, flush_sessions=False)
        assert result["drained"] and result["unpinned"] == 1
        assert director.drained() == [pinned]
        # New sessions and the formerly pinned session route elsewhere.
        for _ in range(4):
            assert director._pick(None) == other
        assert director._pick("resident") == other
        director.undrain(pinned)
        # undrain's best-effort RPC hits a nonexistent address; routing
        # state must be restored regardless.
        assert director.drained() == []
        assert pinned in {director._pick(None) for _ in range(4)}

    def test_unknown_root_cannot_be_drained(self):
        director = ConnectionDirector(
            [("root-a", 1)], client_factory=_StubClient
        )
        with pytest.raises(ValueError):
            director.drain(("root-x", 9), flush_sessions=False)


class TestServiceDrainRpc:
    """Draining against a real (in-process-cluster) ServiceServer."""

    @pytest.fixture()
    def server(self, tmp_path):
        cluster = Cluster(num_workers=2, aggregation_interval=0.01)
        server = ServiceServer(
            cluster,
            port=0,
            default_source=SOURCE,
            session_store=SqliteSessionStore(str(tmp_path / "tier.db")),
            sweep_interval_seconds=30.0,
        )
        server.start_background()
        yield server
        server.close()

    def test_drain_refuses_new_sessions_while_existing_ones_work(self, server):
        host, port = server.address
        with ServiceClient(host, port, session="settled") as resident:
            handle = resident.load({})
            sessions_before = server.sessions.sessions_created
            assert probe_root((host, port))  # health probe mints no session
            assert server.sessions.sessions_created == sessions_before

            reply = resident.call("drain")  # any connection may ask
            assert reply.payload["draining"] is True
            assert reply.payload["persisted"] >= 1  # recipe books flushed

            # New sessions are refused with a structured error...
            with pytest.raises(ServiceError) as info:
                ServiceClient(host, port)
            assert "draining" in str(info.value)
            with pytest.raises(ServiceError):
                ServiceClient(host, port, session="brand-new")

            # ...while the resident session keeps streaming.
            result = resident.sketch(handle, HIST).result(timeout=60)
            assert result.kind == "complete"
            # And its *reconnects* still work (it lives on this root).
            with ServiceClient(host, port, session="settled") as again:
                assert again.session_id == "settled"

            assert probe_root((host, port))  # drained != unhealthy
            resident.call("undrain")
        with ServiceClient(host, port) as fresh:  # back in rotation
            assert fresh.session_id

    def test_drained_session_roams_via_the_store(self, server, tmp_path):
        host, port = server.address
        with ServiceClient(host, port, session="roamer") as client:
            handle = client.load({})
            reference = client.sketch(handle, HIST).result(timeout=60)
            client.call("drain")
        # A sibling root sharing the store resumes the session.
        sibling_cluster = Cluster(num_workers=2, aggregation_interval=0.01)
        sibling = ServiceServer(
            sibling_cluster,
            port=0,
            default_source=SOURCE,
            session_store=SqliteSessionStore(str(tmp_path / "tier.db")),
            sweep_interval_seconds=30.0,
        )
        address = sibling.start_background()
        try:
            with ServiceClient(*address, session="roamer") as moved:
                assert moved.session_id == "roamer"
                resumed = moved.sketch(handle, HIST).result(timeout=60)
                assert canonical(resumed.payload) == canonical(reference.payload)
            assert sibling.sessions.sessions_resumed >= 1
        finally:
            sibling.close()


# ---------------------------------------------------------------------------
# Worker daemon draining (SIGTERM path, in-process)
# ---------------------------------------------------------------------------
class TestWorkerServerDraining:
    def _dispatch(self, server: WorkerServer, request: RpcRequest):
        from repro.engine.remote import _RootLink

        link = _RootLink(None, None)
        return list(server._dispatch(request, link))

    def test_draining_refuses_configure_but_serves_sketches(self):
        from repro.engine.remote import WorkerDrainingError

        server = WorkerServer(name="drainee", cores=1)
        self._dispatch(
            server, RpcRequest(1, "", "configure", {"index": 0, "count": 1})
        )
        self._dispatch(
            server,
            RpcRequest(
                2,
                "",
                "load",
                {
                    "dataset": "ds",
                    "source": {"kind": "flights", "rows": 500, "partitions": 4,
                               "seed": 1},
                    "placementVersion": 0,
                },
            ),
        )
        server.begin_drain()
        assert server.draining
        with pytest.raises(WorkerDrainingError):
            self._dispatch(
                server,
                RpcRequest(3, "", "configure", {"index": 0, "count": 1}),
            )
        with pytest.raises(WorkerDrainingError):
            self._dispatch(
                server,
                RpcRequest(4, "", "load", {"dataset": "x", "source": {}}),
            )
        # In-flight work still completes: reads and sketches are served.
        replies = self._dispatch(
            server,
            RpcRequest(
                5,
                "",
                "sketch",
                {
                    "dataset": "ds",
                    "sketch": HIST,
                    "lineage": [],
                    "placementVersion": 0,
                },
            ),
        )
        assert replies[-1].kind == "complete"
        assert server.wait_drained(timeout=5.0)

    def test_stale_version_is_rejected_with_retryable_code(self):
        server = WorkerServer(name="versioned", cores=1)
        self._dispatch(
            server,
            RpcRequest(
                1, "", "configure",
                {"index": 0, "count": 1, "placementVersion": 0},
            ),
        )
        with pytest.raises(StalePlacementError):
            self._dispatch(
                server,
                RpcRequest(
                    2, "", "rows",
                    {"dataset": "ds", "lineage": [], "placementVersion": 7},
                ),
            )


# ---------------------------------------------------------------------------
# Tier 2: a real daemon fleet growing and shrinking under load
# ---------------------------------------------------------------------------
def spawn_daemon(index: int):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--listen",
            "127.0.0.1:0",
            "--name",
            f"elastic-{index}",
            "--cores",
            "2",
        ],
        env=_spawn_env(),
        stdout=subprocess.PIPE,
        text=True,
    )
    announcement = json.loads(proc.stdout.readline())
    return proc, ("127.0.0.1", int(announcement["port"]))


@pytest.mark.tier2
class TestElasticFleetTier2:
    @pytest.fixture()
    def daemons(self):
        procs, addresses = [], []
        try:
            for i in range(4):
                proc, address = spawn_daemon(i)
                procs.append(proc)
                addresses.append(address)
            yield addresses
        finally:
            for proc in procs:
                proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()

    def test_grow_and_shrink_under_load_byte_identical(self, daemons):
        """The acceptance path: a 2-daemon fleet grows to 4 and shrinks
        back mid-workload; every sketch result — before, during, after —
        is byte-identical to the static single-process reference."""
        local = canonical(
            summary_to_json(
                LocalDataSet(Table.concat(SOURCE.load())).sketch(
                    sketch_from_json(HIST)
                )
            )
        )
        slow_spec = {"type": "slow", "perShardSeconds": 0.004, "inner": HIST}
        serving = ProcessCluster(
            addresses=daemons[:2], aggregation_interval=0.01
        )
        admin = ProcessCluster(
            addresses=daemons[:2], aggregation_interval=0.01
        )
        try:
            dataset = serving.load(SOURCE)
            results: list[str] = []
            errors: list[Exception] = []
            stop = threading.Event()

            def workload() -> None:
                while not stop.is_set():
                    try:
                        run = dataset.run(sketch_from_json(slow_spec))
                        results.append(
                            canonical(summary_to_json(run.value))
                        )
                    except Exception as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=workload) for _ in range(2)]
            for thread in threads:
                thread.start()
            time.sleep(0.3)  # sketches in flight on the old placement

            assert admin.grow(daemons[2:]) == 4
            assert admin.placement_version == 1
            time.sleep(0.5)  # the serving root discovers and resyncs

            assert admin.shrink(daemons[2:]) == 2
            assert admin.placement_version == 2
            time.sleep(0.5)

            stop.set()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors[0]
            assert results, "the workload never completed a sketch"
            assert all(r == local for r in results), (
                "a sketch observed a half-rebalanced fleet"
            )
            # The serving root adopted both rebalances transparently.
            assert serving.placement_version == 2
            assert len(serving.workers) == 2
        finally:
            admin.close()
            serving.close()

    def test_admin_grow_transfers_another_roots_shards(self, daemons):
        """The operator path: `repro fleet grow` runs from a transient
        administrative root whose redo log never saw the serving root's
        datasets.  The loaded-dataset marker is worker-resident, so the
        shards still *move* (adoption, not eviction-and-reload), and the
        serving root's results are unchanged."""
        serving = ProcessCluster(
            addresses=daemons[:2], aggregation_interval=0.01
        )
        admin = ProcessCluster(
            addresses=daemons[:2], aggregation_interval=0.01
        )
        try:
            dataset = serving.load(SOURCE)
            reference = run_canonical(dataset, HIST)
            admin.grow(daemons[2:3])  # empty redo log on this root
            assert [w.index for w in admin.workers] == [0, 1, 2]
            # Every worker (including the new one) reports its re-striped
            # inventory — the shards moved, they were not re-read (an
            # evicted dataset would inventory as absent until next use).
            counts = [
                (w.inventory().get(dataset.dataset_id) or {}).get("shards", 0)
                for w in admin.workers
            ]
            assert sum(counts) == PARTITIONS
            assert counts[2] > 0, "the new worker adopted no shards"
            serving.computation_cache.clear()
            assert run_canonical(dataset, HIST) == reference
        finally:
            admin.close()
            serving.close()

    def test_interrupted_rebalance_is_healed_on_attach(self, daemons):
        """A rebalance that died after committing only some members
        leaves the fleet at mixed placement versions; the next attaching
        root must finish the job (the committed report carries the full
        target assignment) instead of wedging on the conflict."""
        from repro.engine.placement import format_address

        cluster = ProcessCluster(
            addresses=daemons[:2], aggregation_interval=0.01
        )
        dataset = cluster.load(SOURCE)
        reference = run_canonical(dataset, HIST)
        members = [format_address(w.address) for w in cluster.workers]
        # Simulate the interruption: version 1 committed on worker 0
        # only, then the initiating root vanishes.
        cluster.workers[0].rebalance_commit(1, 0, 2, members, {})
        cluster.close()

        healed = ProcessCluster(
            addresses=daemons[:2], aggregation_interval=0.01
        )
        try:
            assert healed.placement_version == 1
            placements = [w.query_placement() for w in healed.workers]
            assert [p.version for p in placements] == [1, 1]
            assert sorted(p.index for p in placements) == [0, 1]
            dataset2 = healed.load(SOURCE)  # replays after the repair evict
            assert run_canonical(dataset2, HIST) == reference
        finally:
            healed.close()

    def test_retired_farewell_heals_uncommitted_survivors(self, daemons):
        """The worst interruption: a shrink retired the departing worker
        but none of the survivors committed.  Only the retired worker's
        farewell report knows the target assignment — the next attach
        must read it, drive the survivors' commits, and settle."""
        from repro.engine.placement import format_address

        cluster = ProcessCluster(
            addresses=daemons[:3], aggregation_interval=0.01
        )
        survivors = [format_address(w.address) for w in cluster.workers[:2]]
        cluster.workers[2].retire(1, survivors)
        cluster.close()

        healed = ProcessCluster(
            addresses=daemons[:3], aggregation_interval=0.01
        )
        try:
            assert healed.placement_version == 1
            assert len(healed.workers) == 2
            placements = [w.query_placement() for w in healed.workers]
            assert sorted(p.index for p in placements) == [0, 1]
            assert {p.count for p in placements} == {2}
        finally:
            healed.close()

    def test_sigterm_drains_gracefully_mid_sketch(self):
        """SIGTERM mid-stream: the in-flight sketch finishes, the daemon
        refuses new state and exits 0 — shrink and CI teardown never race
        an abrupt kill."""
        proc, address = spawn_daemon(99)
        cluster = ProcessCluster(addresses=[address], aggregation_interval=0.01)
        try:
            dataset = cluster.load(SOURCE)
            slow_spec = {"type": "slow", "perShardSeconds": 0.05, "inner": HIST}
            reference = run_canonical(dataset, {"type": "histogram",
                                                "column": "Distance",
                                                "buckets": HIST["buckets"]})
            outcome: dict = {}

            def stream() -> None:
                try:
                    run = dataset.run(sketch_from_json(slow_spec))
                    outcome["payload"] = canonical(summary_to_json(run.value))
                except Exception as exc:  # noqa: BLE001
                    outcome["error"] = exc

            thread = threading.Thread(target=stream)
            thread.start()
            time.sleep(0.3)  # the sketch is mid-partials
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=60)
            assert not thread.is_alive()
            assert "error" not in outcome, outcome.get("error")
            assert outcome["payload"] == reference
            assert proc.wait(timeout=30) == 0, "daemon did not exit cleanly"
        finally:
            cluster.close()
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
