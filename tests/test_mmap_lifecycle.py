"""Lifecycle tests for memory-mapped shard storage.

``storage/columnar.py`` maps hvc partitions read-only by default
(``REPRO_MMAP=0`` forces the heap path).  The map is an optimization, not
a semantic: every test here pins byte-identity between the two paths —
through direct reads, through worker crash/replay, and (tier 2) through a
SIGKILL mid-sketch with real worker processes holding live maps.
"""

from __future__ import annotations

import hashlib
import os
import signal

import numpy as np
import pytest

from repro.core.buckets import DoubleBuckets
from repro.data.flights import generate_flights
from repro.engine.local import LocalDataSet
from repro.sketches.histogram import HistogramSketch
from repro.storage import columnar
from repro.storage.loader import ColumnarDatasetSource
from repro.table.table import Table

DISTANCE = DoubleBuckets(0, 3000, 12)


def _write_flights_dataset(directory: str, rows: int = 6_000, parts: int = 6):
    table = generate_flights(rows, seed=21)
    columnar.write_dataset(table.split(parts), str(directory))
    return table


def _dir_digests(directory: str) -> dict[str, str]:
    out = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as f:
            out[name] = hashlib.sha256(f.read()).hexdigest()
    return out


class TestMmapVsHeap:
    def test_byte_identical_tables(self, tmp_path):
        _write_flights_dataset(tmp_path)
        mapped = columnar.read_dataset(str(tmp_path), use_mmap=True)
        heap = columnar.read_dataset(str(tmp_path), use_mmap=False)
        assert len(mapped) == len(heap)
        for m, h in zip(mapped, heap):
            assert columnar.table_to_bytes(m) == columnar.table_to_bytes(h)

    def test_byte_identical_summaries(self, tmp_path):
        _write_flights_dataset(tmp_path)
        sketch = HistogramSketch("Distance", DISTANCE)
        for use_mmap in (True, False):
            tables = columnar.read_dataset(str(tmp_path), use_mmap=use_mmap)
            if use_mmap:
                mapped_bytes = LocalDataSet(Table.concat(tables)).sketch(sketch).to_bytes()
            else:
                heap_bytes = LocalDataSet(Table.concat(tables)).sketch(sketch).to_bytes()
        assert mapped_bytes == heap_bytes

    def test_mapped_columns_are_zero_copy_views(self, tmp_path):
        _write_flights_dataset(tmp_path, rows=1_000, parts=1)
        [mapped] = columnar.read_dataset(str(tmp_path), use_mmap=True)
        data = mapped.column("Distance").data
        # A view into the read-only map: not writeable, and its base
        # chain (not the heap) owns the bytes.
        assert not data.flags.writeable
        assert data.base is not None
        with pytest.raises((ValueError, RuntimeError)):
            data[0] = 0.0
        # The heap path hands out ordinary owned arrays.
        [heap] = columnar.read_dataset(str(tmp_path), use_mmap=False)
        assert heap.column("Distance").data.flags.writeable

    def test_env_switch_forces_heap_path(self, tmp_path, monkeypatch):
        _write_flights_dataset(tmp_path, rows=500, parts=1)
        monkeypatch.setenv("REPRO_MMAP", "0")
        assert not columnar.mmap_enabled()
        [table] = columnar.read_dataset(str(tmp_path))
        assert table.column("Distance").data.flags.writeable
        monkeypatch.delenv("REPRO_MMAP")
        assert columnar.mmap_enabled()

    def test_load_slice_matches_full_load(self, tmp_path):
        _write_flights_dataset(tmp_path, parts=7)
        source = ColumnarDatasetSource(str(tmp_path))
        everything = source.load()
        count = 3
        for index in range(count):
            expected = everything[index::count]
            got = source.load_slice(index, count)
            assert [columnar.table_to_bytes(t) for t in got] == [
                columnar.table_to_bytes(t) for t in expected
            ]

    def test_maps_outlive_the_file_descriptor(self, tmp_path):
        """read_table closes the fd immediately; arrays must stay valid."""
        _write_flights_dataset(tmp_path, rows=2_000, parts=1)
        [table] = columnar.read_dataset(str(tmp_path), use_mmap=True)
        # Touch every page after the open() context has exited.
        total = float(np.nansum(table.column("Distance").data))
        assert total > 0


class TestCrashReplay:
    def test_soft_crash_replays_from_maps_byte_identically(self, tmp_path):
        """Worker store wiped -> lineage replay re-maps the partitions and
        the requery result is byte-identical to the pre-crash one."""
        from repro.engine.cluster import Cluster

        _write_flights_dataset(tmp_path)
        cluster = Cluster(num_workers=3, cores_per_worker=2, aggregation_interval=0.01)
        dataset = cluster.load(ColumnarDatasetSource(str(tmp_path)))
        sketch = HistogramSketch("Distance", DISTANCE)
        before = dataset.sketch(sketch).to_bytes()
        for index in range(len(cluster.workers)):
            cluster.kill_worker(index)
        # Different bucket count dodges every cache tier: the workers
        # genuinely re-map and re-summarize their partitions.
        requery = HistogramSketch("Distance", DoubleBuckets(0, 3000, 24))
        digests = _dir_digests(str(tmp_path))
        after = dataset.sketch(requery).to_bytes()
        reference = (
            LocalDataSet(Table.concat(columnar.read_dataset(str(tmp_path))))
            .sketch(requery)
            .to_bytes()
        )
        assert after == reference
        assert dataset.sketch(sketch).to_bytes() == before
        assert _dir_digests(str(tmp_path)) == digests


@pytest.mark.tier2
class TestProcessLifecycle:
    """Real worker processes holding live maps across kills (tier 2)."""

    def _process_cluster(self):
        from repro.engine.remote import ProcessCluster

        return ProcessCluster(
            num_workers=2, cores_per_worker=2, aggregation_interval=0.02
        )

    def test_worker_restart_remaps_shards(self, tmp_path):
        _write_flights_dataset(tmp_path)
        reference_table = Table.concat(columnar.read_dataset(str(tmp_path)))
        cluster = self._process_cluster()
        try:
            dataset = cluster.load(ColumnarDatasetSource(str(tmp_path)))
            sketch = HistogramSketch("Distance", DISTANCE)
            before = dataset.sketch(sketch).to_bytes()
            pids = cluster.worker_pids()
            cluster.kill_worker_process(0, signal.SIGKILL)
            requery = HistogramSketch("Distance", DoubleBuckets(0, 3000, 24))
            after = dataset.sketch(requery).to_bytes()
            assert cluster.worker_pids()[0] != pids[0], "worker not respawned"
            assert after == (
                LocalDataSet(reference_table).sketch(requery).to_bytes()
            )
            assert dataset.sketch(sketch).to_bytes() == before
        finally:
            cluster.close()

    def test_sigkill_mid_sketch_leaves_no_corrupt_maps(self, tmp_path):
        """SIGKILL while shards are mapped and a sketch is streaming: the
        stream converges exactly and the mapped files are untouched."""
        from repro.service.slow import SlowdownSketch

        _write_flights_dataset(tmp_path, rows=8_000, parts=8)
        digests = _dir_digests(str(tmp_path))
        reference_table = Table.concat(columnar.read_dataset(str(tmp_path)))
        cluster = self._process_cluster()
        try:
            dataset = cluster.load(ColumnarDatasetSource(str(tmp_path)))
            sketch = HistogramSketch("Distance", DISTANCE)
            slowed = SlowdownSketch(sketch, per_shard_seconds=0.05)
            final = None
            partials = 0
            for partial in dataset.sketch_stream(slowed):
                partials += 1
                final = partial.value
                if partials == 1:
                    cluster.kill_worker_process(0, signal.SIGKILL)
            assert final is not None
            assert final.to_bytes() == (
                LocalDataSet(reference_table).sketch(sketch).to_bytes()
            )
            assert _dir_digests(str(tmp_path)) == digests
        finally:
            cluster.close()
