"""Flights generator tests: schema, determinism, case-study structure.

The Figure 10 case study only works if the synthetic data carries the
signals the questions probe; these tests pin that structure down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.flights import (
    AIRLINES,
    AIRPORTS,
    FLIGHT_COLUMNS,
    FlightsSource,
    flights_partitions,
    generate_flights,
)
from repro.table.compute import ColumnPredicate
from repro.table.schema import ContentsKind


def column_mean(table, rows_mask_column, value_column):
    """Mean of value_column grouped by each value of rows_mask_column."""
    rows = table.members.indices()
    col = table.column(rows_mask_column)
    values = table.column(value_column).numeric_values(rows)
    codes = col.codes_at(rows)
    result = {}
    for code, name in enumerate(col.dictionary.values):
        mask = codes == code
        if mask.any():
            result[name] = float(np.nanmean(values[mask]))
    return result


class TestSchema:
    def test_column_list(self, flights):
        assert flights.column_names == FLIGHT_COLUMNS
        assert flights.num_columns == 28

    def test_kinds(self, flights):
        schema = flights.schema
        assert schema.kind("FlightDate") is ContentsKind.DATE
        assert schema.kind("Airline") is ContentsKind.CATEGORY
        assert schema.kind("DepDelay") is ContentsKind.DOUBLE
        assert schema.kind("Cancelled") is ContentsKind.INTEGER

    def test_extra_columns_pad_width(self):
        table = generate_flights(100, seed=1, extra_columns=5)
        assert table.num_columns == 33
        assert "Metric04" in table.column_names

    def test_city_dictionary_deduplicated(self, flights):
        column = flights.column("OriginCityName")
        values = column.dictionary.values
        assert len(values) == len(set(values))
        # Both Chicago airports resolve to the same city string.
        rows = flights.members.indices()
        chicago = [
            flights.column("Origin").value(int(r))
            for r in rows
            if column.value(int(r)) == "Chicago"
        ]
        assert {"ORD", "MDW"} <= set(chicago)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate_flights(2_000, seed=9)
        b = generate_flights(2_000, seed=9)
        assert np.array_equal(
            a.column("DepDelay").data, b.column("DepDelay").data, equal_nan=True
        )

    def test_different_seeds_differ(self):
        a = generate_flights(2_000, seed=9)
        b = generate_flights(2_000, seed=10)
        assert not np.array_equal(
            a.column("DepDelay").data, b.column("DepDelay").data
        )

    def test_partitions_reproducible_individually(self):
        parts = flights_partitions(10_000, 4, seed=3)
        rebuilt = flights_partitions(10_000, 4, seed=3)
        for a, b in zip(parts, rebuilt):
            assert a.shard_id == b.shard_id
            assert np.array_equal(a.column("Distance").data, b.column("Distance").data)

    def test_partition_sizes(self):
        parts = flights_partitions(10_001, 4, seed=3)
        assert [p.num_rows for p in parts] == [2501, 2500, 2500, 2500]

    def test_source_spec_round(self):
        source = FlightsSource(5_000, partitions=3, seed=7)
        assert "rows=5000" in source.spec()
        assert sum(t.num_rows for t in source.load()) == 5_000


class TestCalendarConsistency:
    def test_date_fields_agree(self, flights):
        rows = flights.members.indices()[:500]
        for r in rows[:100]:
            row = flights.row(int(r))
            date = row["FlightDate"]
            assert date.year == row["Year"]
            assert date.month == row["Month"]
            assert date.day == row["DayofMonth"]
            assert date.isoweekday() == row["DayOfWeek"]

    def test_years_span_period(self, flights):
        years = flights.column("Year").data
        assert years.min() == 1999
        assert years.max() == 2018


class TestMissingStructure:
    def test_cancelled_flights_have_no_departure(self, flights):
        cancelled = flights.filter(ColumnPredicate("Cancelled", "==", 1))
        rows = cancelled.members.indices()
        assert cancelled.column("DepDelay").missing_mask()[rows].all()
        assert cancelled.column("DepTime").missing_mask()[rows].all()

    def test_completed_flights_have_delays(self, flights):
        completed = flights.filter(
            ColumnPredicate("Cancelled", "==", 0)
            & ColumnPredicate("Diverted", "==", 0)
        )
        rows = completed.members.indices()
        assert not completed.column("ArrDelay").missing_mask()[rows].any()


class TestCaseStudySignals:
    """The distributional facts behind the Figure 10 questions."""

    def test_q2_hawaiian_least_delay(self, flights):
        means = column_mean(flights, "Airline", "DepDelay")
        assert min(means, key=means.get) == "HA"

    def test_q1_ua_worse_than_aa(self, flights):
        means = column_mean(flights, "Airline", "DepDelay")
        assert means["UA"] > means["AA"]

    def test_q7_morning_is_best(self, flights):
        rows = flights.members.indices()
        hours = flights.column("CRSDepTime").numeric_values(rows) // 100
        delays = flights.column("DepDelay").numeric_values(rows)
        by_hour = {
            int(h): float(np.nanmean(delays[hours == h]))
            for h in np.unique(hours)
        }
        best = min(by_hour, key=by_hour.get)
        assert best <= 7

    def test_q9_ev_most_cancellations(self, flights):
        means = column_mean(flights, "Airline", "Cancelled")
        assert max(means, key=means.get) == "EV"

    def test_q11_longest_flight_to_hawaii_or_coast(self, flights):
        rows = flights.members.indices()
        distances = flights.column("Distance").numeric_values(rows)
        longest = int(rows[np.argmax(distances)])
        row = flights.row(longest)
        assert distances.max() > 4000
        assert "HI" in (row["OriginState"], row["DestState"]) or {
            row["Origin"],
            row["Dest"],
        } <= {a.code for a in AIRPORTS}

    def test_q13_chicago_worst_weather(self, flights):
        means = column_mean(flights, "OriginCityName", "WeatherDelay")
        ranked = sorted(means, key=means.get, reverse=True)
        assert "Chicago" in ranked[:3]
        assert means["Honolulu"] < means["Chicago"]

    def test_q14_hawaii_carriers(self, flights):
        hawaii = flights.filter(ColumnPredicate("DestState", "==", "HI"))
        rows = hawaii.members.indices()
        carriers = set(
            hawaii.column("Airline").value(int(r)) for r in rows
        )
        allowed = {a.code for a in AIRLINES if a.flies_hawaii}
        assert carriers <= allowed
        assert "HA" in carriers

    def test_q19_carriers_stop_flying(self, flights):
        rows = flights.members.indices()
        years = flights.column("Year").numeric_values(rows)
        codes = flights.column("Airline").codes_at(rows)
        names = flights.column("Airline").dictionary.values
        last_seen = {}
        for code, name in enumerate(names):
            mask = codes == code
            if mask.any():
                last_seen[name] = int(years[mask].max())
        stopped = {name for name, year in last_seen.items() if year < 2018}
        assert stopped == {"EV", "MQ"}

    def test_q18_december_peak_and_christmas_dip(self, flights):
        december = flights.filter(ColumnPredicate("Month", "==", 12))
        rows = december.members.indices()
        days = december.column("DayofMonth").numeric_values(rows).astype(int)
        counts = np.bincount(days, minlength=32)
        peak_days = set(np.argsort(counts)[-4:])
        assert peak_days & {20, 21, 22, 23}
        assert counts[25] < counts[20]

    def test_q12_taxi_differs_by_airline_same_airport(self, flights):
        ord_flights = flights.filter(ColumnPredicate("Origin", "==", "ORD"))
        means = column_mean(ord_flights, "Airline", "TaxiOut")
        if "UA" in means and "AA" in means:
            assert abs(means["UA"] - means["AA"]) > 0.5

    def test_q20_no_downed_flights_information(self, flights):
        # The dataset genuinely lacks the information (as the paper found).
        assert "Crashed" not in flights.column_names
        assert "DownedFlights" not in flights.column_names
