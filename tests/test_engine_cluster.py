"""Cluster engine tests: caching, soft state, replay, fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buckets import DoubleBuckets
from repro.engine.cache import ComputationCache, DataCache

from tests.conftest import requires_caches
from repro.engine.cluster import Cluster
from repro.engine.dataset import DeriveMap, FilterMap
from repro.engine.faults import FaultInjector
from repro.engine.progress import CancellationToken
from repro.engine.redo_log import RedoLog
from repro.errors import DatasetMissingError, EngineError
from repro.sketches.histogram import HistogramSketch
from repro.sketches.moments import MomentsSketch
from repro.storage.loader import TableSource
from repro.table.compute import ColumnPredicate
from repro.table.schema import ContentsKind

BUCKETS = DoubleBuckets(0, 100, 20)


@pytest.fixture
def loaded(cluster, medium_numeric):
    source = TableSource([medium_numeric], shards_per_table=12)
    return cluster.load(source)


class TestExecution:
    def test_sketch_matches_direct(self, loaded, medium_numeric):
        summary = loaded.sketch(HistogramSketch("value", BUCKETS))
        exact = HistogramSketch("value", BUCKETS).summarize(medium_numeric)
        assert np.array_equal(summary.counts, exact.counts)

    def test_progress_and_bytes(self, loaded):
        run = loaded.run(HistogramSketch("value", BUCKETS))
        assert run.bytes_received > 0
        assert run.partials >= len(loaded.cluster.workers)

    def test_total_rows_and_schema(self, loaded, medium_numeric):
        assert loaded.total_rows == medium_numeric.num_rows
        assert loaded.schema == medium_numeric.schema

    def test_map_then_sketch(self, loaded, medium_numeric):
        filtered = loaded.map(FilterMap(ColumnPredicate("value", "<", 25)))
        stats = filtered.sketch(MomentsSketch("value"))
        expected = (medium_numeric.column("value").data < 25).sum()
        assert stats.present_count == expected

    def test_cancellation(self, loaded):
        token = CancellationToken()
        stream = loaded.sketch_stream(HistogramSketch("value", BUCKETS), token)
        first = next(stream)
        token.cancel()
        rest = list(stream)
        assert first.value.total_in_range > 0
        # The run ends early (queued micropartitions skipped).
        assert len(rest) <= 12


class TestComputationCache:
    @requires_caches
    def test_deterministic_sketch_cached(self, loaded):
        first = loaded.run(HistogramSketch("value", BUCKETS))
        second = loaded.run(HistogramSketch("value", BUCKETS))
        assert not first.cache_hit
        assert second.cache_hit
        assert np.array_equal(first.value.counts, second.value.counts)
        assert second.bytes_received == 0  # served locally at the root

    def test_randomized_sketch_not_cached(self, loaded):
        sampled = HistogramSketch("value", BUCKETS, rate=0.2, seed=1)
        loaded.run(sampled)
        second = loaded.run(sampled)
        assert not second.cache_hit

    def test_cache_keyed_by_dataset(self, loaded):
        loaded.run(HistogramSketch("value", BUCKETS))
        filtered = loaded.map(FilterMap(ColumnPredicate("value", ">", 50)))
        run = filtered.run(HistogramSketch("value", BUCKETS))
        assert not run.cache_hit  # same sketch, different dataset

    def test_cache_keyed_by_buckets(self, loaded):
        loaded.run(HistogramSketch("value", BUCKETS))
        other = loaded.run(HistogramSketch("value", DoubleBuckets(0, 100, 21)))
        assert not other.cache_hit


class TestSoftStateReplay:
    def test_eviction_then_sketch_replays(self, loaded, medium_numeric):
        cluster = loaded.cluster
        cluster.evict_dataset(loaded.dataset_id)
        summary = loaded.sketch(HistogramSketch("value", BUCKETS))
        exact = HistogramSketch("value", BUCKETS).summarize(medium_numeric)
        assert np.array_equal(summary.counts, exact.counts)

    def test_worker_crash_recovers_identical_results(self, loaded):
        before = loaded.sketch(HistogramSketch("value", BUCKETS))
        loaded.cluster.kill_worker(0)
        loaded.cluster.computation_cache.clear()
        after = loaded.sketch(HistogramSketch("value", BUCKETS))
        assert np.array_equal(before.counts, after.counts)

    def test_derived_dataset_replayed_through_lineage(self, loaded):
        filtered = loaded.map(FilterMap(ColumnPredicate("value", ">", 30)))
        derived = filtered.map(
            DeriveMap(
                "halved",
                ContentsKind.DOUBLE,
                lambda arrays: np.asarray(arrays["value"]) / 2,
                vectorized=True,
            )
        )
        expected = derived.sketch(MomentsSketch("halved"))
        # Lose everything everywhere, including intermediate datasets.
        for index in range(len(loaded.cluster.workers)):
            loaded.cluster.kill_worker(index)
        loaded.cluster.computation_cache.clear()
        replayed = derived.sketch(MomentsSketch("halved"))
        assert replayed.present_count == expected.present_count
        assert replayed.mean == pytest.approx(expected.mean)

    def test_sampled_sketch_replay_is_deterministic(self, loaded):
        sketch = HistogramSketch("value", BUCKETS, rate=0.1, seed=77)
        before = loaded.sketch(sketch)
        loaded.cluster.kill_worker(1)
        after = loaded.sketch(sketch)
        # Same seed + same shard ids -> bit-identical samples (§5.8).
        assert np.array_equal(before.counts, after.counts)

    def test_chaos_preserves_results(self, loaded):
        injector = FaultInjector(loaded.cluster, seed=9)
        baseline = loaded.sketch(HistogramSketch("value", BUCKETS))
        for _ in range(4):
            injector.chaos([loaded.dataset_id], rounds=2)
            loaded.cluster.computation_cache.clear()
            result = loaded.sketch(HistogramSketch("value", BUCKETS))
            assert np.array_equal(result.counts, baseline.counts)
        assert len(injector.events) == 8

    def test_worker_fetch_raises_when_missing(self, cluster, medium_numeric):
        ds = cluster.load(TableSource([medium_numeric], shards_per_table=4))
        cluster.workers[0].store.clear()
        with pytest.raises(DatasetMissingError):
            cluster.workers[0].fetch(ds.dataset_id)


class TestRedoLog:
    def test_lineage_order(self, loaded):
        filtered = loaded.map(FilterMap(ColumnPredicate("value", ">", 10)))
        chain = loaded.cluster.redo_log.lineage(filtered.dataset_id)
        assert len(chain) == 2
        assert chain[0].dataset_id == loaded.dataset_id
        assert chain[1].dataset_id == filtered.dataset_id

    def test_unknown_dataset(self):
        log = RedoLog()
        with pytest.raises(EngineError):
            log.lineage("nope")

    def test_duplicate_registration_is_idempotent(self, loaded):
        """Dataset ids are content-addressed: re-recording the same load
        (another session or root) is a no-op, but the same id naming
        different content is corruption and must raise."""
        log = loaded.cluster.redo_log
        op = log.creation_op(loaded.dataset_id)
        before = len(log)
        assert log.record_load(loaded.dataset_id, op.source) is op
        assert len(log) == before
        from repro.data.flights import FlightsSource

        with pytest.raises(EngineError, match="already recorded"):
            log.record_load(
                loaded.dataset_id, FlightsSource(10, partitions=1, seed=3)
            )

    def test_sketch_ops_recorded_with_seed(self, loaded):
        loaded.sketch(HistogramSketch("value", BUCKETS, rate=0.5, seed=123))
        entries = loaded.cluster.redo_log.describe()
        assert any("seed=123" in line for line in entries)


class TestCaches:
    def test_data_cache_lru(self):
        cache: DataCache[int] = DataCache(max_entries=2, ttl_seconds=100)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts b (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.evictions == 1

    def test_data_cache_ttl(self):
        clock = [0.0]
        cache: DataCache[int] = DataCache(
            max_entries=10, ttl_seconds=5.0, clock=lambda: clock[0]
        )
        cache.put("a", 1)
        clock[0] = 4.0
        assert cache.get("a") == 1
        clock[0] = 10.0
        assert cache.get("a") is None

    def test_purge_stale(self):
        clock = [0.0]
        cache: DataCache[int] = DataCache(
            max_entries=10, ttl_seconds=1.0, clock=lambda: clock[0]
        )
        cache.put("a", 1)
        cache.put("b", 2)
        clock[0] = 2.0
        assert cache.purge_stale() == 2
        assert len(cache) == 0

    @requires_caches
    def test_computation_cache_stats(self):
        cache = ComputationCache()
        assert cache.get("ds", "k") is None
        cache.put("ds", "k", 42)
        assert cache.get("ds", "k") == 42
        assert cache.hits == 1
        assert cache.misses == 1
        # Keys must not collide across datasets/sketches.
        assert cache.get("ds2", "k") is None
        assert cache.get("ds", "k2") is None
