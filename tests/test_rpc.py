"""Web-server RPC layer tests: protocol codecs, streaming, soft state."""

from __future__ import annotations

import json
from datetime import datetime, timezone

import numpy as np
import pytest

from repro.core.buckets import DoubleBuckets, ExplicitStringBuckets, StringBuckets
from repro.engine.cluster import Cluster
from repro.engine.rpc import (
    ProtocolError,
    RpcReply,
    RpcRequest,
    buckets_from_json,
    buckets_to_json,
    cell_from_json,
    cell_to_json,
    order_from_json,
    order_to_json,
    predicate_from_json,
    predicate_to_json,
    sketch_from_json,
    summary_to_json,
)
from repro.engine.web import WebServer
from repro.sketches.histogram import HistogramSketch
from repro.storage.loader import TableSource
from repro.table.compute import (
    AndPredicate,
    ColumnPredicate,
    NotPredicate,
    OrPredicate,
    StringMatchPredicate,
)
from repro.table.sort import RecordOrder
from repro.table.table import Table


@pytest.fixture(scope="module")
def numbers_table() -> Table:
    rng = np.random.default_rng(3)
    n = 5_000
    return Table.from_pydict(
        {
            "x": rng.uniform(0, 100, n).tolist(),
            "label": [f"item{int(v)}" for v in rng.integers(0, 20, n)],
        }
    )


@pytest.fixture
def server(numbers_table) -> tuple[WebServer, str]:
    web = WebServer(Cluster(num_workers=2, cores_per_worker=2))
    handle = web.load(TableSource([numbers_table], shards_per_table=4))
    return web, handle


def run(web: WebServer, handle: str, method: str, args=None, request_id=1):
    """Execute one request and return the list of replies."""
    request = RpcRequest(request_id, handle, method, args or {})
    return list(web.execute(request))


class TestEnvelopes:
    def test_request_round_trip(self):
        request = RpcRequest(7, "obj-1", "sketch", {"sketch": {"type": "x"}})
        back = RpcRequest.from_json(request.to_json())
        assert back == request

    def test_reply_round_trip(self):
        reply = RpcReply(3, "partial", progress=0.25, payload={"a": [1, 2]})
        back = RpcReply.from_json(reply.to_json())
        assert back.request_id == 3
        assert back.kind == "partial"
        assert back.progress == 0.25
        assert back.payload == {"a": [1, 2]}

    def test_null_payload_is_distinct_from_absent_payload(self):
        """Regression: a complete envelope whose payload is legitimately
        None must encode the null, while a payload-less ack must not grow
        a payload key — and both must round-trip to what they were."""
        import json

        from repro.engine.rpc import NO_PAYLOAD

        null_payload = RpcReply(7, "complete", payload=None)
        encoded = json.loads(null_payload.to_json())
        assert "payload" in encoded and encoded["payload"] is None
        back = RpcReply.from_json(null_payload.to_json())
        assert back.payload is None
        assert back.payload is not NO_PAYLOAD

        no_payload = RpcReply(8, "ack")
        assert "payload" not in json.loads(no_payload.to_json())
        assert RpcReply.from_json(no_payload.to_json()).payload is NO_PAYLOAD

    def test_malformed_json_rejected(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            RpcRequest.from_json("{nope")

    def test_missing_fields_rejected(self):
        with pytest.raises(ProtocolError, match="missing 'method'"):
            RpcRequest.from_json(json.dumps({"requestId": 1, "target": "t"}))


class TestValueCodecs:
    def test_cell_date_round_trip(self):
        stamp = datetime(2019, 7, 10, 12, 30, tzinfo=timezone.utc)
        assert cell_from_json(cell_to_json(stamp)) == stamp

    def test_cell_numpy_scalars_become_plain(self):
        assert cell_to_json(np.int64(4)) == 4
        assert isinstance(cell_to_json(np.float64(0.5)), float)

    @pytest.mark.parametrize(
        "buckets",
        [
            DoubleBuckets(0.0, 10.0, 8),
            StringBuckets(["a", "f", "m"]),
            ExplicitStringBuckets(["x", "y", "z"]),
        ],
    )
    def test_buckets_round_trip(self, buckets):
        back = buckets_from_json(buckets_to_json(buckets))
        assert back.spec() == buckets.spec()

    def test_unknown_buckets_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown buckets type"):
            buckets_from_json({"type": "mystery"})

    @pytest.mark.parametrize(
        "predicate",
        [
            ColumnPredicate("x", ">", 5),
            ColumnPredicate("x", "between", [1, 3]),
            ColumnPredicate("x", "is_missing"),
            StringMatchPredicate("s", "foo", "regex", False),
            AndPredicate(
                [ColumnPredicate("x", ">", 1), ColumnPredicate("x", "<", 9)]
            ),
            OrPredicate(
                [ColumnPredicate("x", "==", 1), ColumnPredicate("x", "==", 2)]
            ),
            NotPredicate(ColumnPredicate("x", "==", 0)),
        ],
    )
    def test_predicate_round_trip(self, predicate):
        back = predicate_from_json(predicate_to_json(predicate))
        assert back.spec() == predicate.spec()

    def test_order_round_trip(self):
        order = RecordOrder.of("a", "b", ascending=[True, False])
        back = order_from_json(order_to_json(order))
        assert back.spec() == order.spec()

    def test_empty_order_rejected(self):
        with pytest.raises(ProtocolError):
            order_from_json([])


class TestSketchRegistry:
    def test_histogram_spec(self):
        sketch = sketch_from_json(
            {
                "type": "histogram",
                "column": "x",
                "buckets": {"type": "double", "min": 0, "max": 10, "count": 5},
                "rate": 0.5,
                "seed": 9,
            }
        )
        assert isinstance(sketch, HistogramSketch)
        assert sketch.rate == 0.5
        assert sketch.buckets.count == 5

    def test_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown sketch type"):
            sketch_from_json({"type": "teleport"})

    def test_missing_argument_reported(self):
        with pytest.raises(ProtocolError, match="missing argument"):
            sketch_from_json({"type": "histogram", "column": "x"})

    def test_every_registered_type_builds(self, numbers_table):
        """Each sketch spec builds and runs against a real shard."""
        b = {"type": "double", "min": 0, "max": 100, "count": 4}
        sb = {"type": "strings", "values": [f"item{i}" for i in range(20)]}
        order = [{"column": "x", "ascending": True}]
        specs = [
            {"type": "histogram", "column": "x", "buckets": b},
            {"type": "cdf", "column": "x", "buckets": b},
            {
                "type": "heatmap",
                "xColumn": "x", "xBuckets": b,
                "yColumn": "x", "yBuckets": b,
            },
            {
                "type": "stacked",
                "xColumn": "x", "xBuckets": b,
                "yColumn": "label", "yBuckets": sb,
            },
            {
                "type": "trellisHeatmap",
                "groupColumn": "label", "groupBuckets": sb,
                "xColumn": "x", "xBuckets": b,
                "yColumn": "x", "yBuckets": b,
            },
            {
                "type": "trellisHistogram",
                "groupColumn": "label", "groupBuckets": sb,
                "xColumn": "x", "xBuckets": b,
            },
            {"type": "moments", "column": "x"},
            {"type": "distinct", "column": "label"},
            {"type": "heavyHitters", "column": "label", "k": 5},
            {
                "type": "heavyHitters",
                "column": "label",
                "k": 5,
                "method": "sampling",
                "rate": 0.5,
            },
            {"type": "nextK", "order": order, "k": 5},
            {"type": "quantile", "order": order, "rate": 0.1},
            {
                "type": "find",
                "order": order,
                "match": {
                    "type": "match",
                    "column": "label",
                    "pattern": "item1",
                },
            },
            {"type": "bottomK", "column": "label", "k": 50},
        ]
        for spec in specs:
            sketch = sketch_from_json(spec)
            summary = sketch.summarize(numbers_table)
            payload = summary_to_json(summary)
            json.dumps(payload)  # payloads must be JSON-serializable

    def test_summary_payload_unknown_type_rejected(self):
        with pytest.raises(ProtocolError, match="no JSON payload"):
            summary_to_json(object())


class TestWebServerQueries:
    def test_sketch_streams_and_completes(self, server):
        web, handle = server
        replies = run(
            web,
            handle,
            "sketch",
            {
                "sketch": {
                    "type": "histogram",
                    "column": "x",
                    "buckets": {
                        "type": "double", "min": 0, "max": 100, "count": 10,
                    },
                }
            },
        )
        assert replies[-1].kind == "complete"
        assert replies[-1].progress == 1.0
        counts = replies[-1].payload["counts"]
        assert sum(counts) == 5_000
        for reply in replies[:-1]:
            assert reply.kind == "partial"
            assert reply.progress < 1.0

    def test_replies_serialize_to_json(self, server):
        web, handle = server
        replies = run(
            web, handle, "sketch",
            {"sketch": {"type": "moments", "column": "x"}},
        )
        for reply in replies:
            RpcReply.from_json(reply.to_json())

    def test_execute_accepts_raw_json(self, server):
        web, handle = server
        request = RpcRequest(
            5, handle, "sketch", {"sketch": {"type": "moments", "column": "x"}}
        )
        replies = list(web.execute(request.to_json()))
        assert replies[-1].kind == "complete"
        assert replies[-1].payload["presentCount"] == 5_000

    def test_schema_and_row_count(self, server):
        web, handle = server
        [schema_reply] = run(web, handle, "schema")
        names = [c["name"] for c in schema_reply.payload["columns"]]
        assert names == ["x", "label"]
        [rows_reply] = run(web, handle, "rowCount")
        assert rows_reply.payload["rows"] == 5_000

    def test_filter_creates_new_handle(self, server):
        web, handle = server
        [ack] = run(
            web,
            handle,
            "filter",
            {
                "predicate": {
                    "type": "column", "column": "x", "op": "<", "value": 50,
                }
            },
        )
        assert ack.kind == "ack"
        derived = ack.payload["handle"]
        assert derived != handle
        [rows_reply] = run(web, derived, "rowCount")
        assert 0 < rows_reply.payload["rows"] < 5_000

    def test_project_narrows_schema(self, server):
        web, handle = server
        [ack] = run(web, handle, "project", {"columns": ["label"]})
        [schema_reply] = run(web, ack.payload["handle"], "schema")
        assert [c["name"] for c in schema_reply.payload["columns"]] == ["label"]

    def test_unknown_method_is_error_reply(self, server):
        web, handle = server
        [reply] = run(web, handle, "teleport")
        assert reply.kind == "error"
        assert "unknown method" in reply.error

    def test_unknown_target_is_error_reply(self, server):
        web, _ = server
        [reply] = run(web, "obj-999", "rowCount")
        assert reply.kind == "error"
        assert "unknown remote object" in reply.error

    def test_bad_sketch_spec_is_error_reply(self, server):
        web, handle = server
        replies = run(web, handle, "sketch", {"sketch": {"type": "nope"}})
        assert replies[0].kind == "error"

    def test_ping(self, server):
        web, handle = server
        [reply] = run(web, handle, "ping")
        assert reply.payload == {"pong": True}


class TestSoftState:
    def test_evicted_root_rebuilds_from_source(self, server):
        web, handle = server
        web.evict(handle)
        [reply] = run(web, handle, "rowCount")
        assert reply.payload["rows"] == 5_000

    def test_evicted_derived_handle_replays_lineage(self, server):
        web, handle = server
        [ack] = run(
            web,
            handle,
            "filter",
            {
                "predicate": {
                    "type": "column", "column": "x", "op": ">=", "value": 50,
                }
            },
        )
        derived = ack.payload["handle"]
        [before] = run(web, derived, "rowCount")
        # Evict both the derived object and its parent: the rebuild must
        # recurse all the way down to the data source (§5.7).
        web.evict(derived)
        web.evict(handle)
        [after] = run(web, derived, "rowCount")
        assert after.payload["rows"] == before.payload["rows"]

    def test_evict_via_rpc(self, server):
        web, handle = server
        [ack] = run(web, handle, "evict")
        assert ack.payload == {"evicted": True}
        [reply] = run(web, handle, "rowCount")
        assert reply.payload["rows"] == 5_000

    def test_chained_derivations_rebuild(self, server):
        web, handle = server
        [ack1] = run(
            web, handle, "filter",
            {"predicate": {"type": "column", "column": "x", "op": ">", "value": 25}},
        )
        [ack2] = run(web, ack1.payload["handle"], "project", {"columns": ["x"]})
        leaf = ack2.payload["handle"]
        [before] = run(web, leaf, "rowCount")
        for h in (leaf, ack1.payload["handle"], handle):
            web.evict(h)
        [after] = run(web, leaf, "rowCount")
        assert after.payload["rows"] == before.payload["rows"]


class TestCancellation:
    def test_cancel_unknown_request(self, server):
        web, _ = server
        assert web.cancel(12345) is False

    def test_cancel_mid_stream(self, numbers_table):
        web = WebServer(Cluster(num_workers=2, cores_per_worker=1))
        handle = web.load(TableSource([numbers_table], shards_per_table=64))
        request = RpcRequest(
            42,
            handle,
            "sketch",
            {
                "sketch": {
                    "type": "histogram",
                    "column": "x",
                    "buckets": {
                        "type": "double", "min": 0, "max": 100, "count": 10,
                    },
                }
            },
        )
        stream = web.execute(request)
        first = next(stream)
        assert first.kind in ("partial", "complete")
        cancelled = web.cancel(42)
        remaining = list(stream)
        if cancelled and remaining:
            assert remaining[-1].kind in ("cancelled", "complete")


class TestFailureInjection:
    """Worker crashes under the web layer: queries still answer (§5.7-5.8)."""

    def test_worker_crash_between_queries(self, numbers_table):
        web = WebServer(Cluster(num_workers=3, cores_per_worker=2))
        handle = web.load(TableSource([numbers_table], shards_per_table=6))
        spec = {
            "sketch": {
                "type": "histogram",
                "column": "x",
                "buckets": {"type": "double", "min": 0, "max": 100, "count": 10},
            }
        }
        before = run(web, handle, "sketch", spec)[-1].payload["counts"]
        web.cluster.kill_worker(0)
        web.cluster.computation_cache.clear()
        after = run(web, handle, "sketch", spec)[-1].payload["counts"]
        assert after == before

    def test_crash_plus_eviction_of_derived_handle(self, numbers_table):
        web = WebServer(Cluster(num_workers=2, cores_per_worker=2))
        handle = web.load(TableSource([numbers_table], shards_per_table=4))
        [ack] = run(
            web, handle, "filter",
            {"predicate": {"type": "column", "column": "x", "op": "<", "value": 30}},
        )
        derived = ack.payload["handle"]
        [before] = run(web, derived, "rowCount")
        # Lose every worker's soft state AND the web server's handles.
        for index in range(len(web.cluster.workers)):
            web.cluster.kill_worker(index)
        web.cluster.computation_cache.clear()
        web.evict(derived)
        web.evict(handle)
        [after] = run(web, derived, "rowCount")
        assert after.payload["rows"] == before.payload["rows"]

    def test_sampled_query_replay_deterministic_through_rpc(self, numbers_table):
        web = WebServer(Cluster(num_workers=2, cores_per_worker=2))
        handle = web.load(TableSource([numbers_table], shards_per_table=4))
        spec = {
            "sketch": {
                "type": "histogram",
                "column": "x",
                "buckets": {"type": "double", "min": 0, "max": 100, "count": 10},
                "rate": 0.2,
                "seed": 123,
            }
        }
        before = run(web, handle, "sketch", spec)[-1].payload["counts"]
        web.cluster.kill_worker(1)
        after = run(web, handle, "sketch", spec)[-1].payload["counts"]
        # Same seed + same shard ids -> bit-identical samples (§5.8).
        assert after == before


class TestPcaAndSaveOverRpc:
    def test_correlation_sketch_via_rpc(self, server):
        web, handle = server
        replies = run(
            web, handle, "sketch",
            {"sketch": {"type": "correlation", "columns": ["x", "x"]}},
        )
        payload = replies[-1].payload
        assert payload["type"] == "correlation"
        assert payload["count"] == 5_000
        # A column correlates perfectly with itself.
        import numpy as np

        from repro.sketches.pca import CorrelationSummary

        summary = CorrelationSummary(
            columns=payload["columns"],
            count=payload["count"],
            sums=np.array(payload["sums"]),
            products=np.array(payload["products"]),
        )
        assert summary.correlation()[0, 1] == pytest.approx(1.0)

    def test_correlation_requires_two_columns(self, server):
        web, handle = server
        [reply] = run(
            web, handle, "sketch",
            {"sketch": {"type": "correlation", "columns": ["x"]}},
        )
        assert reply.kind == "error"

    def test_save_via_rpc(self, server, tmp_path):
        web, handle = server
        target = str(tmp_path / "saved")
        replies = run(
            web, handle, "sketch",
            {"sketch": {"type": "save", "directory": target, "format": "hvc"}},
        )
        payload = replies[-1].payload
        assert payload["type"] == "saveStatus"
        assert payload["errors"] == []
        assert payload["rowsWritten"] == 5_000
        # The written dataset loads back with identical totals.
        from repro.storage import columnar

        shards = columnar.read_dataset(target, verify_snapshot=False)
        assert sum(s.num_rows for s in shards) == 5_000


class TestHeatmapSwap:
    def test_swapped_transposes_counts(self, numbers_table):
        from repro.core.resolution import Resolution
        from repro.engine.local import parallel_dataset
        from repro.spreadsheet import Spreadsheet

        sheet = Spreadsheet(
            parallel_dataset(numbers_table, shards=4),
            resolution=Resolution(120, 60),
            seed=8,
        )
        chart = sheet.heatmap("x", "x")
        flipped = chart.swapped()
        assert flipped.x_column == chart.y_column
        assert flipped.cell_value(2, 5) == chart.cell_value(5, 2)
        # Swapping twice is the identity.
        again = flipped.swapped()
        assert (again.summary.counts == chart.summary.counts).all()
        assert again.summary.x_missing == chart.summary.x_missing

    def test_swap_runs_no_query(self, numbers_table):
        from repro.core.resolution import Resolution
        from repro.engine.local import parallel_dataset
        from repro.spreadsheet import Spreadsheet

        sheet = Spreadsheet(
            parallel_dataset(numbers_table, shards=2),
            resolution=Resolution(120, 60),
        )
        chart = sheet.heatmap("x", "x")
        actions_before = len(sheet.log.actions)
        chart.swapped()
        assert len(sheet.log.actions) == actions_before


class TestMalformedRequests:
    def test_malformed_json_yields_error_reply(self, server):
        web, _ = server
        [reply] = list(web.execute("{not json"))
        assert reply.kind == "error"
        assert reply.request_id == -1

    def test_missing_sketch_spec(self, server):
        web, handle = server
        [reply] = run(web, handle, "sketch", {})
        assert reply.kind == "error"
        assert "sketch" in reply.error

    def test_project_empty_columns(self, server):
        web, handle = server
        [reply] = run(web, handle, "project", {"columns": []})
        assert reply.kind == "error"

    def test_filter_missing_predicate(self, server):
        web, handle = server
        [reply] = run(web, handle, "filter", {})
        assert reply.kind == "error"

    def test_derive_missing_args(self, server):
        web, handle = server
        [reply] = run(web, handle, "derive", {"name": "x"})
        assert reply.kind == "error"
