"""Tests for resolutions, sample-size bounds, and deterministic randomness."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import sampling
from repro.core.rand import hash_indices, rng_for, stable_hash64
from repro.core.resolution import (
    DEFAULT_RESOLUTION,
    MAX_HISTOGRAM_BUCKETS,
    MAX_STRING_BUCKETS,
    Resolution,
)


class TestResolution:
    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Resolution(0, 100)
        with pytest.raises(ValueError):
            Resolution(100, -1)

    def test_histogram_buckets_capped_at_100(self):
        assert Resolution(4000, 200).histogram_buckets() == MAX_HISTOGRAM_BUCKETS

    def test_histogram_buckets_limited_by_width(self):
        # Bars need ~4 pixels each.
        assert Resolution(40, 200).histogram_buckets() == 10

    def test_requested_clamped(self):
        r = Resolution(600, 200)
        assert r.histogram_buckets(10) == 10
        assert r.histogram_buckets(10_000) == MAX_HISTOGRAM_BUCKETS
        assert r.histogram_buckets(0) == 1

    def test_string_buckets_limited_to_50(self):
        r = DEFAULT_RESOLUTION
        assert r.string_buckets(10) == 10
        assert r.string_buckets(10_000) == MAX_STRING_BUCKETS

    def test_heatmap_bins(self):
        bx, by = Resolution(600, 300).heatmap_bins(3)
        assert (bx, by) == (200, 100)
        with pytest.raises(ValueError):
            Resolution(600, 300).heatmap_bins(0)

    def test_trellis_split_covers_panes(self):
        pane, cols, rows = Resolution(600, 200).split_trellis(6)
        assert cols * rows >= 6
        assert pane.width <= 600 and pane.height <= 200
        with pytest.raises(ValueError):
            Resolution(600, 200).split_trellis(0)

    def test_trellis_panes_shrink(self):
        whole = Resolution(600, 200)
        pane, _, _ = whole.split_trellis(4)
        assert pane.width * pane.height < whole.width * whole.height


class TestSampleSizes:
    def test_hoeffding_basics(self):
        n = sampling.hoeffding_sample_size(0.01, 0.01)
        assert n == math.ceil(math.log(200) / (2 * 0.0001))

    def test_hoeffding_validates(self):
        with pytest.raises(ValueError):
            sampling.hoeffding_sample_size(0.0)
        with pytest.raises(ValueError):
            sampling.hoeffding_sample_size(0.1, delta=1.5)

    def test_union_bound_grows_with_classes(self):
        single = sampling.uniform_error_sample_size(0.05, 1)
        many = sampling.uniform_error_sample_size(0.05, 100)
        assert many > single

    @given(st.integers(50, 400), st.integers(2, 100))
    def test_histogram_bound_monotone_in_height(self, height, buckets):
        smaller = sampling.histogram_sample_size(height, buckets)
        larger = sampling.histogram_sample_size(height * 2, buckets)
        assert larger > smaller

    def test_histogram_pmax_hint_reduces_samples(self):
        pessimistic = sampling.histogram_sample_size(200, 100)
        informed = sampling.histogram_sample_size(200, 100, p_max_hint=0.5)
        assert informed < pessimistic

    def test_practical_rule_is_cv_squared(self):
        n = sampling.practical_histogram_sample_size(200, delta=0.01, c=5.0)
        assert n == math.ceil(5.0 * 200 * 200 * math.log(200))

    def test_cdf_independent_of_buckets(self):
        # CDF sample size depends only on resolution, not data or bars.
        assert sampling.cdf_sample_size(200) == sampling.cdf_sample_size(200)
        assert sampling.cdf_sample_size(400) > sampling.cdf_sample_size(100)

    def test_heavy_hitters_theorem4_form(self):
        k = 20
        n = sampling.heavy_hitters_sample_size(k, delta=0.01)
        assert n == math.ceil(k * k * math.log(k / 0.01))

    def test_quantile_grows_quadratically(self):
        small = sampling.quantile_sample_size(50)
        large = sampling.quantile_sample_size(100)
        assert 3.5 < large / small < 4.5

    def test_heatmap_bound_scales_with_colors(self):
        few = sampling.heatmap_sample_size(50, 50, 5)
        many = sampling.heatmap_sample_size(50, 50, 40)
        assert many > few

    def test_sample_rate_clamps(self):
        assert sampling.sample_rate(1000, 100) == 1.0
        assert sampling.sample_rate(100, 1000) == pytest.approx(0.1)
        assert sampling.sample_rate(0, 1000) == 0.0
        assert sampling.sample_rate(100, 0) == 1.0
        with pytest.raises(ValueError):
            sampling.sample_rate(-1, 10)


class TestDeterministicRandomness:
    def test_stable_hash_is_stable(self):
        # Must be identical across runs/processes: fixed expectation.
        assert stable_hash64("a", 1) == stable_hash64("a", 1)
        assert stable_hash64("a", 1) != stable_hash64("a", 2)
        assert stable_hash64("a", 1) != stable_hash64(1, "a")

    def test_rng_streams_reproducible(self):
        a = rng_for(5, "x").integers(0, 1 << 30, 10)
        b = rng_for(5, "x").integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_rng_streams_independent(self):
        a = rng_for(5, "x").integers(0, 1 << 30, 10)
        b = rng_for(5, "y").integers(0, 1 << 30, 10)
        assert not np.array_equal(a, b)

    def test_hash_indices_deterministic_and_seeded(self):
        idx = np.arange(100, dtype=np.int64)
        h1 = hash_indices(idx, seed=1)
        h2 = hash_indices(idx, seed=1)
        h3 = hash_indices(idx, seed=2)
        assert np.array_equal(h1, h2)
        assert not np.array_equal(h1, h3)

    def test_hash_indices_well_distributed(self):
        idx = np.arange(10_000, dtype=np.int64)
        hashes = hash_indices(idx, seed=3)
        # Top bit should be ~50/50.
        top = (hashes >> np.uint64(63)).astype(np.int64)
        assert 0.45 < top.mean() < 0.55
        assert len(np.unique(hashes)) == len(hashes)
