"""Session manager tests: soft state, idle-TTL sweep, shared datasets."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine.cluster import Cluster
from repro.engine.rpc import ProtocolError, RpcRequest
from repro.service import SessionManager, source_from_json
from repro.storage.loader import TableSource
from repro.table.table import Table


class FakeClock:
    def __init__(self) -> None:
        self.t = 1000.0

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


@pytest.fixture(scope="module")
def source() -> TableSource:
    rng = np.random.default_rng(5)
    table = Table.from_pydict({"x": rng.uniform(0, 10, 4_000).tolist()})
    return TableSource([table], shards_per_table=8)


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture
def manager(clock) -> SessionManager:
    return SessionManager(
        Cluster(num_workers=2, cores_per_worker=2),
        idle_ttl_seconds=60.0,
        expire_ttl_seconds=240.0,
        clock=clock.now,
    )


def row_count(session, handle: str) -> int:
    [reply] = list(session.web.execute(RpcRequest(1, handle, "rowCount")))
    assert reply.kind == "complete", reply.error
    return reply.payload["rows"]


class TestLifecycle:
    def test_sessions_get_distinct_namespaces(self, manager, source):
        a = manager.get_or_create(None)
        b = manager.get_or_create(None)
        assert a.session_id != b.session_id
        ha = a.web.load(source)
        # b cannot see a's handle: namespaces are per-session.
        [reply] = list(b.web.execute(RpcRequest(1, ha, "rowCount")))
        assert reply.kind == "error"
        assert reply.code == "unknown_handle"

    def test_reattach_by_id_resumes_soft_state(self, manager, source):
        session = manager.get_or_create("laptop")
        handle = session.web.load(source)
        again = manager.get_or_create("laptop")
        assert again is session
        assert row_count(again, handle) == 4_000

    def test_duplicate_create_rejected(self, manager):
        manager.create("dup")
        with pytest.raises(ProtocolError, match="already exists"):
            manager.create("dup")

    def test_close_cancels_and_drops(self, manager, source):
        session = manager.get_or_create("gone")
        session.web.load(source)
        assert manager.close("gone") is True
        assert manager.get("gone") is None
        assert manager.close("gone") is False


class TestIdleSweep:
    def test_idle_session_handles_evicted_then_rebuilt(
        self, manager, clock, source
    ):
        session = manager.get_or_create("sleepy")
        handle = session.web.load(source)
        assert row_count(session, handle) == 4_000
        clock.advance(61.0)
        assert manager.sweep() >= 1
        # The handle's dataset is gone but its lineage is not...
        assert session.web._handles == {}
        assert handle in session.web.handles
        assert session.metrics.handle_evictions >= 1
        # ...so the next request transparently replays it (§5.7).
        assert row_count(session, handle) == 4_000

    def test_recent_activity_defers_the_sweep(self, manager, clock, source):
        session = manager.get_or_create("busy")
        session.web.load(source)
        clock.advance(59.0)
        session.touch()
        assert manager.sweep() == 0
        assert session.web._handles != {}

    def test_swept_root_handle_reattaches_to_pooled_dataset(
        self, manager, clock, source
    ):
        """Rebuilding an evicted root handle must reuse the shared cluster
        dataset, not re-read the source into a duplicate set of shards."""
        session = manager.get_or_create("pooled")
        handle = session.web.load(source)
        original_id = session.web.dataset(handle).dataset_id
        clock.advance(61.0)
        assert manager.sweep() >= 1
        assert session.web.dataset(handle).dataset_id == original_id

    def test_expired_sessions_are_dropped_entirely(self, manager, clock, source):
        session = manager.get_or_create("forgotten")
        session.web.load(source)
        keeper = manager.get_or_create("keeper")
        clock.advance(241.0)
        keeper.touch()
        assert manager.expire() == ["forgotten"]
        assert manager.get("forgotten") is None
        assert manager.get("keeper") is keeper
        assert manager.sessions_expired == 1
        # Reconnecting with the expired id starts a fresh session.
        fresh = manager.get_or_create("forgotten")
        assert fresh.web.handles == []

    def test_derived_handles_survive_sweep_via_lineage(
        self, manager, clock, source
    ):
        session = manager.get_or_create("deriver")
        root = session.web.load(source)
        [ack] = list(
            session.web.execute(
                RpcRequest(
                    2,
                    root,
                    "filter",
                    {
                        "predicate": {
                            "type": "column", "column": "x", "op": "<", "value": 5,
                        }
                    },
                )
            )
        )
        derived = ack.payload["handle"]
        before = row_count(session, derived)
        clock.advance(120.0)
        assert manager.sweep() >= 2  # root and derived both evicted
        assert row_count(session, derived) == before


class TestLifecycleRaces:
    """Regression tests for the get-or-create and sweep/expire races."""

    def test_racing_resumes_of_one_id_are_atomic(self, manager):
        """Two connections resuming the same id used to race get() and
        create(): both could miss, and the loser got a protocol error for
        a perfectly legitimate reconnect.  get-or-create is now atomic
        under the manager lock: every racer receives the same session.

        A delay injected into ``get`` widens the old check-then-act
        window so the race is caught deterministically; the atomic
        implementation never leaves the lock between check and create,
        so the delay is harmless there."""
        import time as time_mod

        original_get = manager.get

        def slow_get(session_id):
            result = original_get(session_id)
            time_mod.sleep(0.002)
            return result

        manager.get = slow_get
        for round_no in range(20):
            session_id = f"racer-{round_no}"
            barrier = threading.Barrier(8)
            results, errors = [], []

            def attempt():
                barrier.wait()
                try:
                    results.append(manager.get_or_create(session_id))
                except Exception as exc:  # noqa: BLE001 — the regression
                    errors.append(exc)

            threads = [threading.Thread(target=attempt) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert not errors, f"round {round_no}: {errors[0]!r}"
            assert len(results) == 8
            assert len({id(s) for s in results}) == 1

    @staticmethod
    def _flip_active(session) -> dict:
        """Make ``session.active`` read False once (the sweep snapshot),
        then True forever — simulating a query admitted between the
        snapshot and the teardown."""
        reads = {"count": 0}
        base = type(session)

        class FlipActive(base):
            @property
            def active(self):  # noqa: D401 — test double
                reads["count"] += 1
                return reads["count"] > 1

        session.__class__ = FlipActive
        return reads

    def test_expire_skips_session_that_became_active(
        self, manager, clock, source
    ):
        session = manager.get_or_create("lively")
        session.web.load(source)
        reads = self._flip_active(session)
        clock.advance(241.0)
        assert manager.expire() == []
        assert reads["count"] >= 2, "activity was not re-checked at teardown"
        assert manager.get("lively") is session
        assert session.web._handles != {}, "active session was torn down"

    def test_sweep_skips_session_that_became_active(
        self, manager, clock, source
    ):
        session = manager.get_or_create("reprieved")
        session.web.load(source)
        reads = self._flip_active(session)
        clock.advance(61.0)
        assert manager.sweep() == 0
        assert reads["count"] >= 2, "activity was not re-checked at eviction"
        assert session.web._handles != {}, "active session's handles evicted"


class TestSharedDatasets:
    def test_same_spec_shares_cluster_dataset(self, manager, source):
        a = manager.get_or_create("u1")
        b = manager.get_or_create("u2")
        ha = a.web.load(source)
        hb = b.web.load(source)
        assert a.web.dataset(ha).dataset_id == b.web.dataset(hb).dataset_id

    def test_row_count_cached_on_cluster(self, manager, source):
        from repro.engine.cache import caches_disabled

        session = manager.get_or_create("counter")
        handle = session.web.load(source)
        dataset = session.web.dataset(handle)
        assert row_count(session, handle) == 4_000
        if not caches_disabled():
            assert (
                manager.cluster.cached_row_count(dataset.dataset_id) == 4_000
            )
        # Even after every worker loses the shards, the count is served
        # without a shard walk.
        for index in range(len(manager.cluster.workers)):
            manager.cluster.kill_worker(index)
        assert dataset.total_rows == 4_000


class TestSourceSpecs:
    def test_default_requires_configuration(self):
        with pytest.raises(ProtocolError, match="no default dataset"):
            source_from_json({}, default=None)

    def test_default_resolves(self, source):
        assert source_from_json({}, default=source) is source
        assert source_from_json({"kind": "default"}, default=source) is source

    def test_flights_spec(self):
        resolved = source_from_json(
            {"kind": "flights", "rows": 1234, "partitions": 4, "seed": 9}
        )
        assert resolved.total_rows == 1234
        assert resolved.partitions == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown source kind"):
            source_from_json({"kind": "telepathy"})


class TestErrorEnvelopes:
    def test_unknown_handle_is_structured(self, manager):
        session = manager.get_or_create("err")
        [reply] = list(session.web.execute(RpcRequest(7, "obj-404", "rowCount")))
        assert reply.kind == "error"
        assert reply.code == "unknown_handle"
        assert "unknown remote object" in reply.error

    def test_internal_failure_is_contained(self, manager, source, monkeypatch):
        """A crash inside dispatch becomes an 'internal' envelope, not an
        exception through the shared service loop."""
        from repro.engine import rpc as rpc_mod

        def boom(args):
            raise RuntimeError("sketch builder exploded")

        monkeypatch.setitem(rpc_mod.SKETCH_BUILDERS, "boom", boom)
        session = manager.get_or_create("kaboom")
        handle = session.web.load(source)
        [reply] = list(
            session.web.execute(
                RpcRequest(8, handle, "sketch", {"sketch": {"type": "boom"}})
            )
        )
        assert reply.kind == "error"
        assert reply.code == "internal"
        assert "sketch builder exploded" in reply.error

    def test_leaf_failure_becomes_error_envelope(self, manager, source):
        """A sketch whose leaves all fail (bad column) must answer with an
        error envelope, not a 'complete' with an empty payload."""
        session = manager.get_or_create("badcol")
        handle = session.web.load(source)
        spec = {
            "type": "histogram",
            "column": "no_such_column",
            "buckets": {"type": "double", "min": 0, "max": 1, "count": 2},
        }
        replies = list(
            session.web.execute(
                RpcRequest(10, handle, "sketch", {"sketch": spec})
            )
        )
        assert replies[-1].kind == "error"
        assert "no_such_column" in replies[-1].error

    def test_protocol_error_code(self, manager, source):
        session = manager.get_or_create("proto")
        handle = session.web.load(source)
        [reply] = list(session.web.execute(RpcRequest(9, handle, "teleport")))
        assert reply.kind == "error"
        assert reply.code == "protocol"
