"""Membership set tests, including the paper's sampling algorithms (§5.6)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.table.membership import (
    DenseMembership,
    FullMembership,
    SparseMembership,
    membership_from_indices,
    membership_from_mask,
)


def rng():
    return np.random.default_rng(123)


class TestRepresentationChoice:
    def test_full_mask(self):
        m = membership_from_mask(np.ones(100, dtype=bool))
        assert isinstance(m, FullMembership)

    def test_sparse_below_threshold(self):
        mask = np.zeros(1000, dtype=bool)
        mask[:50] = True  # 5% < 1/8
        assert isinstance(membership_from_mask(mask), SparseMembership)

    def test_dense_above_threshold(self):
        mask = np.zeros(1000, dtype=bool)
        mask[:500] = True
        assert isinstance(membership_from_mask(mask), DenseMembership)

    def test_from_indices(self):
        m = membership_from_indices(np.array([1, 5, 5, 9]), 1000)
        assert isinstance(m, SparseMembership)
        assert m.size == 3  # deduplicated
        assert membership_from_indices(np.arange(10), 10).size == 10


class TestBasics:
    @pytest.mark.parametrize(
        "members",
        [
            FullMembership(50),
            DenseMembership(np.arange(50) % 2 == 0),
            SparseMembership(np.array([3, 7, 11]), 50),
        ],
    )
    def test_indices_match_mask(self, members):
        assert np.array_equal(np.flatnonzero(members.mask()), members.indices())
        assert members.size == len(members.indices())
        for row in members.indices()[:5]:
            assert members.contains(int(row))
        assert not members.contains(-1)

    def test_density(self):
        assert FullMembership(10).density == 1.0
        assert SparseMembership(np.array([0]), 10).density == 0.1
        assert FullMembership(0).density == 0.0

    def test_sparse_rejects_out_of_universe(self):
        with pytest.raises(ValueError):
            SparseMembership(np.array([100]), 50)

    def test_intersect_mask(self):
        m = FullMembership(10)
        mask = np.zeros(10, dtype=bool)
        mask[[2, 4, 6]] = True
        sub = m.intersect_mask(mask)
        assert sub.indices().tolist() == [2, 4, 6]
        # Intersecting a sparse set keeps only surviving members.
        sub2 = sub.intersect_mask(~mask)
        assert sub2.size == 0


class TestFixedSizeSampling:
    @pytest.mark.parametrize(
        "members",
        [
            FullMembership(1000),
            DenseMembership(np.arange(1000) % 3 != 0),
            SparseMembership(np.arange(0, 1000, 13), 1000),
        ],
    )
    def test_sample_is_subset_without_replacement(self, members):
        sample = members.sample(20, rng())
        assert len(sample) == 20
        assert len(np.unique(sample)) == 20
        member_set = set(members.indices().tolist())
        assert set(sample.tolist()) <= member_set

    def test_oversized_sample_returns_all(self):
        m = SparseMembership(np.array([1, 2, 3]), 10)
        assert np.array_equal(m.sample(10, rng()), m.indices())

    def test_sample_uniformity_chi_squared(self):
        """Bottom-k hash sampling must be uniform over members."""
        members = SparseMembership(np.arange(0, 2000, 2), 2000)
        counts = np.zeros(members.size)
        position = {int(v): i for i, v in enumerate(members.indices())}
        generator = np.random.default_rng(7)
        for _ in range(300):
            for row in members.sample(100, generator):
                counts[position[int(row)]] += 1
        expected = counts.mean()
        chi2 = ((counts - expected) ** 2 / expected).sum()
        p_value = stats.chi2.sf(chi2, df=members.size - 1)
        assert p_value > 1e-4, f"sampling looks non-uniform (p={p_value})"


class TestRateSampling:
    @pytest.mark.parametrize(
        "members",
        [
            FullMembership(20_000),
            DenseMembership(np.arange(20_000) % 4 != 0),
            SparseMembership(np.arange(0, 20_000, 7), 20_000),
        ],
    )
    def test_rate_sample_size_binomial(self, members):
        rate = 0.1
        sizes = [
            len(members.sample_rate(rate, np.random.default_rng(seed)))
            for seed in range(30)
        ]
        expected = members.size * rate
        sd = np.sqrt(members.size * rate * (1 - rate))
        assert abs(np.mean(sizes) - expected) < 4 * sd / np.sqrt(30)

    def test_rate_one_returns_all(self):
        for members in (
            FullMembership(100),
            DenseMembership(np.arange(100) % 2 == 0),
            SparseMembership(np.arange(0, 100, 9), 100),
        ):
            assert np.array_equal(members.sample_rate(1.0, rng()), members.indices())

    def test_rate_sample_sorted_and_unique(self):
        members = DenseMembership(np.arange(10_000) % 2 == 0)
        sample = members.sample_rate(0.05, rng())
        assert np.all(np.diff(sample) > 0)

    def test_skip_walk_touches_members_only(self):
        members = DenseMembership(np.arange(1000) % 5 == 0)
        sample = members.sample_rate(0.3, rng())
        assert all(members.contains(int(r)) for r in sample)

    def test_sparse_hash_threshold_deterministic_given_rng(self):
        members = SparseMembership(np.arange(0, 5000, 3), 5000)
        a = members.sample_rate(0.2, np.random.default_rng(42))
        b = members.sample_rate(0.2, np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_rate_sample_uniform_over_members(self):
        members = SparseMembership(np.arange(0, 4000, 4), 4000)
        counts = np.zeros(members.size)
        position = {int(v): i for i, v in enumerate(members.indices())}
        for seed in range(200):
            sample = members.sample_rate(0.1, np.random.default_rng(seed))
            for row in sample:
                counts[position[int(row)]] += 1
        expected = counts.mean()
        chi2 = ((counts - expected) ** 2 / expected).sum()
        p_value = stats.chi2.sf(chi2, df=members.size - 1)
        assert p_value > 1e-4
