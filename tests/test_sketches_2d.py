"""Stacked histogram, heat map and trellis sketch tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buckets import DoubleBuckets, ExplicitStringBuckets
from repro.core.serialization import Decoder, Encoder
from repro.sketches.heatmap import HeatmapSketch, HeatmapSummary
from repro.sketches.stacked import StackedHistogramSketch, StackedHistogramSummary
from repro.sketches.trellis import TrellisHeatmapSketch, TrellisSummary
from repro.table.table import Table


@pytest.fixture(scope="module")
def table2d():
    rng = np.random.default_rng(11)
    n = 30_000
    return Table.from_pydict(
        {
            "x": rng.uniform(0, 10, n).tolist(),
            "y": rng.uniform(0, 10, n).tolist(),
            "g": [f"grp{int(i)}" for i in rng.integers(0, 4, n)],
        }
    )


XB = DoubleBuckets(0, 10, 8)
YB = DoubleBuckets(0, 10, 6)
GB = ExplicitStringBuckets(["grp0", "grp1", "grp2", "grp3"])


class TestStacked:
    def test_bar_counts_match_marginal_histogram(self, table2d):
        summary = StackedHistogramSketch("x", XB, "g", GB).summarize(table2d)
        from repro.sketches.histogram import HistogramSketch

        marginal = HistogramSketch("x", XB).summarize(table2d)
        assert np.array_equal(summary.bar_counts, marginal.counts)

    def test_cells_sum_to_bars(self, table2d):
        summary = StackedHistogramSketch("x", XB, "g", GB).summarize(table2d)
        assert np.array_equal(
            summary.cell_counts.sum(axis=1) + summary.y_missing,
            summary.bar_counts,
        )

    def test_partition_invariance(self, table2d):
        sketch = StackedHistogramSketch("x", XB, "g", GB)
        whole = sketch.summarize(table2d)
        merged = sketch.merge_all([sketch.summarize(s) for s in table2d.split(5)])
        assert np.array_equal(whole.cell_counts, merged.cell_counts)
        assert np.array_equal(whole.bar_counts, merged.bar_counts)

    def test_y_missing_tracked(self):
        table = Table.from_pydict({"x": [1.0, 2.0], "g": ["grp0", None]})
        summary = StackedHistogramSketch("x", DoubleBuckets(0, 10, 2), "g", GB).summarize(table)
        assert summary.y_missing.sum() == 1

    def test_serialization(self, table2d):
        summary = StackedHistogramSketch("x", XB, "g", GB).summarize(table2d)
        enc = Encoder()
        summary.encode(enc)
        back = StackedHistogramSummary.decode(Decoder(enc.to_bytes()))
        assert np.array_equal(back.cell_counts, summary.cell_counts)

    def test_sampled_proportions_close(self, table2d):
        sketch = StackedHistogramSketch("x", XB, "g", GB, rate=0.2, seed=2)
        sampled = sketch.summarize(table2d)
        exact = StackedHistogramSketch("x", XB, "g", GB).summarize(table2d)
        approx = sampled.cell_counts / max(sampled.sampled_rows, 1)
        truth = exact.cell_counts / exact.sampled_rows
        assert np.abs(approx - truth).max() < 0.02


class TestHeatmap:
    def test_counts_match_2d_histogram(self, table2d):
        summary = HeatmapSketch("x", XB, "y", YB).summarize(table2d)
        xs = np.array(table2d.to_pydict()["x"])
        ys = np.array(table2d.to_pydict()["y"])
        expected, _, _ = np.histogram2d(xs, ys, bins=(8, 6), range=((0, 10), (0, 10)))
        assert np.array_equal(summary.counts, expected.astype(np.int64))

    def test_partition_invariance(self, table2d):
        sketch = HeatmapSketch("x", XB, "y", YB)
        whole = sketch.summarize(table2d)
        merged = sketch.merge_all([sketch.summarize(s) for s in table2d.split(9)])
        assert np.array_equal(whole.counts, merged.counts)

    def test_string_axis(self, table2d):
        summary = HeatmapSketch("g", GB, "y", YB).summarize(table2d)
        assert summary.counts.shape == (4, 6)
        assert summary.total_in_range == table2d.num_rows

    def test_missing_both_axes(self):
        table = Table.from_pydict(
            {"x": [1.0, None, 3.0], "y": [None, 2.0, 3.0]}
        )
        summary = HeatmapSketch(
            "x", DoubleBuckets(0, 10, 2), "y", DoubleBuckets(0, 10, 2)
        ).summarize(table)
        assert summary.x_missing == 1
        assert summary.y_missing == 1
        assert summary.total_in_range == 1

    def test_proportions(self, table2d):
        summary = HeatmapSketch("x", XB, "y", YB).summarize(table2d)
        assert summary.proportions().sum() == pytest.approx(1.0)

    def test_serialization(self, table2d):
        summary = HeatmapSketch("x", XB, "y", YB).summarize(table2d)
        enc = Encoder()
        summary.encode(enc)
        back = HeatmapSummary.decode(Decoder(enc.to_bytes()))
        assert np.array_equal(back.counts, summary.counts)

    def test_zero_identity(self, table2d):
        sketch = HeatmapSketch("x", XB, "y", YB)
        summary = sketch.summarize(table2d)
        assert np.array_equal(
            sketch.merge(sketch.zero(), summary).counts, summary.counts
        )


class TestTrellis:
    def test_panes_partition_the_heatmap(self, table2d):
        sketch = TrellisHeatmapSketch("g", GB, "x", XB, "y", YB)
        summary = sketch.summarize(table2d)
        assert len(summary.panes) == 4
        total = sum(p.counts.sum() for p in summary.panes)
        plain = HeatmapSketch("x", XB, "y", YB).summarize(table2d)
        assert total == plain.counts.sum()
        combined = sum(p.counts for p in summary.panes)
        assert np.array_equal(combined, plain.counts)

    def test_pane_matches_filtered_heatmap(self, table2d):
        from repro.table.compute import ColumnPredicate

        sketch = TrellisHeatmapSketch("g", GB, "x", XB, "y", YB)
        summary = sketch.summarize(table2d)
        filtered = table2d.filter(ColumnPredicate("g", "==", "grp2"))
        direct = HeatmapSketch("x", XB, "y", YB).summarize(filtered)
        assert np.array_equal(summary.panes[2].counts, direct.counts)

    def test_partition_invariance(self, table2d):
        sketch = TrellisHeatmapSketch("g", GB, "x", XB, "y", YB)
        whole = sketch.summarize(table2d)
        merged = sketch.merge_all([sketch.summarize(s) for s in table2d.split(6)])
        for a, b in zip(whole.panes, merged.panes):
            assert np.array_equal(a.counts, b.counts)

    def test_serialization(self, table2d):
        sketch = TrellisHeatmapSketch("g", GB, "x", XB, "y", YB)
        summary = sketch.summarize(table2d)
        enc = Encoder()
        summary.encode(enc)
        back = TrellisSummary.decode(Decoder(enc.to_bytes()))
        assert len(back.panes) == len(summary.panes)
        assert np.array_equal(back.panes[1].counts, summary.panes[1].counts)


#: A second grouping dimension for the 2-D trellis tests.
G2B = ExplicitStringBuckets(["siteA", "siteB"])


@pytest.fixture(scope="module")
def table2d_sites(table2d):
    rng = np.random.default_rng(17)
    n = table2d.num_rows
    rows = np.arange(n)
    sites = [f"site{'AB'[int(i)]}" for i in rng.integers(0, 2, n)]
    return Table.from_pydict(
        {
            "x": table2d.column("x").numeric_values(rows).tolist(),
            "y": table2d.column("y").numeric_values(rows).tolist(),
            "g": [table2d.column("g").value(i) for i in range(n)],
            "site": sites,
        }
    )


class TestTrellisHistogram:
    def test_panes_partition_the_histogram(self, table2d):
        from repro.sketches.histogram import HistogramSketch
        from repro.sketches.trellis import TrellisHistogramSketch

        sketch = TrellisHistogramSketch("g", GB, "x", XB)
        summary = sketch.summarize(table2d)
        assert len(summary.panes) == 4
        combined = sum(p.counts for p in summary.panes)
        plain = HistogramSketch("x", XB).summarize(table2d)
        assert np.array_equal(combined, plain.counts)

    def test_pane_matches_filtered_histogram(self, table2d):
        from repro.sketches.histogram import HistogramSketch
        from repro.sketches.trellis import TrellisHistogramSketch
        from repro.table.compute import ColumnPredicate

        sketch = TrellisHistogramSketch("g", GB, "x", XB)
        summary = sketch.summarize(table2d)
        filtered = table2d.filter(ColumnPredicate("g", "==", "grp1"))
        direct = HistogramSketch("x", XB).summarize(filtered)
        assert np.array_equal(summary.panes[1].counts, direct.counts)

    def test_partition_invariance(self, table2d):
        from repro.sketches.trellis import TrellisHistogramSketch

        sketch = TrellisHistogramSketch("g", GB, "x", XB)
        whole = sketch.summarize(table2d)
        merged = sketch.merge_all([sketch.summarize(s) for s in table2d.split(7)])
        for a, b in zip(whole.panes, merged.panes):
            assert np.array_equal(a.counts, b.counts)
            assert a.missing == b.missing

    def test_x_missing_attributed_to_pane(self):
        from repro.sketches.trellis import TrellisHistogramSketch

        table = Table.from_pydict(
            {"x": [1.0, None, 3.0], "g": ["grp0", "grp0", "grp1"]}
        )
        sketch = TrellisHistogramSketch("g", GB, "x", DoubleBuckets(0, 10, 2))
        summary = sketch.summarize(table)
        assert summary.panes[0].missing == 1
        assert summary.panes[1].missing == 0

    def test_group_missing_counted_once(self):
        from repro.sketches.trellis import TrellisHistogramSketch

        table = Table.from_pydict({"x": [1.0, 2.0], "g": ["grp0", None]})
        sketch = TrellisHistogramSketch("g", GB, "x", DoubleBuckets(0, 10, 2))
        summary = sketch.summarize(table)
        assert summary.group_missing == 1

    def test_serialization_roundtrip(self, table2d):
        from repro.sketches.trellis import (
            TrellisHistogramSketch,
            TrellisHistogramSummary,
        )

        summary = TrellisHistogramSketch("g", GB, "x", XB).summarize(table2d)
        enc = Encoder()
        summary.encode(enc)
        back = TrellisHistogramSummary.decode(Decoder(enc.to_bytes()))
        assert len(back.panes) == 4
        assert np.array_equal(back.panes[3].counts, summary.panes[3].counts)

    def test_zero_is_identity(self, table2d):
        from repro.sketches.trellis import TrellisHistogramSketch

        sketch = TrellisHistogramSketch("g", GB, "x", XB)
        summary = sketch.summarize(table2d)
        again = sketch.merge(sketch.zero(), summary)
        for a, b in zip(again.panes, summary.panes):
            assert np.array_equal(a.counts, b.counts)


class TestTrellis2D:
    def test_pane_grid_row_major(self, table2d_sites):
        from repro.table.compute import ColumnPredicate

        sketch = TrellisHeatmapSketch(
            "g", GB, "x", XB, "y", YB,
            group2_column="site", group2_buckets=G2B,
        )
        summary = sketch.summarize(table2d_sites)
        assert len(summary.panes) == 8  # 4 groups x 2 sites
        # Pane (g=grp1, site=siteB) is flat index 1*2+1 == 3.
        filtered = table2d_sites.filter(
            ColumnPredicate("g", "==", "grp1")
        ).filter(ColumnPredicate("site", "==", "siteB"))
        direct = HeatmapSketch("x", XB, "y", YB).summarize(filtered)
        assert np.array_equal(summary.panes[3].counts, direct.counts)

    def test_2d_panes_partition_totals(self, table2d_sites):
        sketch = TrellisHeatmapSketch(
            "g", GB, "x", XB, "y", YB,
            group2_column="site", group2_buckets=G2B,
        )
        summary = sketch.summarize(table2d_sites)
        plain = HeatmapSketch("x", XB, "y", YB).summarize(table2d_sites)
        combined = sum(p.counts for p in summary.panes)
        assert np.array_equal(combined, plain.counts)

    def test_2d_partition_invariance(self, table2d_sites):
        sketch = TrellisHeatmapSketch(
            "g", GB, "x", XB, "y", YB,
            group2_column="site", group2_buckets=G2B,
        )
        whole = sketch.summarize(table2d_sites)
        merged = sketch.merge_all(
            [sketch.summarize(s) for s in table2d_sites.split(5)]
        )
        for a, b in zip(whole.panes, merged.panes):
            assert np.array_equal(a.counts, b.counts)

    def test_2d_histogram_trellis(self, table2d_sites):
        from repro.sketches.histogram import HistogramSketch
        from repro.sketches.trellis import TrellisHistogramSketch

        sketch = TrellisHistogramSketch(
            "g", GB, "x", XB,
            group2_column="site", group2_buckets=G2B,
        )
        summary = sketch.summarize(table2d_sites)
        assert len(summary.panes) == 8
        combined = sum(p.counts for p in summary.panes)
        plain = HistogramSketch("x", XB).summarize(table2d_sites)
        assert np.array_equal(combined, plain.counts)

    def test_mismatched_group2_args_rejected(self):
        from repro.sketches.trellis import TrellisHistogramSketch

        with pytest.raises(ValueError):
            TrellisHistogramSketch("g", GB, "x", XB, group2_column="site")
        with pytest.raises(ValueError):
            TrellisHeatmapSketch(
                "g", GB, "x", XB, "y", YB, group2_buckets=G2B
            )

    def test_group2_missing_counted(self):
        sketch = TrellisHeatmapSketch(
            "g", GB, "x", DoubleBuckets(0, 10, 2), "y", DoubleBuckets(0, 10, 2),
            group2_column="site", group2_buckets=G2B,
        )
        table = Table.from_pydict(
            {
                "x": [1.0, 2.0, 3.0],
                "y": [1.0, 2.0, 3.0],
                "g": ["grp0", "grp1", "grp2"],
                "site": ["siteA", None, "siteB"],
            }
        )
        summary = sketch.summarize(table)
        assert summary.group_missing == 1


class TestTrellis2DResiduals:
    def test_row_missing_in_both_groups_counted_once(self):
        from repro.sketches.trellis import TrellisHistogramSketch

        table = Table.from_pydict(
            {
                "x": [1.0, 2.0, 3.0],
                "g": [None, "grp0", "grp1"],
                "site": [None, "siteA", None],
            }
        )
        sketch = TrellisHistogramSketch(
            "g", GB, "x", DoubleBuckets(0, 10, 2),
            group2_column="site", group2_buckets=G2B,
        )
        summary = sketch.summarize(table)
        # Row 0 misses both groups, row 2 misses one: two missing rows.
        assert summary.group_missing == 2
        assert summary.group_out_of_range == 0

    def test_residuals_partition_invariant(self):
        from repro.sketches.trellis import TrellisHistogramSketch

        table = Table.from_pydict(
            {
                "x": [float(i) for i in range(12)],
                "g": [None, None, "grp0", "zzz"] * 3,
                "site": [None, "siteA", None, "siteB"] * 3,
            }
        )
        sketch = TrellisHistogramSketch(
            "g", GB, "x", DoubleBuckets(0, 20, 2),
            group2_column="site", group2_buckets=G2B,
        )
        whole = sketch.summarize(table)
        merged = sketch.merge_all([sketch.summarize(s) for s in table.split(4)])
        assert whole.group_missing == merged.group_missing
        assert whole.group_out_of_range == merged.group_out_of_range
