"""Differential harness: vectorized sketch kernels vs per-row oracles.

Every entry in ``SKETCH_SPECS`` names one vectorized leaf kernel and its
canonical configuration; each kernel also preserves its original per-row
implementation as ``summarize_reference``.  These tests fuzz tables over
the canonical four-column schema — missing values, NaN, out-of-range
values, empty shards — and assert the two paths produce **byte-identical**
summaries (compared through each summary's own Encoder format, the same
bytes the wire and the caches see).

Byte identity, not approximate equality, is the contract: the vectorized
kernels feed mergeable summaries into multi-tier caches and cross-root
byte-identity guarantees, so "close" is not good enough.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serialization import Encoder
from repro.sketches.specs import (
    CANONICAL_SCHEMA,
    DATE_HI,
    DATE_LO,
    SKETCH_SPECS,
    spec_by_name,
)
from repro.table.column import column_from_values
from repro.table.schema import ContentsKind
from repro.table.table import Table

SPEC_NAMES = [spec.name for spec in SKETCH_SPECS]


def encoded(summary) -> bytes:
    enc = Encoder()
    summary.encode(enc)
    return enc.to_bytes()


# -- canonical-table strategy ---------------------------------------------
# Domains deliberately overflow the spec bucket ranges so out-of-range
# paths always see traffic; every column mixes in missing values.  Ints
# stay far below 2**53 so float64 sort surrogates cannot collapse them.

_ints = st.one_of(st.none(), st.integers(-60, 60))
_doubles = st.one_of(
    st.none(),
    st.just(float("nan")),
    st.floats(-60.0, 60.0, allow_nan=False),
)
_dates = st.one_of(
    st.none(),
    st.datetimes(
        min_value=DATE_LO.replace(tzinfo=None),
        max_value=DATE_HI.replace(tzinfo=None),
    ).map(lambda d: d.replace(tzinfo=DATE_LO.tzinfo, fold=0)),
)
_strings = st.one_of(
    st.none(),
    st.text(alphabet="abcdefgkpz", max_size=4),
)

_COLUMN_STRATEGIES = {
    ContentsKind.INTEGER: _ints,
    ContentsKind.DOUBLE: _doubles,
    ContentsKind.DATE: _dates,
    ContentsKind.STRING: _strings,
}


@st.composite
def canonical_tables(draw, min_rows: int = 0, max_rows: int = 60) -> Table:
    n = draw(st.integers(min_rows, max_rows))
    columns = [
        column_from_values(
            name, draw(st.lists(_COLUMN_STRATEGIES[kind], min_size=n, max_size=n)), kind
        )
        for name, kind in CANONICAL_SCHEMA.items()
    ]
    return Table(columns, shard_id="fuzz-shard")


def assert_kernel_equivalent(spec_name: str, table: Table) -> None:
    # Fresh sketch instances per path: sampled sketches must derive
    # their row sample from (seed, shard), never from shared RNG state.
    spec = spec_by_name(spec_name)
    fast = spec.sketch().summarize(table)
    slow = spec.sketch().summarize_reference(table)
    assert encoded(fast) == encoded(slow), (
        f"{spec_name}: vectorized and reference summaries differ on "
        f"{table.num_rows} rows"
    )


@pytest.mark.parametrize("spec_name", SPEC_NAMES)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(table=canonical_tables())
def test_vectorized_matches_reference(spec_name: str, table: Table) -> None:
    assert_kernel_equivalent(spec_name, table)


@pytest.mark.parametrize("spec_name", SPEC_NAMES)
def test_empty_shard(spec_name: str) -> None:
    table = Table(
        [column_from_values(n, [], k) for n, k in CANONICAL_SCHEMA.items()],
        shard_id="empty",
    )
    assert_kernel_equivalent(spec_name, table)


@pytest.mark.parametrize("spec_name", SPEC_NAMES)
def test_all_missing_shard(spec_name: str) -> None:
    n = 17
    table = Table(
        [
            column_from_values(name, [None] * n, kind)
            for name, kind in CANONICAL_SCHEMA.items()
        ],
        shard_id="all-missing",
    )
    assert_kernel_equivalent(spec_name, table)


@pytest.mark.parametrize("spec_name", SPEC_NAMES)
def test_filtered_members(spec_name: str) -> None:
    """Kernels must honor the membership set, not the raw column arrays."""
    rng = np.random.default_rng(13)
    n = 80
    values = {
        "i": [int(v) for v in rng.integers(-60, 61, n)],
        "d": [float(v) for v in rng.uniform(-60, 60, n)],
        "t": [
            DATE_LO + (DATE_HI - DATE_LO) * float(f)
            for f in rng.uniform(0, 1, n)
        ],
        "s": ["".join(rng.choice(list("abcdegkpz"), 3)) for _ in range(n)],
    }
    table = Table(
        [
            column_from_values(name, values[name], kind)
            for name, kind in CANONICAL_SCHEMA.items()
        ],
        shard_id="filter-base",
    )
    mask = np.zeros(n, dtype=bool)
    mask[rng.choice(n, size=n // 3, replace=False)] = True
    assert_kernel_equivalent(spec_name, table.filter_mask(mask))


def test_every_vectorized_kernel_is_enrolled() -> None:
    """A kernel with a reference oracle must appear in SKETCH_SPECS."""
    covered = {type(spec.sketch()).__name__ for spec in SKETCH_SPECS}
    # CdfSketch subclasses HistogramSketch; both are present explicitly.
    expected = {
        "HistogramSketch",
        "CdfSketch",
        "StackedHistogramSketch",
        "HeatmapSketch",
        "TrellisHeatmapSketch",
        "TrellisHistogramSketch",
        "MisraGriesSketch",
        "SampleHeavyHittersSketch",
        "SampleQuantileSketch",
        "FindTextSketch",
    }
    assert expected <= covered
