"""Baseline tests: the SQL row store and the general-purpose engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baseline.analytics import GeneralPurposeEngine, TASK_OVERHEAD_BYTES
from repro.baseline.rowstore import RowStoreDatabase
from repro.errors import QueryError
from repro.table.table import Table


@pytest.fixture
def db(small_table):
    database = RowStoreDatabase()
    database.load_table("t", small_table)
    return database


class TestRowStoreSql:
    def test_select_star(self, db):
        rows = db.execute("SELECT * FROM t")
        assert len(rows) == 8
        assert rows[0] == (3, 0.5, "bob")

    def test_projection(self, db):
        rows = db.execute("SELECT name, x FROM t LIMIT 2")
        assert rows == [("bob", 3), ("alice", 1)]

    def test_where_comparisons(self, db):
        rows = db.execute("SELECT x FROM t WHERE x > 2")
        assert sorted(r[0] for r in rows) == [3, 4, 5]
        rows = db.execute("SELECT x FROM t WHERE x >= 2 AND x < 5")
        assert sorted(r[0] for r in rows) == [2, 2, 3, 4]

    def test_where_string_equality(self, db):
        rows = db.execute("SELECT x FROM t WHERE name = 'alice'")
        assert sorted(r[0] for r in rows) == [1, 2, 5]

    def test_quoted_string_escapes(self, db):
        assert db.execute("SELECT x FROM t WHERE name = 'o''brien'") == []

    def test_nulls_never_match(self, db):
        rows = db.execute("SELECT name FROM t WHERE x < 100")
        assert len(rows) == 7  # the row with NULL x is excluded

    def test_aggregates(self, db):
        (result,) = db.execute(
            "SELECT COUNT(*), COUNT(x), SUM(x), AVG(x), MIN(x), MAX(x) FROM t"
        )
        assert result[0] == 8
        assert result[1] == 7
        assert result[2] == pytest.approx(18.0)
        assert result[3] == pytest.approx(18 / 7)
        assert result[4] == 1
        assert result[5] == 5

    def test_group_by(self, db):
        rows = db.execute(
            "SELECT COUNT(*) FROM t GROUP BY name ORDER BY count(*) DESC"
        )
        counts = [r[1] for r in rows]
        assert counts == sorted(counts, reverse=True)
        by_name = {r[0]: r[1] for r in rows}
        assert by_name["alice"] == 3
        assert by_name[None] == 1

    def test_order_by_limit(self, db):
        rows = db.execute("SELECT x FROM t ORDER BY x DESC LIMIT 3")
        assert [r[0] for r in rows] == [5, 4, 3]

    def test_histogram_extension(self, db):
        (result,) = db.execute("SELECT HISTOGRAM(x, 0, 5, 5) FROM t")
        counts = result[0]
        assert sum(counts) == 7
        assert counts[0] == 0  # no x in [0,1)
        assert counts[4] == 2  # x=5 right-edge closed; x=4... wait

    def test_index_used_for_equality(self, db):
        db.create_index("t", "name")
        rows = db.execute("SELECT x FROM t WHERE name = 'bob'")
        assert sorted(r[0] for r in rows) == [1, 3]

    def test_insert_type_checked(self, db):
        with pytest.raises(QueryError):
            db.insert_rows("t", [("not-an-int", 1.0, "x")])

    def test_parse_errors(self, db):
        for bad in (
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t LIMIT x",
            "SELECT nope FROM t",
            "SELECT * FROM missing",
        ):
            with pytest.raises(QueryError):
                db.execute(bad)

    def test_statement_counter(self, db):
        before = db.statements_executed
        db.execute("SELECT COUNT(*) FROM t")
        assert db.statements_executed == before + 1


class TestGeneralPurposeEngine:
    @pytest.fixture(scope="class")
    def engine(self):
        rng = np.random.default_rng(31)
        n = 40_000
        table = Table.from_pydict(
            {
                "v": rng.normal(50, 10, n).tolist(),
                "w": rng.uniform(0, 1, n).tolist(),
                "g": [f"k{int(i)}" for i in rng.integers(0, 30, n)],
            }
        )
        return GeneralPurposeEngine(table.split(8)), table

    def test_histogram_exact(self, engine):
        eng, table = engine
        counts = eng.histogram("v", 0, 100, 20)
        expected = np.histogram(
            table.column("v").data, bins=20, range=(0, 100)
        )[0]
        assert np.array_equal(counts, expected)

    def test_bytes_include_task_overhead(self, engine):
        eng, _ = engine
        eng.histogram("v", 0, 100, 20)
        assert eng.last_stats.tasks == 8
        assert eng.last_stats.bytes_to_driver >= 8 * TASK_OVERHEAD_BYTES

    def test_no_partial_results(self, engine):
        eng, _ = engine
        eng.histogram("v", 0, 100, 20)
        stats = eng.last_stats
        assert stats.first_result_seconds == stats.seconds

    def test_sort_rows_ships_whole_rows(self, engine):
        eng, table = engine
        top = eng.sort_rows(["v"], limit=10)
        assert len(top) == 10
        assert len(top[0]) == table.num_columns  # every column shipped
        values = [row[0] for row in top]
        assert values == sorted(values)

    def test_quantile_exact(self, engine):
        eng, table = engine
        median = eng.quantile("v", 0.5)
        assert median == pytest.approx(
            float(np.median(table.column("v").data)), abs=1e-9
        )

    def test_distinct_ships_full_set(self, engine):
        eng, table = engine
        values = eng.distinct_values("g")
        assert len(values) == 30
        assert eng.last_stats.bytes_to_driver > 0

    def test_group_counts_and_topk(self, engine):
        eng, table = engine
        counts = eng.group_counts("g")
        assert sum(counts.values()) == table.num_rows
        top = eng.top_k("g", 5)
        assert len(top) == 5
        assert top[0][1] >= top[-1][1]

    def test_heatmap_matches_numpy(self, engine):
        eng, table = engine
        grid = eng.heatmap("v", "w", (0, 100), (0, 1), 10, 8)
        expected, _, _ = np.histogram2d(
            table.column("v").data,
            table.column("w").data,
            bins=(10, 8),
            range=((0, 100), (0, 1)),
        )
        assert np.array_equal(grid, expected.astype(np.int64))

    def test_column_range(self, engine):
        eng, table = engine
        lo, hi, count = eng.column_range("v")
        data = table.column("v").data
        assert lo == pytest.approx(data.min())
        assert hi == pytest.approx(data.max())
        assert count == len(data)

    def test_needs_partitions(self):
        with pytest.raises(QueryError):
            GeneralPurposeEngine([])
