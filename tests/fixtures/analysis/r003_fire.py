# repro: fixture as=src/repro/sketches/fixture_r003.py
"""R003 fire: a sketch on the vectorized binning kernel with no
summarize_reference oracle — the differential harness cannot check it."""

from repro.sketches.binning import bin_rows


class VectorOnlySketch:  # analyzer: fires here
    def summarize(self, table):
        return bin_rows(table)
