# repro: fixture as=src/repro/engine/rpc.py
"""R001 fire: a builder key with no _encode_* inverse — the root can
parse 'mystery' from clients but can never broadcast it to workers."""

SKETCH_BUILDERS = {  # analyzer: fires here
    "histogram": None,
    "mystery": None,
}


def _encode_histogram(sketch):
    return {"type": "histogram"}
