# repro: fixture as=src/repro/engine/rpc.py
"""R002 fire: a summary tag with a binary codec but no JSON parser —
the REPRO_WIRE_JSON=1 leg silently cannot carry it."""

SUMMARY_CODECS = {
    "histogram": None,
    "cdf": None,
}
SUMMARY_PARSERS = {  # analyzer: fires here
    "histogram": None,
}
