# repro: fixture as=src/repro/engine/fixture_c002.py
"""C002 fire: a thread spawn in engine code with no visible trace
context propagation — spans die at the thread boundary."""

import threading


def start_sweeper(run):
    worker = threading.Thread(target=run, daemon=True)  # analyzer: fires here
    worker.start()
    return worker
