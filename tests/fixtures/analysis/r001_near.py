# repro: fixture as=src/repro/engine/rpc.py
"""R001 near-miss: every builder key has an encoder inverse."""

SKETCH_BUILDERS = {
    "histogram": None,
    "mystery": None,
}


def _encode_histogram(sketch):
    return {"type": "histogram"}


def _encode_mystery(sketch):
    return {"type": "mystery"}
