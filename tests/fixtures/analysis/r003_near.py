# repro: fixture as=src/repro/sketches/fixture_r003_near.py
"""R003 near-miss: the vectorized sketch keeps its per-row oracle."""

from repro.sketches.binning import bin_rows


class VectorOnlySketch:
    def summarize(self, table):
        return bin_rows(table)

    def summarize_reference(self, table):
        return [row for row in table]
