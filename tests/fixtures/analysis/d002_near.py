# repro: fixture as=src/repro/sketches/fixture_d002_near.py
"""D002 near-miss: the same encode loop, but sorted — canonical."""


def encode(summary):
    out = []
    for key in sorted(summary.counts.keys()):
        out.append(key)
    return out
