# repro: fixture as=src/repro/engine/fixture_d001_near.py
"""D001 near-miss: the deterministic fold — iterate the futures list in
submission (shard) order; ``.result()`` still waits for stragglers."""


def fold_partials(sketch, futures):
    acc = sketch.zero()
    for future in futures:
        acc = sketch.merge(acc, future.result())
    return acc
