# repro: fixture as=src/repro/sketches/fixture_d002.py
"""D002 fire: unsorted dict-view iteration inside an encode path lets
insertion order leak into canonical bytes."""


def encode(summary):
    out = []
    for key in summary.counts.keys():  # analyzer: fires here
        out.append(key)
    return out
