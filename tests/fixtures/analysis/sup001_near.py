# repro: fixture as=src/repro/engine/fixture_sup001_near.py
"""SUP001 near-miss: a well-formed, justified waiver that matches a
real finding suppresses it cleanly."""


def probe(worker):
    try:
        return worker.ping()
    except Exception:  # repro: ignore[B001] — fixture: the waiver under test
        return None
