# repro: fixture as=src/repro/sketches/fixture_d003.py
"""D003 fire: entropy imported into sketch code — summaries stop being
pure functions of (table, seed)."""

import random  # analyzer: fires here


def jitter(values):
    return [v + random.random() for v in values]
