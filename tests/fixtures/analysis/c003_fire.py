# repro: fixture as=src/repro/service/fixture_c003.py
"""C003 fire: a blocking sleep inside an async body stalls the single
event loop that serves every connected client."""

import time


async def throttle(seconds):
    time.sleep(seconds)  # analyzer: fires here
