# repro: fixture as=src/repro/engine/fixture_sup001.py
"""SUP001 fire: a waiver with no justification is itself a finding."""

value = 1  # repro: ignore[B001]
