# repro: fixture as=src/repro/engine/fixture_c002_near.py
"""C002 near-miss: the spawner captures the current context and the
target restores it — the trace crosses the thread boundary."""

import threading

from repro.obs.trace import current_context, use_context


def start_sweeper(run):
    ctx = current_context()

    def wrapped():
        with use_context(ctx):
            run()

    worker = threading.Thread(target=wrapped, daemon=True)
    worker.start()
    return worker
