# repro: fixture as=src/repro/engine/rpc.py
"""R002 near-miss: codecs and parsers cover the same tags."""

SUMMARY_CODECS = {
    "histogram": None,
    "cdf": None,
}
SUMMARY_PARSERS = {
    "histogram": None,
    "cdf": None,
}
