# repro: fixture as=src/repro/sketches/fixture_d003_near.py
"""D003 near-miss: seeded randomness through the sanctioned helper
module, which is a pure function of the seed."""

from repro.core.rand import stable_hash64


def jitter(values, seed):
    return [v + stable_hash64(seed, i) % 7 for i, v in enumerate(values)]
