# repro: fixture as=src/repro/engine/fixture_b001.py
"""B001 fire: a broad handler that swallows every failure."""


def probe(worker):
    try:
        return worker.ping()
    except Exception:  # analyzer: fires here
        return None
