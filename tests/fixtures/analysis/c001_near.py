# repro: fixture as=src/repro/engine/fixture_c001_near.py
"""C001 near-miss: every post-__init__ write holds the same lock."""

import threading


class ShardCache:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        with self._lock:
            self.hits += 1

    def reset(self):
        with self._lock:
            self.hits = 0
