# repro: fixture as=src/repro/service/fixture_c003_near.py
"""C003 near-miss: the awaited asyncio primitive yields the loop."""

import asyncio


async def throttle(seconds):
    await asyncio.sleep(seconds)
