# repro: fixture as=src/repro/engine/fixture_b001_near.py
"""B001 near-miss: broad catch, but the failure is re-raised."""


def probe(worker):
    try:
        return worker.ping()
    except Exception as exc:
        raise RuntimeError("probe failed") from exc
