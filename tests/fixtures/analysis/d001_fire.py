# repro: fixture as=src/repro/engine/fixture_d001.py
"""D001 fire: the exact PR 7 bug shape — folding sketch partials in
thread-*completion* order, which breaks byte-identity for the
only-approximately-commutative merges (Misra-Gries at capacity)."""

from concurrent.futures import as_completed


def fold_partials(sketch, futures):
    acc = sketch.zero()
    for future in as_completed(futures):  # analyzer: fires here
        acc = sketch.merge(acc, future.result())
    return acc
