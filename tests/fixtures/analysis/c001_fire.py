# repro: fixture as=src/repro/engine/fixture_c001.py
"""C001 fire: an attribute guarded by the lock in one method and
written bare in another — a lost-update waiting to happen."""

import threading


class ShardCache:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        with self._lock:
            self.hits += 1

    def reset(self):
        self.hits = 0  # analyzer: fires here
