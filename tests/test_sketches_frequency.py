"""Heavy hitters, distinct counting, HLL, bottom-k sketch tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serialization import Decoder, Encoder
from repro.data.synth import categorical_table, zipf_strings
from repro.errors import ColumnKindError, EngineError
from repro.sketches.bottomk import BottomKDistinctSketch, BottomKSummary
from repro.sketches.distinct import DistinctSetSummary, ExactDistinctSketch
from repro.sketches.heavy_hitters import (
    FrequencySummary,
    MisraGriesSketch,
    SampleHeavyHittersSketch,
)
from repro.sketches.hll import HllSummary, HyperLogLogSketch
from repro.table.table import Table


def true_counts(table, column):
    data = table.to_pydict()[column]
    counts: dict = {}
    for value in data:
        if value is not None:
            counts[value] = counts.get(value, 0) + 1
    return counts


class TestMisraGries:
    def test_finds_all_frequent_elements(self):
        table = categorical_table(40_000, distinct=500, exponent=1.5, seed=1)
        k = 10
        sketch = MisraGriesSketch("word", 2 * k)
        summary = sketch.merge_all([sketch.summarize(s) for s in table.split(8)])
        counts = true_counts(table, "word")
        n = table.num_rows
        frequent = {v for v, c in counts.items() if c >= n / k}
        reported = {v for v, _ in summary.hitters(1.0 / k)}
        assert frequent <= reported

    def test_error_bound_holds(self):
        table = categorical_table(20_000, distinct=300, seed=2)
        sketch = MisraGriesSketch("word", 20)
        summary = sketch.merge_all([sketch.summarize(s) for s in table.split(4)])
        counts = true_counts(table, "word")
        for value, estimate in summary.counts.items():
            truth = counts[value]
            assert estimate <= truth  # MG only undercounts
            assert truth - estimate <= summary.error_bound

    def test_counter_budget_respected(self):
        table = categorical_table(5_000, distinct=1000, seed=3)
        sketch = MisraGriesSketch("word", 7)
        summary = sketch.summarize(table)
        assert len(summary.counts) <= 7

    def test_merge_matches_whole_on_reduction_free_data(self):
        # With fewer distinct values than counters, MG is exact.
        table = categorical_table(10_000, distinct=8, seed=4)
        sketch = MisraGriesSketch("word", 20)
        whole = sketch.summarize(table)
        merged = sketch.merge_all([sketch.summarize(s) for s in table.split(5)])
        assert whole.counts == merged.counts
        assert merged.error_bound == 0

    def test_numeric_column_supported(self):
        table = Table.from_pydict({"v": [1, 1, 2, 3, 1, None]})
        summary = MisraGriesSketch("v", 10).summarize(table)
        assert summary.counts[1.0] == 3
        assert summary.scanned == 6

    def test_serialization(self):
        table = categorical_table(1_000, distinct=20, seed=5)
        summary = MisraGriesSketch("word", 10).summarize(table)
        enc = Encoder()
        summary.encode(enc)
        back = FrequencySummary.decode(Decoder(enc.to_bytes()))
        assert back.counts == summary.counts


class TestSamplingHeavyHitters:
    def test_theorem4_guarantee(self):
        """All >=1/K-frequent found; none <1/(4K)-frequent reported."""
        k = 10
        table = categorical_table(50_000, distinct=200, exponent=1.6, seed=6)
        from repro.core.sampling import heavy_hitters_sample_size, sample_rate

        n_target = heavy_hitters_sample_size(k, 0.01)
        rate = sample_rate(n_target, table.num_rows)
        sketch = SampleHeavyHittersSketch("word", k, rate, seed=7)
        summary = sketch.merge_all([sketch.summarize(s) for s in table.split(8)])
        reported = {v for v, _ in sketch.hitters(summary)}
        counts = true_counts(table, "word")
        n = table.num_rows
        must_find = {v for v, c in counts.items() if c >= n / k}
        must_not = {v for v, c in counts.items() if c < n / (4 * k)}
        assert must_find <= reported
        assert not (reported & must_not)

    def test_sampled_counts_scale(self):
        table = categorical_table(30_000, distinct=50, seed=8)
        sketch = SampleHeavyHittersSketch("word", 10, rate=0.1, seed=9)
        summary = sketch.summarize(table)
        assert abs(summary.scanned - 3000) < 500

    def test_hitters_sorted_by_count(self):
        table = categorical_table(10_000, distinct=100, exponent=1.5, seed=10)
        sketch = SampleHeavyHittersSketch("word", 10, rate=0.5, seed=11)
        summary = sketch.summarize(table)
        hitters = sketch.hitters(summary)
        counts = [c for _, c in hitters]
        assert counts == sorted(counts, reverse=True)


class TestExactDistinct:
    def test_exact_set(self, small_table):
        summary = ExactDistinctSketch("name").summarize(small_table)
        assert summary.values == {"alice", "bob", "carol", "dave"}
        assert summary.missing == 1
        assert not summary.truncated

    def test_merge_unions(self, small_table):
        sketch = ExactDistinctSketch("name")
        merged = sketch.merge_all(
            [sketch.summarize(s) for s in small_table.split(3)]
        )
        assert merged.values == {"alice", "bob", "carol", "dave"}

    def test_truncation(self):
        table = categorical_table(5_000, distinct=400, seed=12)
        sketch = ExactDistinctSketch("word", limit=100)
        summary = sketch.summarize(table)
        assert summary.truncated
        assert summary.count == 100
        with pytest.raises(EngineError):
            sketch.require_exact(summary)

    def test_numeric_column(self):
        table = Table.from_pydict({"v": [1, 2, 2, 3, None]})
        summary = ExactDistinctSketch("v").summarize(table)
        assert summary.values == {1.0, 2.0, 3.0}

    def test_serialization(self, small_table):
        summary = ExactDistinctSketch("name").summarize(small_table)
        enc = Encoder()
        summary.encode(enc)
        back = DistinctSetSummary.decode(Decoder(enc.to_bytes()))
        assert back.values == summary.values


class TestHyperLogLog:
    @pytest.mark.parametrize("true_distinct", [50, 1000, 20_000])
    def test_estimate_within_error(self, true_distinct):
        rng = np.random.default_rng(13)
        values = rng.integers(0, true_distinct, size=max(true_distinct * 5, 10_000))
        table = Table.from_pydict({"v": values.tolist()})
        sketch = HyperLogLogSketch("v", precision=12, seed=0)
        summary = sketch.merge_all([sketch.summarize(s) for s in table.split(8)])
        actual_distinct = len(np.unique(values))
        relative_error = abs(summary.estimate() - actual_distinct) / actual_distinct
        assert relative_error < 0.08  # ~5 sigma at p=12

    def test_merge_equals_whole(self):
        table = categorical_table(20_000, distinct=2_000, seed=14)
        sketch = HyperLogLogSketch("word", precision=10, seed=3)
        whole = sketch.summarize(table)
        merged = sketch.merge_all([sketch.summarize(s) for s in table.split(7)])
        assert np.array_equal(whole.registers, merged.registers)

    def test_string_and_numeric_agreement_on_cardinality(self):
        rng = np.random.default_rng(15)
        codes = rng.integers(0, 500, size=20_000)
        table = Table.from_pydict(
            {"n": codes.tolist(), "s": [f"v{c}" for c in codes]}
        )
        n_est = HyperLogLogSketch("n", seed=1).summarize(table).estimate()
        s_est = HyperLogLogSketch("s", seed=1).summarize(table).estimate()
        assert abs(n_est - 500) / 500 < 0.1
        assert abs(s_est - 500) / 500 < 0.1

    def test_missing_tracked(self):
        table = Table.from_pydict({"v": [1.0, None, 2.0]})
        summary = HyperLogLogSketch("v").summarize(table)
        assert summary.missing == 1

    def test_empty_estimate_zero(self):
        summary = HyperLogLogSketch("v", precision=8).zero()
        assert summary.estimate() == 0.0

    def test_precision_bounds(self):
        with pytest.raises(ValueError):
            HyperLogLogSketch("v", precision=2)
        with pytest.raises(ValueError):
            HyperLogLogSketch("v", precision=20)

    def test_serialization(self):
        table = Table.from_pydict({"v": list(range(100))})
        summary = HyperLogLogSketch("v", precision=8).summarize(table)
        enc = Encoder()
        summary.encode(enc)
        back = HllSummary.decode(Decoder(enc.to_bytes()))
        assert np.array_equal(back.registers, summary.registers)
        assert back.estimate() == summary.estimate()

    def test_seed_in_cache_key(self):
        assert (
            HyperLogLogSketch("v", seed=1).cache_key()
            != HyperLogLogSketch("v", seed=2).cache_key()
        )


class TestBottomK:
    def test_unsaturated_holds_all_values(self, small_table):
        sketch = BottomKDistinctSketch("name", k=100)
        summary = sketch.summarize(small_table)
        assert not summary.saturated
        assert set(summary.values_sorted()) == {"alice", "bob", "carol", "dave"}
        assert summary.distinct_estimate() == 4.0

    def test_saturated_estimates_distinct(self):
        table = categorical_table(30_000, distinct=800, seed=16)
        sketch = BottomKDistinctSketch("word", k=200, seed=1)
        summary = sketch.merge_all([sketch.summarize(s) for s in table.split(6)])
        assert summary.saturated
        estimate = summary.distinct_estimate()
        assert 0.75 * 800 < estimate < 1.25 * 800

    def test_merge_equals_whole(self):
        table = categorical_table(10_000, distinct=300, seed=17)
        sketch = BottomKDistinctSketch("word", k=50, seed=2)
        whole = sketch.summarize(table)
        merged = sketch.merge_all([sketch.summarize(s) for s in table.split(5)])
        assert whole.entries == merged.entries

    def test_boundaries_are_distinct_quantiles(self):
        table = categorical_table(20_000, distinct=600, seed=18)
        sketch = BottomKDistinctSketch("word", k=300, seed=3)
        summary = sketch.summarize(table)
        boundaries = summary.quantile_boundaries(10, min_value="word000000")
        assert boundaries[0] == "word000000"
        assert boundaries == sorted(boundaries)
        assert len(boundaries) <= 10

    def test_numeric_column_rejected(self, small_table):
        with pytest.raises(ColumnKindError):
            BottomKDistinctSketch("x").summarize(small_table)

    def test_serialization(self, small_table):
        summary = BottomKDistinctSketch("name", k=10).summarize(small_table)
        enc = Encoder()
        summary.encode(enc)
        back = BottomKSummary.decode(Decoder(enc.to_bytes()))
        assert back.entries == summary.entries

    def test_multiplicity_invariance(self):
        """Bottom-k over distinct values ignores row multiplicities."""
        base = ["a", "b", "c", "d"]
        t1 = Table.from_pydict({"s": base})
        t2 = Table.from_pydict({"s": base * 50})
        sketch = BottomKDistinctSketch("s", k=3, seed=4)
        assert sketch.summarize(t1).entries == sketch.summarize(t2).entries


class TestCanonicalEncodingOrder:
    """FrequencySummary.encode must not leak dict insertion order."""

    @staticmethod
    def _encoded(counts: dict) -> bytes:
        summary = FrequencySummary(counts=counts, error_bound=3, scanned=100)
        enc = Encoder()
        summary.encode(enc)
        return enc.to_bytes()

    def test_insertion_order_does_not_change_the_bytes(self):
        forward = {"b": 2, "a": 5, "c": 1}
        reversed_order = dict(reversed(list(forward.items())))
        assert self._encoded(forward) == self._encoded(reversed_order)

    def test_mixed_types_with_colliding_string_forms(self):
        """int 3 and str "3" stringify identically; before the canonical
        type-rank tiebreak their relative order depended on insertion
        history, so two equal summaries could encode differently."""
        one_way = {3: 7, "3": 9, 2.5: 1, "x": 4}
        other_way = {"x": 4, "3": 9, 2.5: 1, 3: 7}
        assert self._encoded(one_way) == self._encoded(other_way)

    def test_canonical_counts_ranks_types_before_strings(self):
        from repro.sketches.heavy_hitters import canonical_counts

        ordered = canonical_counts({"3": 1, 3.5: 2, 3: 3, "a": 4})
        # ints/bools first, then floats, then strings — each sorted by
        # string form inside its rank.
        assert ordered == [(3, 3), (3.5, 2), ("3", 1), ("a", 4)]

    def test_merge_then_encode_is_order_independent(self):
        table_a = Table.from_pydict({"v": [1, 1, 2, 3, 3, 3]})
        table_b = Table.from_pydict({"v": [3, 2, 2, 2, 1]})
        sketch = MisraGriesSketch("v", k=8)
        ab = sketch.merge(sketch.summarize(table_a), sketch.summarize(table_b))
        ba = sketch.merge(sketch.summarize(table_b), sketch.summarize(table_a))
        enc_ab, enc_ba = Encoder(), Encoder()
        ab.encode(enc_ab)
        ba.encode(enc_ba)
        assert enc_ab.to_bytes() == enc_ba.to_bytes()
