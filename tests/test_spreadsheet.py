"""Spreadsheet facade tests over the cluster engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.resolution import Resolution
from repro.engine.local import parallel_dataset
from repro.spreadsheet import Spreadsheet
from repro.table.compute import ColumnPredicate
from repro.table.schema import ContentsKind
from repro.table.sort import RecordOrder


@pytest.fixture
def sheet(flights_cluster):
    _, dataset = flights_cluster
    return Spreadsheet(dataset, resolution=Resolution(300, 100), seed=2)


@pytest.fixture
def local_sheet(flights):
    return Spreadsheet(
        parallel_dataset(flights, shards=8),
        resolution=Resolution(300, 100),
        seed=3,
    )


class TestTabularViews:
    def test_table_view_sorted(self, sheet):
        view = sheet.table_view(RecordOrder.of("DepDelay"), k=10)
        values = [v for v in view.column_values("DepDelay") if v is not None]
        assert values == sorted(values)
        assert view.row_count == 10

    def test_paging_advances(self, sheet):
        first = sheet.table_view(RecordOrder.of("Distance"), k=5)
        second = sheet.next_page(first)
        last_key = first.last_key()
        assert last_key is not None
        assert last_key < second.order.key_from_values(second.rows[0])
        assert second.next_k.preceding >= sum(first.counts)

    def test_prev_page_round_trips(self, sheet):
        first = sheet.table_view(RecordOrder.of("Distance"), k=5)
        second = sheet.next_page(first)
        back = sheet.prev_page(second)
        assert back.rows == first.rows
        assert back.counts == first.counts
        assert back.next_k.preceding == first.next_k.preceding

    def test_prev_page_clamps_at_top(self, sheet):
        first = sheet.table_view(RecordOrder.of("Distance"), k=5)
        still_first = sheet.prev_page(first)
        assert still_first.rows == first.rows

    def test_prev_page_from_scroll_moves_backward(self, sheet):
        middle = sheet.scroll(0.5, RecordOrder.of("DepDelay"), k=10)
        before = sheet.prev_page(middle)
        assert before.scroll_position <= middle.scroll_position
        last = before.last_key()
        first_mid = middle.order.key_from_values(middle.rows[0])
        assert last is not None and last < first_mid

    def test_prev_page_descending_order(self, sheet):
        order = RecordOrder.of("Distance", ascending=False)
        first = sheet.table_view(order, k=5)
        second = sheet.next_page(first)
        back = sheet.prev_page(second)
        assert back.rows == first.rows

    def test_scroll_lands_near_fraction(self, sheet):
        view = sheet.scroll(0.5, RecordOrder.of("DepDelay"))
        assert 0.4 < view.scroll_position < 0.6

    def test_scroll_to_start(self, sheet):
        view = sheet.scroll(0.0, RecordOrder.of("DepDelay"))
        assert view.scroll_position < 0.05

    def test_find_jumps_to_match(self, sheet):
        result, view = sheet.find("Origin", "SFO", mode="exact")
        assert result.total_matches > 0
        assert view is not None
        assert view.rows[0][0] == "SFO"

    def test_find_no_match(self, sheet):
        result, view = sheet.find("Origin", "XXX", mode="exact")
        assert result.total_matches == 0
        assert view is None

    def test_find_next_occurrence(self, sheet):
        order = RecordOrder.of("Origin")
        first, _ = sheet.find("Origin", "S", order=order)
        key = first.first_key()
        nxt, _ = sheet.find("Origin", "S", order=order, start_key=key)
        assert nxt.matches_before >= 1


class TestCharts:
    def test_histogram_counts_sum(self, sheet):
        chart = sheet.histogram("Distance")
        total = chart.counts.sum()
        rows = sheet.total_rows
        assert abs(total - rows) / rows < 0.05

    def test_histogram_bucket_inspection(self, sheet):
        chart = sheet.histogram("Distance", buckets=10)
        label, count = chart.bucket_value(0)
        assert label.startswith("[")
        assert count >= 0

    def test_cdf_attached_for_numeric(self, sheet):
        chart = sheet.histogram("DepDelay")
        assert chart.cdf_summary is not None
        rendering = chart.cdf_rendering()
        assert rendering is not None
        assert np.all(np.diff(rendering.fractions) >= -1e-12)

    def test_string_histogram_explicit_buckets(self, sheet):
        chart = sheet.histogram("Airline", with_cdf=False)
        from repro.core.buckets import ExplicitStringBuckets

        assert isinstance(chart.buckets, ExplicitStringBuckets)
        assert chart.summary.total_in_range == sheet.total_rows

    def test_stacked_histogram(self, sheet):
        chart = sheet.stacked_histogram("DepDelay", "Airline")
        assert chart.cell_counts.shape[0] == chart.x_buckets.count
        shares = chart.y_share(int(np.argmax(chart.bar_counts)))
        assert shares.sum() == pytest.approx(1.0, abs=1e-9)

    def test_normalized_stacked_scans(self, sheet):
        chart = sheet.stacked_histogram("DepDelay", "Airline", normalized=True)
        assert chart.rate == 1.0
        rendering = chart.rendering()
        assert rendering.normalized

    def test_heatmap(self, sheet):
        chart = sheet.heatmap("DepDelay", "ArrDelay")
        assert chart.counts.shape == (
            chart.x_buckets.count,
            chart.y_buckets.count,
        )
        # Delays are correlated: the diagonal dominates.
        shades = chart.rendering().shades
        assert shades.max() > 0

    def test_heatmap_log_scale_exact(self, sheet):
        chart = sheet.heatmap("DepDelay", "ArrDelay", log_scale=True)
        assert chart.rate == 1.0

    def test_trellis(self, sheet):
        chart = sheet.trellis_heatmap("Airline", "DepDelay", "ArrDelay", panes=4)
        assert chart.pane_count >= 4
        assert chart.pane_label(0)
        total = sum(p.counts.sum() for p in chart.summary.panes)
        assert total > 0

    def test_trellis_two_group_columns(self, sheet):
        chart = sheet.trellis_heatmap(
            "Airline",
            "DepDelay",
            "ArrDelay",
            panes=3,
            group2_column="Cancelled",
        )
        minor = chart.group2_buckets.count
        assert chart.pane_count == chart.group_buckets.count * minor
        assert "/" in chart.pane_label(0)
        total = sum(p.counts.sum() for p in chart.summary.panes)
        assert total > 0

    def test_trellis_histogram(self, sheet):
        chart = sheet.trellis_histogram("Airline", "DepDelay", panes=4)
        assert chart.pane_count >= 4
        assert chart.pane_label(0)
        # Every pane shares the X bucket layout.
        assert all(
            p.buckets == chart.x_buckets.count for p in chart.summary.panes
        )
        assert sum(p.total_in_range for p in chart.summary.panes) > 0
        assert "--" in chart.ascii(panes=2)

    def test_trellis_histogram_pane_matches_filter(self, sheet):
        chart = sheet.trellis_histogram(
            "Cancelled", "Distance", panes=2, x_buckets=10
        )
        # Pane renderings exist and are within the pane resolution.
        rendering = chart.pane_rendering(0)
        assert rendering.heights.max() <= chart.resolution.height

    def test_trellis_histogram_two_groups(self, sheet):
        chart = sheet.trellis_histogram(
            "Airline", "DepDelay", panes=3, group2_column="Cancelled"
        )
        assert chart.pane_count == (
            chart.group_buckets.count * chart.group2_buckets.count
        )
        assert "/" in chart.pane_label(chart.pane_count - 1)


class TestAnalyses:
    def test_heavy_hitters_sampling(self, sheet):
        result = sheet.heavy_hitters("Origin", k=10, method="sampling")
        assert "ATL" in result.values()[:3]
        freqs = dict(result.frequencies())
        assert max(freqs.values()) < 0.2

    def test_heavy_hitters_streaming(self, sheet):
        result = sheet.heavy_hitters("Origin", k=10, method="streaming")
        assert "ATL" in result.values()[:3]

    def test_heavy_hitters_bad_method(self, sheet):
        with pytest.raises(ValueError):
            sheet.heavy_hitters("Origin", method="magic")

    def test_distinct_count(self, sheet):
        estimate = sheet.distinct_count("Airline")
        assert abs(estimate - 14) < 2

    def test_column_summary(self, sheet):
        stats = sheet.column_summary("Distance")
        assert stats.min_value >= 0
        assert stats.mean > 0
        assert stats.row_count == sheet.total_rows

    def test_pca(self, sheet):
        result = sheet.pca(["Distance", "AirTime", "DepDelay"], components=2)
        assert result.eigenvalues[0] >= result.eigenvalues[1]
        assert 0 < result.explained_variance <= 1.0
        # Distance and AirTime are nearly collinear.
        first = dict(zip(result.columns, np.abs(result.components[0])))
        assert first["Distance"] > 0.5 and first["AirTime"] > 0.5

    def test_pca_rejects_strings(self, sheet):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            sheet.pca(["Airline", "Distance"])


class TestTransformations:
    def test_filter_rows(self, sheet):
        ua = sheet.filter_equals("Airline", "UA")
        assert ua.total_rows < sheet.total_rows
        hh = ua.heavy_hitters("Airline", k=5, method="streaming")
        assert hh.values() == ["UA"]

    def test_zoom_in(self, sheet):
        zoomed = sheet.zoom_in("DepDelay", 0.0, 30.0)
        stats = zoomed.column_summary("DepDelay")
        assert stats.min_value >= 0.0
        assert stats.max_value <= 30.0

    def test_derive_column(self, local_sheet):
        derived = local_sheet.derive(
            "Speed",
            ContentsKind.DOUBLE,
            lambda arrays: np.asarray(arrays["Distance"])
            / np.maximum(np.asarray(arrays["AirTime"]), 1.0)
            * 60.0,
            vectorized=True,
        )
        stats = derived.column_summary("Speed")
        assert 100 < stats.mean < 600  # plausible mph

    def test_save(self, local_sheet, tmp_path):
        status = local_sheet.save(str(tmp_path / "saved"))
        assert status.ok
        assert status.rows_written == local_sheet.total_rows

    def test_shared_action_log(self, sheet):
        before = sheet.log.count
        filtered = sheet.filter_equals("Airline", "AA")
        filtered.histogram("DepDelay", with_cdf=False)
        assert sheet.log.count == before + 2  # filter + histogram


class TestActionAccounting:
    def test_actions_record_runs_and_bytes(self, sheet):
        mark = sheet.log.count
        sheet.histogram("TaxiOut")
        actions = sheet.log.since(mark)
        assert len(actions) == 1
        record = actions[0]
        assert record.sketches_executed >= 2  # range + histogram (+cdf)
        assert record.bytes_received > 0
        assert record.seconds > 0
        assert "histogram" in record.describe()

    def test_range_cached_across_charts(self, sheet):
        sheet.histogram("AirTime")
        mark = sheet.log.count
        sheet.histogram("AirTime", buckets=17)
        record = sheet.log.since(mark)[0]
        # The preparation (range) phase is memoized: only render sketches run.
        names = record.sketches_executed
        assert names <= 2

    def test_exact_mode(self, flights_cluster):
        _, dataset = flights_cluster
        exact_sheet = Spreadsheet(dataset, approximate=False, seed=4)
        chart = exact_sheet.histogram("Distance", with_cdf=False)
        assert chart.rate == 1.0
        assert chart.counts.sum() == exact_sheet.total_rows


class TestStringCdf:
    """Appendix B.1: 'CDFs for string data' — buckets + counting CDF."""

    def test_string_histogram_carries_cdf(self, sheet):
        chart = sheet.histogram("Airline", with_cdf=True)
        assert chart.cdf_summary is not None
        from repro.sketches.cdf import CdfSketch

        fractions = CdfSketch.cumulative(chart.cdf_summary)
        assert len(fractions) == chart.buckets.count
        # Cumulative fractions are monotone and end at 1.
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == pytest.approx(1.0)

    def test_string_cdf_matches_bucket_proportions(self, sheet):
        chart = sheet.histogram("Airline", with_cdf=True, approximate=False)
        from repro.sketches.cdf import CdfSketch

        fractions = CdfSketch.cumulative(chart.cdf_summary)
        expected = chart.summary.proportions().cumsum()
        assert fractions == pytest.approx(expected)

    def test_cdf_can_be_disabled(self, sheet):
        chart = sheet.histogram("Airline", with_cdf=False)
        assert chart.cdf_summary is None


class TestDateColumns:
    """§3.5/§4.3: dates are first-class and 'readily converted to a real'."""

    def test_date_histogram(self, sheet):
        chart = sheet.histogram("FlightDate", with_cdf=True)
        assert chart.summary.total_in_range > 0
        assert chart.cdf_summary is not None

    def test_date_sort_and_paging(self, sheet):
        import datetime

        view = sheet.table_view(RecordOrder.of("FlightDate"), k=5)
        dates = [v for v in view.column_values("FlightDate") if v is not None]
        assert all(isinstance(d, datetime.datetime) for d in dates)
        assert dates == sorted(dates)
        second = sheet.next_page(view)
        back = sheet.prev_page(second)
        assert back.rows == view.rows

    def test_date_heatmap_against_numeric(self, sheet):
        chart = sheet.heatmap("FlightDate", "DepDelay")
        assert chart.summary.total_in_range > 0

    def test_date_filter_by_range(self, sheet):
        from repro.table.column import datetime_to_millis

        stats = sheet.column_stats("FlightDate")
        lo = datetime_to_millis(stats.min_value)
        hi = datetime_to_millis(stats.max_value)
        mid = (lo + hi) // 2
        first_half = sheet.filter_rows(
            ColumnPredicate("FlightDate", "between", (lo, mid))
        )
        assert 0 < first_half.total_rows < sheet.total_rows
