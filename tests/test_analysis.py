"""Tests for ``repro analyze``: fixture-driven rule checks, the
suppression mechanism, the runtime registry cross-check, and the CLI.

Each rule has a pair of checked-in fixtures under
``tests/fixtures/analysis/``: a ``*_fire.py`` that must produce exactly
one finding (on the line carrying the ``analyzer: fires here`` marker)
and a ``*_near.py`` near-miss that must produce none.  The fixtures
carry a ``# repro: fixture as=...`` pragma, so directory walks skip
them — the full-tree baseline stays at zero findings — while naming one
explicitly scans it under its virtual path.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.analysis import (
    RULE_CATALOG,
    analyze_main,
    analyze_paths,
    discover_files,
    extract_registry_view,
    load_source_file,
)

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "analysis"
SRC = REPO / "src"

#: Waivers currently shipped in src/ — burn this down, never up.  Every
#: new suppression is a reviewed decision, not a reflex; if this number
#: must rise, the PR review owns the justification.
SUPPRESSION_CEILING = 33

FIRE_RULES = [
    "D001",
    "D002",
    "D003",
    "R001",
    "R002",
    "R003",
    "C001",
    "C002",
    "C003",
    "B001",
    "SUP001",
]


def _expected_line(path: Path) -> int:
    """The 1-based line carrying the fire marker (or, for the SUP001
    fixture, the malformed waiver itself)."""
    for i, line in enumerate(path.read_text().splitlines(), start=1):
        if "analyzer: fires here" in line or "repro: ignore[" in line:
            return i
    raise AssertionError(f"no fire marker in {path}")


@pytest.mark.parametrize("rule_id", FIRE_RULES)
def test_fire_fixture_produces_exactly_its_finding(rule_id: str) -> None:
    path = FIXTURES / f"{rule_id.lower()}_fire.py"
    report = analyze_paths([str(path)])
    assert len(report.findings) == 1, [
        (f.rule_id, f.line, f.message) for f in report.findings
    ]
    finding = report.findings[0]
    assert finding.rule_id == rule_id
    assert finding.path.endswith(f"{rule_id.lower()}_fire.py")
    assert finding.line == _expected_line(path)


@pytest.mark.parametrize("rule_id", FIRE_RULES)
def test_near_miss_fixture_is_clean(rule_id: str) -> None:
    path = FIXTURES / f"{rule_id.lower()}_near.py"
    report = analyze_paths([str(path)])
    assert report.findings == []


def test_pr7_fire_fixture_is_the_as_completed_fold() -> None:
    """The D001 fixture must stay the literal PR 7 bug shape."""
    text = (FIXTURES / "d001_fire.py").read_text()
    assert "as_completed(futures)" in text
    assert "merge" in text
    near = (FIXTURES / "d001_near.py").read_text()
    assert "as_completed" not in near
    assert "for future in futures" in near


def test_full_tree_baseline_is_zero() -> None:
    """The shipped tree analyzes clean; fixtures are walked over."""
    report = analyze_paths(
        [str(REPO / "src"), str(REPO / "tests"), str(REPO / "benchmarks")]
    )
    assert report.findings == [], [
        (f.path, f.line, f.rule_id) for f in report.findings
    ]
    scanned = {sf.path for sf in report.files}
    assert not any("fixtures/analysis" in path for path in scanned)


def test_suppression_count_can_only_shrink() -> None:
    known = set(RULE_CATALOG)
    total = 0
    for path in discover_files([str(SRC)]):
        sf = load_source_file(path, known)
        if not sf.is_fixture:
            total += len(sf.suppressions)
    assert total <= SUPPRESSION_CEILING, (
        f"src/ now carries {total} waivers (ceiling "
        f"{SUPPRESSION_CEILING}); fix the finding instead of waiving it, "
        "or make the case in review and raise the ceiling explicitly"
    )


def test_registry_view_matches_live_registries() -> None:
    """The analyzer's static registry extraction agrees with the live
    dictionaries, so the R-rules cannot drift from what they model."""
    import repro.engine.rpc as rpc
    import repro.sketches.specs as specs

    known = set(RULE_CATALOG)
    files = [
        load_source_file(p, known) for p in discover_files([str(SRC)])
    ]
    view = extract_registry_view([sf for sf in files if sf.tree is not None])

    static_builders = set(view.sketch_builder_keys)
    assert static_builders, "extraction found no SKETCH_BUILDERS literal"
    live_builders = set(rpc.SKETCH_BUILDERS)
    assert static_builders <= live_builders
    # The only sanctioned runtime registration is service.slow's
    # debugging sketch (import-time setdefault).
    assert live_builders - static_builders <= {"slow"}

    assert set(view.summary_codec_keys) == set(rpc.SUMMARY_CODECS)
    assert set(view.summary_parser_keys) == set(rpc.SUMMARY_PARSERS)

    live_spec_names = sorted(spec.name for spec in specs.SKETCH_SPECS)
    assert sorted(view.spec_names) == live_spec_names

    # Every statically-discovered vectorized sketch the rules would
    # police is a real class the live specs module can see.
    assert view.specs_file is not None
    for name in sorted(view.spec_referenced_classes):
        assert name.endswith("Sketch")


def _write(tmp_path: Path, rel: str, text: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def test_stale_waiver_is_a_finding(tmp_path: Path) -> None:
    path = _write(
        tmp_path,
        "src/repro/engine/mod.py",
        "value = 1  # repro: ignore[D001] — stale: nothing folds here\n",
    )
    report = analyze_paths([str(path)])
    assert [f.rule_id for f in report.findings] == ["SUP002"]


def test_unknown_rule_id_is_malformed(tmp_path: Path) -> None:
    path = _write(
        tmp_path,
        "src/repro/engine/mod.py",
        "value = 1  # repro: ignore[Z999] — no such rule\n",
    )
    report = analyze_paths([str(path)])
    assert [f.rule_id for f in report.findings] == ["SUP001"]


def test_syntax_error_is_a_finding(tmp_path: Path) -> None:
    path = _write(tmp_path, "src/repro/engine/mod.py", "def broken(:\n")
    report = analyze_paths([str(path)])
    assert [f.rule_id for f in report.findings] == ["SUP001"]


def test_standalone_waiver_covers_next_line(tmp_path: Path) -> None:
    path = _write(
        tmp_path,
        "src/repro/engine/mod.py",
        "def probe(worker):\n"
        "    try:\n"
        "        return worker.ping()\n"
        "    # repro: ignore[B001] — best-effort probe; caller treats "
        "None as down\n"
        "    except Exception:\n"
        "        return None\n",
    )
    report = analyze_paths([str(path)])
    assert report.findings == []
    assert [f.rule_id for f in report.suppressed] == ["B001"]


def test_consecutive_trailing_waivers_pair_one_to_one(
    tmp_path: Path,
) -> None:
    """A waiver reaches its own line and the next; two stacked trailing
    waivers must each claim their own finding instead of the first
    swallowing both and the second going stale."""
    path = _write(
        tmp_path,
        "src/repro/engine/mod.py",
        "import threading\n"
        "\n"
        "\n"
        "class Gauge:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.a = 0\n"
        "        self.b = 0\n"
        "\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self.a += 1\n"
        "            self.b += 1\n"
        "\n"
        "    def reset(self):\n"
        "        self.a = 0  # repro: ignore[C001] — test: single writer\n"
        "        self.b = 0  # repro: ignore[C001] — test: single writer\n",
    )
    report = analyze_paths([str(path)])
    assert report.findings == []
    assert [f.rule_id for f in report.suppressed] == ["C001", "C001"]


def test_cli_exit_codes_and_github_format() -> None:
    out = io.StringIO()
    assert analyze_main([str(REPO / "src")], out) == 0
    assert "ok: no findings" in out.getvalue()

    out = io.StringIO()
    fire = str(FIXTURES / "c003_fire.py")
    assert analyze_main(["--format=github", fire], out) == 1
    text = out.getvalue()
    assert "::error file=" in text
    assert "c003_fire.py" in text
    assert "line=9" in text

    assert analyze_main([str(REPO / "no" / "such" / "path")], io.StringIO()) == 2

    out = io.StringIO()
    assert analyze_main(["--list-rules"], out) == 0
    for rule_id in RULE_CATALOG:
        assert rule_id in out.getvalue()
