"""Local/parallel engine tests: progressive results, cancellation, maps."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.buckets import DoubleBuckets
from repro.engine.dataset import DeriveMap, FilterMap, ProjectMap
from repro.engine.local import LocalDataSet, ParallelDataSet, parallel_dataset
from repro.engine.progress import CancellationToken, drain
from repro.sketches.histogram import HistogramSketch
from repro.sketches.moments import MomentsSketch
from repro.table.compute import ColumnPredicate
from repro.table.schema import ContentsKind
from repro.table.table import Table


BUCKETS = DoubleBuckets(0, 100, 10)


class TestLocalDataSet:
    def test_sketch_single_partial(self, medium_numeric):
        ds = LocalDataSet(medium_numeric)
        partials = list(ds.sketch_stream(HistogramSketch("value", BUCKETS)))
        assert len(partials) == 1
        assert partials[0].progress == 1.0

    def test_map_filter(self, medium_numeric):
        ds = LocalDataSet(medium_numeric)
        filtered = ds.map(FilterMap(ColumnPredicate("value", ">", 50)))
        assert filtered.total_rows < ds.total_rows
        stats = filtered.sketch(MomentsSketch("value"))
        assert stats.min_value > 50

    def test_map_derive_and_project(self, medium_numeric):
        ds = LocalDataSet(medium_numeric)
        derived = ds.map(
            DeriveMap(
                "double_value",
                ContentsKind.DOUBLE,
                lambda arrays: np.asarray(arrays["value"]) * 2,
                vectorized=True,
            )
        )
        assert "double_value" in derived.schema
        projected = derived.map(ProjectMap(["double_value"]))
        assert projected.schema.names == ["double_value"]

    def test_cancelled_before_start(self, medium_numeric):
        token = CancellationToken()
        token.cancel()
        ds = LocalDataSet(medium_numeric)
        partials = list(ds.sketch_stream(HistogramSketch("value", BUCKETS), token))
        assert partials == []


class TestParallelDataSet:
    def test_progressive_partials_converge(self, medium_numeric):
        ds = parallel_dataset(medium_numeric, shards=8, max_workers=4)
        partials = list(ds.sketch_stream(HistogramSketch("value", BUCKETS)))
        assert len(partials) == 8
        progresses = [p.progress for p in partials]
        assert progresses == sorted(progresses)
        assert progresses[-1] == 1.0
        # The final partial equals the whole-table summary.
        exact = HistogramSketch("value", BUCKETS).summarize(medium_numeric)
        assert np.array_equal(partials[-1].value.counts, exact.counts)

    def test_counts_grow_monotonically(self, medium_numeric):
        ds = parallel_dataset(medium_numeric, shards=6)
        totals = [
            p.value.total_in_range
            for p in ds.sketch_stream(HistogramSketch("value", BUCKETS))
        ]
        assert totals == sorted(totals)

    def test_run_statistics(self, medium_numeric):
        ds = parallel_dataset(medium_numeric, shards=4)
        run = ds.run(HistogramSketch("value", BUCKETS))
        assert run.partials == 4
        assert run.bytes_received > 0
        assert run.total_seconds > 0
        assert run.first_partial_seconds <= run.total_seconds

    def test_map_applies_to_all_children(self, medium_numeric):
        ds = parallel_dataset(medium_numeric, shards=5)
        filtered = ds.map(FilterMap(ColumnPredicate("value", "<=", 10)))
        stats = filtered.sketch(MomentsSketch("value"))
        expected = (medium_numeric.column("value").data <= 10).sum()
        assert stats.present_count == expected

    def test_nested_parallel(self, medium_numeric):
        halves = medium_numeric.split(2)
        ds = ParallelDataSet(
            [parallel_dataset(h, shards=3) for h in halves]
        )
        stats = ds.sketch(MomentsSketch("value"))
        assert stats.present_count == medium_numeric.num_rows

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            ParallelDataSet([])

    def test_cancellation_skips_queued_work(self):
        # One slow shard; cancel while it runs; queued shards are skipped.
        table = Table.from_pydict({"v": list(range(1000))})
        ds = parallel_dataset(table, shards=10, max_workers=1)
        token = CancellationToken()

        class SlowSketch(MomentsSketch):
            def summarize(self, shard):
                time.sleep(0.02)
                return super().summarize(shard)

        partials = []
        for partial in ds.sketch_stream(SlowSketch("v"), token):
            partials.append(partial)
            token.cancel()
        assert 1 <= len(partials) < 10

    def test_drain_counts_bytes(self, medium_numeric):
        ds = parallel_dataset(medium_numeric, shards=3)
        run = drain(ds.sketch_stream(HistogramSketch("value", BUCKETS)))
        assert run.value.total_in_range == medium_numeric.num_rows
        assert run.bytes_received >= run.value.serialized_size()


class TestCancellationToken:
    def test_raise_if_cancelled(self):
        from repro.errors import CancelledError

        token = CancellationToken()
        token.raise_if_cancelled()
        token.cancel()
        with pytest.raises(CancelledError):
            token.raise_if_cancelled()

    def test_thread_visibility(self):
        token = CancellationToken()
        seen = []

        def watcher():
            while not token.cancelled:
                time.sleep(0.001)
            seen.append(True)

        thread = threading.Thread(target=watcher)
        thread.start()
        token.cancel()
        thread.join(timeout=1)
        assert seen == [True]
