"""The paper's accuracy guarantees, measured (Fig 3/13, Appendix C).

These tests draw repeated sampled renderings at the sample sizes computed by
:mod:`repro.core.sampling` and verify the advertised guarantees empirically:

* histogram bars within 1 pixel of the ideal rendering w.h.p. (Theorem 3);
* CDF curves within 1 pixel per horizontal pixel;
* heat-map bins within one color shade;
* scroll-bar quantiles within a few pixels of rank;
* heavy hitters found / excluded per Theorem 4.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import sampling
from repro.core.buckets import DoubleBuckets
from repro.data.synth import numeric_table
from repro.render.cdf_render import cdf_pixel_errors
from repro.render.heatmap_render import shade_errors
from repro.render.histogram_render import pixel_errors
from repro.sketches.cdf import CdfSketch
from repro.sketches.heatmap import HeatmapSketch
from repro.sketches.histogram import HistogramSketch

HEIGHT = 100  # V pixels
TRIALS = 12
#: Large enough that the display-derived sample is a real subsample, so the
#: guarantee is exercised honestly (rate << 1), not satisfied by rate=1.
POPULATION_ROWS = 2_000_000


@pytest.fixture(scope="module")
def population():
    return numeric_table(POPULATION_ROWS, "bimodal", seed=99)


def pixel_guarantee_sample_size(
    height: int, p_max: float, buckets: int, delta: float = 0.01
) -> int:
    """Samples so every bar is within one pixel, from the normal tail.

    Bar b's pixel error has standard deviation ``V * sqrt(p_b (1-p_b) / n)
    / p_max <= V / sqrt(n p_max)``; a union bound over B bars needs the
    ``1 - delta/B`` normal quantile z, giving ``n >= z^2 V^2 / p_max``.
    This is Theorem 3 with realistic constants — the worst-case Hoeffding
    form needs more samples than any population that fits in memory, which
    is precisely why the engine falls back to scanning (rate -> 1) and why
    the paper settled on "C V^2 works well in practice".
    """
    from scipy import stats as sps

    z = float(sps.norm.ppf(1 - delta / (2 * buckets)))
    return int(np.ceil(z * z * height * height / p_max))


class TestHistogramPixelGuarantee:
    @pytest.mark.parametrize("distribution", ["uniform", "normal", "bimodal"])
    def test_bars_within_one_pixel(self, distribution):
        table = numeric_table(POPULATION_ROWS, distribution, seed=5)
        buckets = DoubleBuckets(0, 100, 20)
        height = 60
        exact = HistogramSketch("value", buckets).summarize(table)
        p_max = float(exact.counts.max()) / exact.total_in_range
        target = pixel_guarantee_sample_size(height, p_max, 20)
        rate = sampling.sample_rate(target, table.num_rows)
        assert rate < 0.6, "the guarantee must be tested on a true subsample"
        bad_trials = 0
        for seed in range(TRIALS):
            sampled = HistogramSketch(
                "value", buckets, rate=rate, seed=seed
            ).summarize(table)
            errors = pixel_errors(sampled, exact, height, rate)
            if errors.max() > 1:
                bad_trials += 1
        # delta = 0.01: one bad trial in 12 would already be unlucky.
        assert bad_trials <= 1

    def test_engine_refuses_to_undersample(self, population):
        """When the display-derived bound exceeds the data, the engine
        scans (rate clamps to 1) and the rendering is exact — the guarantee
        is enforced by construction, never silently weakened."""
        target = sampling.practical_histogram_sample_size(HEIGHT, delta=0.01)
        if target < population.num_rows:
            pytest.skip("population large enough to subsample")
        rate = sampling.sample_rate(target, population.num_rows)
        assert rate == 1.0

    def test_insufficient_samples_do_violate(self, population):
        """Sanity: far fewer samples than the bound does break the pixel
        guarantee — the bound is doing real work."""
        buckets = DoubleBuckets(0, 100, 40)
        exact = HistogramSketch("value", buckets).summarize(population)
        rate = 200 / population.num_rows  # ~200 samples: hopeless
        violations = 0
        for seed in range(TRIALS):
            sampled = HistogramSketch(
                "value", buckets, rate=rate, seed=seed
            ).summarize(population)
            if pixel_errors(sampled, exact, HEIGHT, rate).max() > 1:
                violations += 1
        assert violations > TRIALS // 2


class TestCdfPixelGuarantee:
    def test_cdf_within_one_pixel(self, population):
        # slack=0.25 (instead of the paper's ultra-strict 0.1) keeps the
        # rendering within one pixel while making the sample a genuine
        # subsample of our population.
        width = 200
        buckets = DoubleBuckets(0, 100, width)
        exact = CdfSketch("value", buckets).summarize(population)
        target = sampling.cdf_sample_size(HEIGHT, delta=0.01, slack=0.25, width=width)
        rate = sampling.sample_rate(target, population.num_rows)
        assert rate < 0.7
        for seed in range(TRIALS):
            sampled = CdfSketch("value", buckets, rate=rate, seed=seed).summarize(
                population
            )
            errors = cdf_pixel_errors(sampled, exact, HEIGHT)
            assert errors.max() <= 1, f"seed {seed}: {errors.max()} pixels"


class TestHeatmapShadeGuarantee:
    def test_bins_within_one_shade(self):
        # Parameters chosen so the rigorous bound (which is enormous at 20
        # colors and fine grids — the reason the engine streams heat maps at
        # full resolution) lands *below* the population size: a concentrated
        # density, a coarse grid, and 8 color shades.
        rng = np.random.default_rng(3)
        n = 1_000_000
        colors = 8
        from repro.table.table import Table

        table = Table.from_pydict(
            {
                "x": rng.normal(50, 8, n).tolist(),
                "y": rng.normal(50, 8, n).tolist(),
            }
        )
        xb = DoubleBuckets(0, 100, 12)
        yb = DoubleBuckets(0, 100, 10)
        exact = HeatmapSketch("x", xb, "y", yb).summarize(table)
        p_max = exact.counts.max() / max(exact.total_in_range, 1)
        target = sampling.heatmap_sample_size(
            12, 10, colors=colors, delta=0.01, p_max_hint=p_max
        )
        rate = sampling.sample_rate(target, n)
        assert rate < 0.7, "the guarantee must be tested on a true subsample"
        bad = 0
        for seed in range(6):
            sampled = HeatmapSketch("x", xb, "y", yb, rate=rate, seed=seed).summarize(
                table
            )
            errors = shade_errors(sampled, exact, rate, colors=colors)
            if errors.max() > 1:
                bad += 1
        assert bad <= 1


class TestQuantileGuarantee:
    def test_scrollbar_rank_error(self, population):
        from repro.sketches.quantile import SampleQuantileSketch
        from repro.table.sort import RecordOrder

        order = RecordOrder.of("value")
        pixels = 100
        target = sampling.quantile_sample_size(pixels, delta=0.01)
        rate = sampling.sample_rate(target, population.num_rows)
        sketch = SampleQuantileSketch(order, rate, seed=8)
        summary = sketch.merge_all(
            [sketch.summarize(s) for s in population.split(8)]
        )
        values = np.sort(population.column("value").data)
        for fraction in (0.1, 0.25, 0.5, 0.75, 0.9):
            estimate = summary.quantile(fraction)[0]
            # Rank of the returned element in the true sorted order.
            rank = np.searchsorted(values, estimate) / len(values)
            pixel_error = abs(rank - fraction) * pixels
            assert pixel_error <= 3.0, (fraction, pixel_error)


class TestSampleSizeAblation:
    """Error falls as the sample-size multiplier grows (bench companion)."""

    def test_error_decreases_with_constant(self, population):
        buckets = DoubleBuckets(0, 100, 40)
        exact = HistogramSketch("value", buckets).summarize(population)
        mean_errors = []
        for c in (0.05, 0.5, 5.0):
            target = sampling.practical_histogram_sample_size(HEIGHT, c=c)
            rate = sampling.sample_rate(target, population.num_rows)
            errors = []
            for seed in range(5):
                sampled = HistogramSketch(
                    "value", buckets, rate=rate, seed=seed
                ).summarize(population)
                errors.append(pixel_errors(sampled, exact, HEIGHT, rate).mean())
            mean_errors.append(np.mean(errors))
        assert mean_errors[0] > mean_errors[1] > mean_errors[2]
