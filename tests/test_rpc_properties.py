"""Property-based fuzzing of the RPC JSON codecs (hypothesis).

The web protocol must round-trip every value object the UI can construct:
arbitrary predicate trees, sort orders, bucket descriptions, and cell
values.  A codec that drops or reorders anything silently corrupts the
query a worker executes, so these invariants get fuzzed, not spot-checked.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import DoubleBuckets, ExplicitStringBuckets, StringBuckets
from repro.engine.rpc import (
    NO_PAYLOAD,
    SKETCH_BUILDERS,
    SUMMARY_PARSERS,
    RpcReply,
    RpcRequest,
    buckets_from_json,
    buckets_to_json,
    cell_from_json,
    cell_to_json,
    lineage_from_json,
    lineage_to_json,
    order_from_json,
    order_to_json,
    predicate_from_json,
    predicate_to_json,
    sketch_from_json,
    sketch_to_json,
    source_to_json,
    summary_from_json,
    summary_to_json,
    table_map_from_json,
    table_map_to_json,
)
from repro.table.compute import (
    AndPredicate,
    ColumnPredicate,
    NotPredicate,
    OrPredicate,
    StringMatchPredicate,
)
from repro.table.sort import RecordOrder

column_names = st.sampled_from(["x", "y", "DepDelay", "Origin", "名前"])

scalar_values = st.one_of(
    st.integers(-10**9, 10**9),
    st.floats(-1e9, 1e9, allow_nan=False),
    st.text(max_size=12),
    # fold is DST disambiguation; it is meaningless for UTC stamps and not
    # part of the ISO format, so normalize it out.
    st.datetimes(
        min_value=datetime(1990, 1, 1),
        max_value=datetime(2030, 1, 1),
    ).map(lambda d: d.replace(tzinfo=timezone.utc, fold=0)),
)

column_predicates = st.one_of(
    st.builds(
        ColumnPredicate,
        column_names,
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        scalar_values,
    ),
    st.builds(
        lambda c, lo, hi: ColumnPredicate(c, "between", [lo, hi]),
        column_names,
        st.integers(-100, 0),
        st.integers(1, 100),
    ),
    st.builds(
        lambda c, vs: ColumnPredicate(c, "in", vs),
        column_names,
        st.lists(st.integers(-50, 50), min_size=1, max_size=5),
    ),
    st.builds(lambda c: ColumnPredicate(c, "is_missing"), column_names),
    st.builds(
        StringMatchPredicate,
        column_names,
        st.text(min_size=1, max_size=10),
        st.sampled_from(["exact", "substring", "regex"]),
        st.booleans(),
    ),
)

predicates = st.recursive(
    column_predicates,
    lambda inner: st.one_of(
        st.builds(lambda ps: AndPredicate(ps), st.lists(inner, min_size=1, max_size=3)),
        st.builds(lambda ps: OrPredicate(ps), st.lists(inner, min_size=1, max_size=3)),
        st.builds(NotPredicate, inner),
    ),
    max_leaves=6,
)

orders = st.builds(
    lambda cols, flags: RecordOrder.of(*cols, ascending=flags[: len(cols)]),
    st.lists(
        st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4, unique=True
    ),
    st.lists(st.booleans(), min_size=4, max_size=4),
)

buckets = st.one_of(
    st.builds(
        lambda lo, span, count: DoubleBuckets(lo, lo + span, count),
        st.floats(-1e6, 1e6, allow_nan=False),
        st.floats(0.001, 1e6, allow_nan=False),
        st.integers(1, 500),
    ),
    st.builds(
        lambda values: StringBuckets(sorted(values)),
        st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=8, unique=True),
    ),
    st.builds(
        lambda values: ExplicitStringBuckets(sorted(values)),
        st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=8, unique=True),
    ),
)


class TestCodecRoundTrips:
    @given(predicate=predicates)
    @settings(max_examples=150, deadline=None)
    def test_predicates(self, predicate):
        encoded = predicate_to_json(predicate)
        json.dumps(encoded)  # must be pure JSON
        assert predicate_from_json(encoded).spec() == predicate.spec()

    @given(order=orders)
    @settings(max_examples=80, deadline=None)
    def test_orders(self, order):
        encoded = order_to_json(order)
        json.dumps(encoded)
        assert order_from_json(encoded).spec() == order.spec()

    @given(b=buckets)
    @settings(max_examples=80, deadline=None)
    def test_buckets(self, b):
        encoded = buckets_to_json(b)
        json.dumps(encoded)
        assert buckets_from_json(encoded).spec() == b.spec()

    @given(value=st.one_of(st.none(), scalar_values))
    @settings(max_examples=100, deadline=None)
    def test_cells(self, value):
        encoded = cell_to_json(value)
        json.dumps(encoded)
        assert cell_from_json(encoded) == value


# ---------------------------------------------------------------------------
# Sketch specs: from_json(to_json(x)) == x for every SKETCH_BUILDERS entry
# ---------------------------------------------------------------------------
rates = st.floats(0.01, 1.0, allow_nan=False)
seeds = st.integers(0, 2**31)
small_k = st.integers(1, 50)

_single_col_orders = st.builds(lambda c: RecordOrder.of(c), column_names)


def _with_xy(builder):
    return st.builds(
        builder, column_names, buckets, column_names, buckets, rates, seeds
    )


@st.composite
def _start_keys(draw, order):
    values = tuple(
        draw(st.one_of(st.none(), scalar_values))
        for _ in order.orientations
    )
    return order.key_from_values(values)


@st.composite
def _next_k_sketches(draw):
    from repro.sketches.next_items import NextKSketch

    order = draw(orders)
    start = draw(st.one_of(st.none(), _start_keys(order)))
    return NextKSketch(
        order, draw(small_k), start_key=start, inclusive=draw(st.booleans())
    )


@st.composite
def _find_sketches(draw):
    from repro.sketches.find_text import FindTextSketch

    order = draw(orders)
    predicate = StringMatchPredicate(
        draw(column_names),
        draw(st.text(min_size=1, max_size=10)),
        draw(st.sampled_from(["exact", "substring", "regex"])),
        draw(st.booleans()),
    )
    start = draw(st.one_of(st.none(), _start_keys(order)))
    return FindTextSketch(predicate, order, start_key=start)


@st.composite
def _trellis_sketches(draw, cls, with_y):
    args = [draw(column_names), draw(buckets), draw(column_names), draw(buckets)]
    if with_y:
        args += [draw(column_names), draw(buckets)]
    group2 = draw(st.booleans())
    kwargs = {"rate": draw(rates), "seed": draw(seeds)}
    if group2:
        kwargs["group2_column"] = draw(column_names)
        kwargs["group2_buckets"] = draw(buckets)
    return cls(*args, **kwargs)


def _sketch_strategies():
    from repro.service.slow import SlowdownSketch
    from repro.sketches.bottomk import BottomKDistinctSketch
    from repro.sketches.cdf import CdfSketch
    from repro.sketches.heatmap import HeatmapSketch
    from repro.sketches.heavy_hitters import (
        MisraGriesSketch,
        SampleHeavyHittersSketch,
    )
    from repro.sketches.histogram import HistogramSketch
    from repro.sketches.hll import HyperLogLogSketch
    from repro.sketches.moments import MomentsSketch
    from repro.sketches.pca import CorrelationSketch
    from repro.sketches.quantile import SampleQuantileSketch
    from repro.sketches.save import SaveTableSketch
    from repro.sketches.stacked import StackedHistogramSketch
    from repro.sketches.trellis import (
        TrellisHeatmapSketch,
        TrellisHistogramSketch,
    )

    histograms = st.builds(HistogramSketch, column_names, buckets, rates, seeds)
    return {
        "histogram": histograms,
        "cdf": st.builds(CdfSketch, column_names, buckets, rates, seeds),
        "heatmap": _with_xy(HeatmapSketch),
        "stacked": _with_xy(StackedHistogramSketch),
        "trellisHeatmap": _trellis_sketches(TrellisHeatmapSketch, True),
        "trellisHistogram": _trellis_sketches(TrellisHistogramSketch, False),
        "moments": st.builds(MomentsSketch, column_names, st.integers(0, 4)),
        "distinct": st.builds(
            HyperLogLogSketch, column_names, st.integers(4, 16), seeds
        ),
        "heavyHitters": st.one_of(
            st.builds(MisraGriesSketch, column_names, small_k),
            st.builds(
                SampleHeavyHittersSketch, column_names, small_k, rates, seeds
            ),
        ),
        "nextK": _next_k_sketches(),
        "quantile": st.builds(SampleQuantileSketch, orders, rates, seeds),
        "find": _find_sketches(),
        "bottomK": st.builds(
            BottomKDistinctSketch, column_names, st.integers(1, 500), seeds
        ),
        "correlation": st.builds(
            CorrelationSketch,
            st.lists(
                st.sampled_from(["a", "b", "c", "d"]),
                min_size=2,
                max_size=4,
                unique=True,
            ),
            rates,
            seeds,
        ),
        "save": st.builds(
            SaveTableSketch,
            st.text(min_size=1, max_size=12).filter(lambda s: "\x00" not in s),
            st.sampled_from(["hvc", "csv"]),
        ),
        "slow": st.builds(
            SlowdownSketch, histograms, st.floats(0.0, 0.5, allow_nan=False)
        ),
    }


class TestSketchSpecRoundTrips:
    """Every registered sketch type survives to_json -> from_json exactly."""

    def test_every_builder_is_fuzzed(self):
        import repro.service.slow  # noqa: F401 — registers "slow"

        assert set(_sketch_strategies()) == set(SKETCH_BUILDERS)

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_sketches(self, data):
        strategies = _sketch_strategies()
        kind = data.draw(st.sampled_from(sorted(strategies)))
        sketch = data.draw(strategies[kind])
        spec = sketch_to_json(sketch)
        json.dumps(spec)  # must be pure JSON
        back = sketch_from_json(spec)
        assert type(back) is type(sketch)
        assert sketch_to_json(back) == spec
        assert back.cache_key() == sketch.cache_key()
        assert back.name == sketch.name


# ---------------------------------------------------------------------------
# Summary payloads: from_json(to_json(x)) == x for every _PAYLOADS converter
# ---------------------------------------------------------------------------
counts_1d = st.lists(st.integers(0, 10**9), min_size=1, max_size=8).map(
    lambda v: np.asarray(v, dtype=np.int64)
)
small_ints = st.integers(0, 10**9)
finite_floats = st.floats(-1e12, 1e12, allow_nan=False)


@st.composite
def _counts_2d(draw):
    bx = draw(st.integers(1, 4))
    by = draw(st.integers(1, 4))
    flat = draw(
        st.lists(st.integers(0, 10**9), min_size=bx * by, max_size=bx * by)
    )
    return np.asarray(flat, dtype=np.int64).reshape(bx, by)


@st.composite
def _histogram_summaries(draw):
    from repro.sketches.histogram import HistogramSummary

    return HistogramSummary(
        counts=draw(counts_1d),
        missing=draw(small_ints),
        out_of_range=draw(small_ints),
        sampled_rows=draw(small_ints),
    )


@st.composite
def _heatmap_summaries(draw):
    from repro.sketches.heatmap import HeatmapSummary

    return HeatmapSummary(
        counts=draw(_counts_2d()),
        x_missing=draw(small_ints),
        y_missing=draw(small_ints),
        out_of_range=draw(small_ints),
        sampled_rows=draw(small_ints),
    )


@st.composite
def _stacked_summaries(draw):
    from repro.sketches.stacked import StackedHistogramSummary

    cells = draw(_counts_2d())
    bx = cells.shape[0]
    bars = st.lists(st.integers(0, 10**9), min_size=bx, max_size=bx)
    return StackedHistogramSummary(
        bar_counts=np.asarray(draw(bars), dtype=np.int64),
        cell_counts=cells,
        y_missing=np.asarray(draw(bars), dtype=np.int64),
        missing=draw(small_ints),
        out_of_range=draw(small_ints),
        sampled_rows=draw(small_ints),
    )


@st.composite
def _trellis_summaries(draw):
    from repro.sketches.trellis import TrellisSummary

    return TrellisSummary(
        panes=draw(st.lists(_heatmap_summaries(), min_size=1, max_size=3)),
        group_missing=draw(small_ints),
        group_out_of_range=draw(small_ints),
        sampled_rows=draw(small_ints),
    )


@st.composite
def _trellis_histogram_summaries(draw):
    from repro.sketches.trellis import TrellisHistogramSummary

    return TrellisHistogramSummary(
        panes=draw(st.lists(_histogram_summaries(), min_size=1, max_size=3)),
        group_missing=draw(small_ints),
        group_out_of_range=draw(small_ints),
        sampled_rows=draw(small_ints),
    )


@st.composite
def _column_stats(draw):
    from repro.sketches.moments import ColumnStats

    return ColumnStats(
        present_count=draw(small_ints),
        missing_count=draw(small_ints),
        min_value=draw(st.one_of(st.none(), scalar_values)),
        max_value=draw(st.one_of(st.none(), scalar_values)),
        power_sums=draw(st.lists(finite_floats, max_size=4)),
    )


@st.composite
def _row_tuples(draw, order):
    width = len(order.orientations)
    return tuple(
        draw(st.one_of(st.none(), scalar_values)) for _ in range(width)
    )


@st.composite
def _next_k_lists(draw):
    from repro.sketches.next_items import NextKList

    order = draw(orders)
    rows = draw(st.lists(_row_tuples(order), max_size=6))
    return NextKList(
        order=order,
        rows=rows,
        counts=draw(
            st.lists(
                st.integers(1, 10**6),
                min_size=len(rows),
                max_size=len(rows),
            )
        ),
        preceding=draw(small_ints),
        scanned=draw(small_ints),
    )


@st.composite
def _frequency_summaries(draw):
    from repro.sketches.heavy_hitters import FrequencySummary

    return FrequencySummary(
        counts=draw(
            st.dictionaries(
                st.one_of(st.text(max_size=8), st.integers(-1000, 1000)),
                st.integers(0, 10**9),
                max_size=8,
            )
        ),
        error_bound=draw(small_ints),
        scanned=draw(small_ints),
    )


@st.composite
def _hll_summaries(draw):
    from repro.sketches.hll import HllSummary

    registers = draw(
        st.lists(st.integers(0, 61), min_size=16, max_size=16)
    )
    return HllSummary(
        registers=np.asarray(registers, dtype=np.uint8),
        missing=draw(small_ints),
    )


@st.composite
def _quantile_summaries(draw):
    from repro.sketches.quantile import QuantileSummary

    order = draw(orders)
    return QuantileSummary(
        order=order,
        samples=draw(st.lists(_row_tuples(order), max_size=6)),
        scanned=draw(small_ints),
    )


@st.composite
def _find_results(draw):
    from repro.sketches.find_text import FindResult

    order = draw(orders)
    return FindResult(
        order=order,
        first_match=draw(st.one_of(st.none(), _row_tuples(order))),
        matches_before=draw(small_ints),
        matches_after=draw(small_ints),
    )


@st.composite
def _bottom_k_summaries(draw):
    from repro.sketches.bottomk import BottomKSummary

    entries = sorted(
        (h, v)
        for h, v in draw(
            st.dictionaries(
                st.integers(0, 2**63), st.text(max_size=8), max_size=8
            )
        ).items()
    )
    return BottomKSummary(
        k=draw(st.integers(1, 10)),
        entries=entries,
        missing=draw(small_ints),
    )


@st.composite
def _correlation_summaries(draw):
    columns = draw(
        st.lists(
            st.sampled_from(["a", "b", "c", "d"]),
            min_size=2,
            max_size=4,
            unique=True,
        )
    )
    from repro.sketches.pca import CorrelationSummary

    n = len(columns)
    sums = draw(st.lists(finite_floats, min_size=n, max_size=n))
    products = draw(
        st.lists(finite_floats, min_size=n * n, max_size=n * n)
    )
    return CorrelationSummary(
        columns=columns,
        count=draw(small_ints),
        sums=np.asarray(sums, dtype=np.float64),
        products=np.asarray(products, dtype=np.float64).reshape(n, n),
    )


@st.composite
def _save_statuses(draw):
    from repro.sketches.save import SaveStatus

    return SaveStatus(
        files=draw(st.lists(st.text(min_size=1, max_size=12), max_size=4)),
        rows_written=draw(small_ints),
        errors=draw(st.lists(st.text(min_size=1, max_size=12), max_size=2)),
    )


def _summary_strategies():
    return {
        "histogram": _histogram_summaries(),
        "heatmap": _heatmap_summaries(),
        "stacked": _stacked_summaries(),
        "trellisHeatmap": _trellis_summaries(),
        "trellisHistogram": _trellis_histogram_summaries(),
        "columnStats": _column_stats(),
        "nextK": _next_k_lists(),
        "frequencies": _frequency_summaries(),
        "distinct": _hll_summaries(),
        "quantile": _quantile_summaries(),
        "find": _find_results(),
        "bottomK": _bottom_k_summaries(),
        "correlation": _correlation_summaries(),
        "saveStatus": _save_statuses(),
    }


class TestSummaryPayloadRoundTrips:
    """Every _PAYLOADS converter has an exact inverse (worker-wire safety)."""

    def test_every_parser_is_fuzzed(self):
        assert set(_summary_strategies()) == set(SUMMARY_PARSERS)

    @given(data=st.data())
    @settings(max_examples=250, deadline=None)
    def test_summaries(self, data):
        strategies = _summary_strategies()
        kind = data.draw(st.sampled_from(sorted(strategies)))
        summary = data.draw(strategies[kind])
        payload = summary_to_json(summary)
        json.dumps(payload)  # must be pure JSON
        assert payload["type"] == kind
        back = summary_from_json(payload)
        assert type(back) is type(summary)
        # The binary wire encoding is the engine's identity notion: equal
        # bytes means the root merges the rebuilt summary identically.
        assert back.to_bytes() == summary.to_bytes()
        assert summary_to_json(back) == payload


# ---------------------------------------------------------------------------
# Lineage: table maps and sources round-trip for worker-side replay
# ---------------------------------------------------------------------------
class TestLineageRoundTrips:
    @given(predicate=predicates)
    @settings(max_examples=60, deadline=None)
    def test_filter_maps(self, predicate):
        from repro.engine.dataset import FilterMap

        encoded = table_map_to_json(FilterMap(predicate))
        json.dumps(encoded)
        assert table_map_from_json(encoded).spec() == FilterMap(predicate).spec()

    @given(
        columns=st.lists(
            st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3, unique=True
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_project_maps(self, columns):
        from repro.engine.dataset import ProjectMap

        encoded = table_map_to_json(ProjectMap(columns))
        assert table_map_from_json(encoded).spec() == ProjectMap(columns).spec()

    def test_expression_maps(self):
        from repro.engine.dataset import ExpressionMap

        table_map = ExpressionMap("gain", "DepDelay - ArrDelay")
        encoded = table_map_to_json(table_map)
        json.dumps(encoded)
        assert table_map_from_json(encoded).spec() == table_map.spec()

    def test_derive_maps_are_rejected(self):
        from repro.engine.dataset import DeriveMap
        from repro.engine.rpc import ProtocolError
        from repro.table.schema import ContentsKind

        with pytest.raises(ProtocolError):
            table_map_to_json(DeriveMap("x", ContentsKind.DOUBLE, lambda v: v))

    def test_lineage_chain_round_trips(self):
        from repro.data.flights import FlightsSource
        from repro.engine.dataset import FilterMap, ProjectMap
        from repro.engine.redo_log import LoadOp, MapOp

        chain = [
            LoadOp("ds-0", FlightsSource(1000, partitions=4, seed=2)),
            MapOp("ds-1", "ds-0", FilterMap(ColumnPredicate("x", ">", 3))),
            MapOp("ds-2", "ds-1", ProjectMap(["x", "y"])),
        ]
        encoded = lineage_to_json(chain)
        json.dumps(encoded)
        back = lineage_from_json(encoded)
        assert [op.dataset_id for op in back] == ["ds-0", "ds-1", "ds-2"]
        assert back[0].source.spec() == chain[0].source.spec()
        assert back[1].table_map.spec() == chain[1].table_map.spec()
        assert back[2].table_map.spec() == chain[2].table_map.spec()

    def test_in_memory_sources_are_rejected(self):
        from repro.engine.rpc import ProtocolError
        from repro.storage.loader import TableSource
        from repro.table.table import Table

        table = Table.from_pydict({"x": [1, 2, 3]})
        with pytest.raises(ProtocolError):
            source_to_json(TableSource([table]))


class TestEnvelopeRoundTrips:
    @given(
        request_id=st.integers(0, 2**31),
        target=st.text(min_size=1, max_size=20),
        method=st.sampled_from(["sketch", "filter", "schema", "ping"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_requests(self, request_id, target, method):
        request = RpcRequest(request_id, target, method, {"k": [1, "two"]})
        assert RpcRequest.from_json(request.to_json()) == request

    @given(
        request_id=st.integers(0, 2**31),
        kind=st.sampled_from(["partial", "complete", "ack", "error"]),
        progress=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_replies(self, request_id, kind, progress):
        reply = RpcReply(request_id, kind, progress=progress, payload={"n": 1})
        back = RpcReply.from_json(reply.to_json())
        assert back.request_id == request_id
        assert back.kind == kind
        assert abs(back.progress - progress) < 1e-5
        assert back.payload == {"n": 1}

    @given(
        request_id=st.integers(0, 2**31),
        kind=st.sampled_from(["partial", "complete", "ack", "error"]),
        payload=st.one_of(
            st.just(NO_PAYLOAD), st.none(), st.dictionaries(st.text(), st.integers())
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_null_payload_survives_but_absent_payload_stays_absent(
        self, request_id, kind, payload
    ):
        """An explicit None payload and an absent payload are different
        envelopes and must stay different through the wire."""
        reply = RpcReply(request_id, kind, payload=payload)
        encoded = json.loads(reply.to_json())
        if payload is NO_PAYLOAD:
            assert "payload" not in encoded
        else:
            assert "payload" in encoded and encoded["payload"] == payload
        back = RpcReply.from_json(reply.to_json())
        assert (back.payload is NO_PAYLOAD) == (payload is NO_PAYLOAD)
        if payload is not NO_PAYLOAD:
            assert back.payload == payload


# ---------------------------------------------------------------------------
# Binary envelopes: the worker wire's attachment framing
# ---------------------------------------------------------------------------
class TestBinaryEnvelopes:
    """JSON frames and binary-attachment frames share one wire safely."""

    @given(
        header=st.dictionaries(st.text(max_size=8), st.integers(), max_size=4),
        attachment=st.one_of(st.none(), st.binary(max_size=256)),
    )
    @settings(max_examples=120, deadline=None)
    def test_envelope_round_trip(self, header, attachment):
        from repro.engine.rpc import encode_envelope, split_envelope

        text = json.dumps(header)
        frame = encode_envelope(text, attachment)
        if attachment is None:
            # No attachment -> the frame IS the JSON text (byte-identical
            # to the historical wire; nothing to strip on receive).
            assert frame == text.encode("utf-8")
        else:
            assert frame[0] == 0  # no JSON text can start with 0x00
        back_text, back_attachment = split_envelope(frame)
        assert back_text == text
        assert back_attachment == attachment

    @given(
        request_id=st.integers(0, 2**31),
        attachment=st.one_of(st.none(), st.binary(max_size=128)),
    )
    @settings(max_examples=60, deadline=None)
    def test_request_frames(self, request_id, attachment):
        request = RpcRequest(request_id, "t", "adoptShards", {"n": 3})
        request.attachment = attachment
        back = RpcRequest.from_frame(request.to_frame())
        assert back.request_id == request_id
        assert back.args == {"n": 3}
        assert back.attachment == attachment

    @given(
        request_id=st.integers(0, 2**31),
        payload=st.one_of(
            st.just(NO_PAYLOAD), st.none(), st.dictionaries(st.text(), st.integers())
        ),
        attachment=st.one_of(st.none(), st.binary(max_size=128)),
    )
    @settings(max_examples=80, deadline=None)
    def test_reply_frames_preserve_absent_vs_null_payload(
        self, request_id, payload, attachment
    ):
        reply = RpcReply(request_id, "partial", payload=payload)
        reply.attachment = attachment
        back = RpcReply.from_frame(reply.to_frame())
        assert back.attachment == attachment
        assert (back.payload is NO_PAYLOAD) == (payload is NO_PAYLOAD)
        if payload is not NO_PAYLOAD:
            assert back.payload == payload

    def test_mixed_frames_on_one_connection(self):
        """A reader must demux interleaved JSON and binary frames."""
        import io

        from repro.core.framing import (
            FrameError,
            read_frame_blocking,
            write_frame,
        )

        first = RpcReply(1, "ack", payload={"hello": True})
        second = RpcReply(2, "partial", payload={"summaryType": "histogram"})
        second.attachment = b"\x00\x01binary bytes, not JSON\xff"
        third = RpcReply(3, "complete", payload=None)
        buffer = io.BytesIO()
        for reply in (first, second, third):
            write_frame(buffer, reply.to_frame())
        buffer.seek(0)
        out = []
        while True:
            frame = read_frame_blocking(buffer, error=FrameError)
            if frame is None:
                break
            out.append(RpcReply.from_frame(frame))
        assert [r.request_id for r in out] == [1, 2, 3]
        assert out[0].attachment is None and out[0].payload == {"hello": True}
        assert out[1].attachment == second.attachment
        assert out[2].attachment is None and out[2].payload is None


class TestBinarySummaryCodec:
    """summary_to_bytes/summary_from_bytes: the hot-path partial codec."""

    def test_codecs_cover_every_payload_type(self):
        from repro.engine.rpc import SUMMARY_CODECS

        assert set(SUMMARY_CODECS) == set(SUMMARY_PARSERS)

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_binary_round_trip_matches_json_round_trip(self, data):
        from repro.engine.rpc import (
            summary_from_bytes,
            summary_tag,
            summary_to_bytes,
        )

        strategies = _summary_strategies()
        kind = data.draw(st.sampled_from(sorted(strategies)))
        summary = data.draw(strategies[kind])
        assert summary_tag(summary) == kind
        blob = summary_to_bytes(summary)
        back = summary_from_bytes(blob)
        assert type(back) is type(summary)
        assert back.to_bytes() == summary.to_bytes()
        # Both wire modes must rebuild the same object: the JSON path is
        # the differential baseline for the binary one.
        via_json = summary_from_json(summary_to_json(summary))
        assert via_json.to_bytes() == back.to_bytes()

    def test_unknown_tag_is_a_protocol_error(self):
        from repro.core.serialization import Encoder
        from repro.engine.rpc import ProtocolError, summary_from_bytes

        enc = Encoder()
        enc.write_str("no-such-summary")
        with pytest.raises(ProtocolError):
            summary_from_bytes(enc.to_bytes())


class TestTablePayloadRoundTrips:
    """hvc table payloads (shard transfers) survive the wire exactly."""

    @given(
        ints=st.lists(st.one_of(st.none(), st.integers(-10**6, 10**6)), max_size=20),
        strs=st.lists(st.one_of(st.none(), st.text(max_size=6)), max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_table_bytes_round_trip(self, ints, strs):
        from repro.storage.columnar import table_from_bytes, table_to_bytes
        from repro.table.column import column_from_values
        from repro.table.schema import ContentsKind
        from repro.table.table import Table

        n = min(len(ints), len(strs))
        table = Table(
            [
                column_from_values("i", ints[:n], ContentsKind.INTEGER),
                column_from_values("s", strs[:n], ContentsKind.STRING),
            ],
            shard_id="wire-shard",
        )
        payload = table_to_bytes(table)
        back = table_from_bytes(payload, shard_id="wire-shard")
        assert table_to_bytes(back) == payload
        assert back.num_rows == n

    def test_bad_magic_is_a_storage_error(self):
        from repro.errors import StorageError
        from repro.storage.columnar import table_from_bytes

        with pytest.raises(StorageError):
            table_from_bytes(b"not-an-hvc-payload")
