"""Property-based fuzzing of the RPC JSON codecs (hypothesis).

The web protocol must round-trip every value object the UI can construct:
arbitrary predicate trees, sort orders, bucket descriptions, and cell
values.  A codec that drops or reorders anything silently corrupts the
query a worker executes, so these invariants get fuzzed, not spot-checked.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import DoubleBuckets, ExplicitStringBuckets, StringBuckets
from repro.engine.rpc import (
    RpcReply,
    RpcRequest,
    buckets_from_json,
    buckets_to_json,
    cell_from_json,
    cell_to_json,
    order_from_json,
    order_to_json,
    predicate_from_json,
    predicate_to_json,
)
from repro.table.compute import (
    AndPredicate,
    ColumnPredicate,
    NotPredicate,
    OrPredicate,
    StringMatchPredicate,
)
from repro.table.sort import RecordOrder

column_names = st.sampled_from(["x", "y", "DepDelay", "Origin", "名前"])

scalar_values = st.one_of(
    st.integers(-10**9, 10**9),
    st.floats(-1e9, 1e9, allow_nan=False),
    st.text(max_size=12),
    # fold is DST disambiguation; it is meaningless for UTC stamps and not
    # part of the ISO format, so normalize it out.
    st.datetimes(
        min_value=datetime(1990, 1, 1),
        max_value=datetime(2030, 1, 1),
    ).map(lambda d: d.replace(tzinfo=timezone.utc, fold=0)),
)

column_predicates = st.one_of(
    st.builds(
        ColumnPredicate,
        column_names,
        st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
        scalar_values,
    ),
    st.builds(
        lambda c, lo, hi: ColumnPredicate(c, "between", [lo, hi]),
        column_names,
        st.integers(-100, 0),
        st.integers(1, 100),
    ),
    st.builds(
        lambda c, vs: ColumnPredicate(c, "in", vs),
        column_names,
        st.lists(st.integers(-50, 50), min_size=1, max_size=5),
    ),
    st.builds(lambda c: ColumnPredicate(c, "is_missing"), column_names),
    st.builds(
        StringMatchPredicate,
        column_names,
        st.text(min_size=1, max_size=10),
        st.sampled_from(["exact", "substring", "regex"]),
        st.booleans(),
    ),
)

predicates = st.recursive(
    column_predicates,
    lambda inner: st.one_of(
        st.builds(lambda ps: AndPredicate(ps), st.lists(inner, min_size=1, max_size=3)),
        st.builds(lambda ps: OrPredicate(ps), st.lists(inner, min_size=1, max_size=3)),
        st.builds(NotPredicate, inner),
    ),
    max_leaves=6,
)

orders = st.builds(
    lambda cols, flags: RecordOrder.of(*cols, ascending=flags[: len(cols)]),
    st.lists(
        st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4, unique=True
    ),
    st.lists(st.booleans(), min_size=4, max_size=4),
)

buckets = st.one_of(
    st.builds(
        lambda lo, span, count: DoubleBuckets(lo, lo + span, count),
        st.floats(-1e6, 1e6, allow_nan=False),
        st.floats(0.001, 1e6, allow_nan=False),
        st.integers(1, 500),
    ),
    st.builds(
        lambda values: StringBuckets(sorted(values)),
        st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=8, unique=True),
    ),
    st.builds(
        lambda values: ExplicitStringBuckets(sorted(values)),
        st.lists(st.text(min_size=1, max_size=6), min_size=1, max_size=8, unique=True),
    ),
)


class TestCodecRoundTrips:
    @given(predicate=predicates)
    @settings(max_examples=150, deadline=None)
    def test_predicates(self, predicate):
        encoded = predicate_to_json(predicate)
        json.dumps(encoded)  # must be pure JSON
        assert predicate_from_json(encoded).spec() == predicate.spec()

    @given(order=orders)
    @settings(max_examples=80, deadline=None)
    def test_orders(self, order):
        encoded = order_to_json(order)
        json.dumps(encoded)
        assert order_from_json(encoded).spec() == order.spec()

    @given(b=buckets)
    @settings(max_examples=80, deadline=None)
    def test_buckets(self, b):
        encoded = buckets_to_json(b)
        json.dumps(encoded)
        assert buckets_from_json(encoded).spec() == b.spec()

    @given(value=st.one_of(st.none(), scalar_values))
    @settings(max_examples=100, deadline=None)
    def test_cells(self, value):
        encoded = cell_to_json(value)
        json.dumps(encoded)
        assert cell_from_json(encoded) == value


class TestEnvelopeRoundTrips:
    @given(
        request_id=st.integers(0, 2**31),
        target=st.text(min_size=1, max_size=20),
        method=st.sampled_from(["sketch", "filter", "schema", "ping"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_requests(self, request_id, target, method):
        request = RpcRequest(request_id, target, method, {"k": [1, "two"]})
        assert RpcRequest.from_json(request.to_json()) == request

    @given(
        request_id=st.integers(0, 2**31),
        kind=st.sampled_from(["partial", "complete", "ack", "error"]),
        progress=st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_replies(self, request_id, kind, progress):
        reply = RpcReply(request_id, kind, progress=progress, payload={"n": 1})
        back = RpcReply.from_json(reply.to_json())
        assert back.request_id == request_id
        assert back.kind == kind
        assert abs(back.progress - progress) < 1e-5
        assert back.payload == {"n": 1}
