"""SQL (SQLite) storage source tests: round-trip, partitioning, snapshots."""

from __future__ import annotations

import sqlite3
from datetime import datetime, timezone

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import sql_io
from repro.storage.loader import SqlSource
from repro.table.schema import ContentsKind
from repro.table.table import Table


@pytest.fixture
def db(tmp_path):
    """An SQLite database holding a small typed table named ``events``."""
    path = str(tmp_path / "events.db")
    with sqlite3.connect(path) as conn:
        conn.execute(
            "CREATE TABLE events ("
            " id INTEGER, score REAL, name TEXT, at TIMESTAMP)"
        )
        conn.executemany(
            "INSERT INTO events VALUES (?, ?, ?, ?)",
            [
                (1, 0.5, "alpha", "2019-07-10 12:00:00"),
                (2, 1.5, "beta", "2019-07-11 13:30:00"),
                (3, None, None, None),
                (4, 2.5, "gamma", "2019-07-12"),
            ],
        )
        conn.commit()
    return path


class TestReadSql:
    def test_declared_kinds(self, db):
        [table] = sql_io.read_sql(db, "events")
        assert table.schema.kind("id") is ContentsKind.INTEGER
        assert table.schema.kind("score") is ContentsKind.DOUBLE
        assert table.schema.kind("name") is ContentsKind.STRING
        assert table.schema.kind("at") is ContentsKind.DATE

    def test_values_roundtrip(self, db):
        [table] = sql_io.read_sql(db, "events")
        assert table.num_rows == 4
        assert table.column("id").value(0) == 1
        assert table.column("score").value(1) == 1.5
        assert table.column("name").value(3) == "gamma"
        assert table.column("at").value(0) == datetime(
            2019, 7, 10, 12, 0, 0, tzinfo=timezone.utc
        )

    def test_missing_values(self, db):
        [table] = sql_io.read_sql(db, "events")
        assert table.column("score").value(2) is None
        assert table.column("name").value(2) is None
        assert table.column("at").value(2) is None

    def test_partitions_cover_all_rows(self, db):
        shards = sql_io.read_sql(db, "events", partitions=3)
        assert sum(s.num_rows for s in shards) == 4
        ids = sorted(
            s.column("id").value(i)
            for s in shards
            for i in range(s.num_rows)
        )
        assert ids == [1, 2, 3, 4]

    def test_more_partitions_than_rows(self, db):
        shards = sql_io.read_sql(db, "events", partitions=16)
        assert sum(s.num_rows for s in shards) == 4

    def test_kind_override(self, db):
        [table] = sql_io.read_sql(
            db, "events", kinds={"id": ContentsKind.DOUBLE}
        )
        assert table.schema.kind("id") is ContentsKind.DOUBLE

    def test_unknown_table_rejected(self, db):
        with pytest.raises(StorageError, match="no such SQL table"):
            sql_io.read_sql(db, "nonexistent")

    def test_empty_table_keeps_schema(self, tmp_path):
        path = str(tmp_path / "empty.db")
        with sqlite3.connect(path) as conn:
            conn.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        [table] = sql_io.read_sql(path, "t")
        assert table.num_rows == 0
        assert table.schema.kind("a") is ContentsKind.INTEGER


class TestWriteSql:
    def test_roundtrip(self, tmp_path):
        original = Table.from_pydict(
            {
                "n": [1, 2, 3],
                "x": [0.5, None, 1.5],
                "s": ["a", "b", None],
                "d": [
                    datetime(2019, 1, 1, tzinfo=timezone.utc),
                    None,
                    datetime(2020, 6, 15, 8, 30, tzinfo=timezone.utc),
                ],
            }
        )
        path = str(tmp_path / "round.db")
        written = sql_io.write_sql(path, "t", original)
        assert written == 3
        [back] = sql_io.read_sql(path, "t")
        assert back.schema == original.schema
        assert back.to_pydict() == original.to_pydict()

    def test_writes_members_only(self, tmp_path):
        from repro.table.compute import ColumnPredicate

        table = Table.from_pydict({"n": [1, 2, 3, 4]})
        filtered = table.filter(ColumnPredicate("n", ">", 2))
        path = str(tmp_path / "members.db")
        assert sql_io.write_sql(path, "t", filtered) == 2
        [back] = sql_io.read_sql(path, "t")
        assert back.to_pydict() == {"n": [3, 4]}

    def test_replaces_existing_table(self, tmp_path):
        path = str(tmp_path / "replace.db")
        sql_io.write_sql(path, "t", Table.from_pydict({"n": [1, 2]}))
        sql_io.write_sql(path, "t", Table.from_pydict({"n": [9]}))
        [back] = sql_io.read_sql(path, "t")
        assert back.to_pydict() == {"n": [9]}

    def test_quoting_odd_identifiers(self, tmp_path):
        path = str(tmp_path / "quote.db")
        table = Table.from_pydict({"odd name": [1]})
        sql_io.write_sql(path, 'odd "table"', table)
        [back] = sql_io.read_sql(path, 'odd "table"')
        assert back.to_pydict() == {"odd name": [1]}


class TestSqlSource:
    def test_load_and_sketch_partition_invariance(self, db):
        from repro.core.buckets import DoubleBuckets
        from repro.sketches.histogram import HistogramSketch

        sketch = HistogramSketch("id", DoubleBuckets(0, 5, 5))
        one = SqlSource(db, "events", partitions=1).load()
        many = SqlSource(db, "events", partitions=3).load()
        merged_one = sketch.merge_all([sketch.summarize(t) for t in one])
        merged_many = sketch.merge_all([sketch.summarize(t) for t in many])
        assert np.array_equal(merged_one.counts, merged_many.counts)

    def test_snapshot_violation_detected(self, db):
        source = SqlSource(db, "events")
        source.load()
        with sqlite3.connect(db) as conn:
            conn.execute(
                "INSERT INTO events VALUES (5, 3.5, 'delta', '2019-08-01')"
            )
            conn.commit()
        with pytest.raises(StorageError, match="changed while Hillview"):
            source.load()

    def test_snapshot_check_can_be_disabled(self, db):
        source = SqlSource(db, "events", verify_snapshot=False)
        source.load()
        with sqlite3.connect(db) as conn:
            conn.execute("DELETE FROM events WHERE id = 1")
            conn.commit()
        shards = source.load()
        assert sum(s.num_rows for s in shards) == 3

    def test_spec_is_stable(self, db):
        source = SqlSource(db, "events", partitions=2)
        assert source.spec() == f"SqlSource({db!r},'events',partitions=2)"

    def test_spreadsheet_over_sql_source(self, db):
        """End to end: load from SQL into the cluster engine and chart."""
        from repro.engine.cluster import Cluster
        from repro.spreadsheet import Spreadsheet

        cluster = Cluster(num_workers=2)
        dataset = cluster.load(SqlSource(db, "events", partitions=2))
        sheet = Spreadsheet(dataset, approximate=False)
        chart = sheet.histogram("score", buckets=4, with_cdf=False)
        assert chart.summary.total_in_range == 3
        assert chart.summary.missing == 1


class TestDeclaredTypeMapping:
    @pytest.mark.parametrize(
        "declared,expected",
        [
            ("INTEGER", ContentsKind.INTEGER),
            ("int", ContentsKind.INTEGER),
            ("BIGINT", ContentsKind.INTEGER),
            ("REAL", ContentsKind.DOUBLE),
            ("DOUBLE PRECISION", ContentsKind.DOUBLE),
            ("FLOAT", ContentsKind.DOUBLE),
            ("NUMERIC(10,2)", ContentsKind.DOUBLE),
            ("VARCHAR(20)", ContentsKind.STRING),
            ("TEXT", ContentsKind.STRING),
            ("DATE", ContentsKind.DATE),
            ("TIMESTAMP", ContentsKind.DATE),
            ("DATETIME", ContentsKind.DATE),
            ("", None),
            (None, None),
            ("BLOB", None),
        ],
    )
    def test_mapping(self, declared, expected):
        assert sql_io.kind_from_declared_type(declared) is expected
