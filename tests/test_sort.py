"""Sort-order tests: vectorized argsort vs Python sort, RowKey semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialization import Decoder, Encoder
from repro.errors import SchemaError
from repro.table.sort import ColumnSortOrientation, RecordOrder
from repro.table.table import Table


def reference_sort(rows, directions):
    """Python reference: missing first (ascending), per-column direction."""

    def key(row):
        parts = []
        for value, direction in zip(row, directions):
            rank = 0 if value is None else 1
            parts.append((rank, value, direction))
        return parts

    import functools

    def compare(a, b):
        for (ra, va, d), (rb, vb, _) in zip(key(a), key(b)):
            c = (ra > rb) - (ra < rb)
            if c == 0 and ra == 1:
                c = (va > vb) - (va < vb)
            if c:
                return c * d
        return 0

    return sorted(rows, key=functools.cmp_to_key(compare))


class TestRecordOrder:
    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            RecordOrder([])

    def test_no_repeated_columns(self):
        with pytest.raises(SchemaError):
            RecordOrder.of("a", "a")

    def test_of_with_flags(self):
        order = RecordOrder.of("a", "b", ascending=[True, False])
        assert order.directions == (1, -1)
        with pytest.raises(SchemaError):
            RecordOrder.of("a", "b", ascending=[True])

    def test_spec_and_equality(self):
        assert RecordOrder.of("a").spec() == "a:asc"
        assert RecordOrder.of("a") == RecordOrder.of("a")
        assert RecordOrder.of("a") != RecordOrder.of("a", ascending=False)

    def test_encode_decode(self):
        order = RecordOrder(
            [ColumnSortOrientation("x"), ColumnSortOrientation("y", False)]
        )
        enc = Encoder()
        order.encode(enc)
        assert RecordOrder.decode(Decoder(enc.to_bytes())) == order


class TestArgsort:
    def test_single_column_ascending(self, small_table):
        order = RecordOrder.of("x")
        rows = order.argsort(small_table)
        values = [small_table.column("x").value(int(r)) for r in rows]
        assert values == [None, 1, 1, 2, 2, 3, 4, 5]

    def test_descending_missing_last(self, small_table):
        order = RecordOrder.of("x", ascending=False)
        rows = order.argsort(small_table)
        values = [small_table.column("x").value(int(r)) for r in rows]
        assert values == [5, 4, 3, 2, 2, 1, 1, None]

    def test_string_column(self, small_table):
        order = RecordOrder.of("name")
        rows = order.argsort(small_table)
        values = [small_table.column("name").value(int(r)) for r in rows]
        assert values == [None, "alice", "alice", "alice", "bob", "bob", "carol", "dave"]

    def test_multi_column(self, small_table):
        order = RecordOrder.of("name", "x")
        rows = order.argsort(small_table)
        pairs = [
            (small_table.column("name").value(int(r)), small_table.column("x").value(int(r)))
            for r in rows
        ]
        alice = [p for p in pairs if p[0] == "alice"]
        assert alice == [("alice", 1), ("alice", 2), ("alice", 5)]

    def test_argsort_on_subset(self, small_table):
        order = RecordOrder.of("x")
        subset = np.array([0, 4, 5])
        rows = order.argsort(small_table, subset)
        values = [small_table.column("x").value(int(r)) for r in rows]
        assert values == [3, 4, 5]

    @given(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(-50, 50)),
                st.one_of(st.none(), st.integers(-5, 5)),
            ),
            min_size=1,
            max_size=40,
        ),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_argsort_matches_reference(self, data, asc_a, asc_b):
        table = Table.from_pydict(
            {"a": [r[0] for r in data], "b": [r[1] for r in data]}
        )
        order = RecordOrder.of("a", "b", ascending=[asc_a, asc_b])
        rows = order.argsort(table)
        got = [
            (table.column("a").value(int(r)), table.column("b").value(int(r)))
            for r in rows
        ]
        directions = [1 if asc_a else -1, 1 if asc_b else -1]
        assert got == reference_sort(got, directions)


class TestRowKey:
    def test_total_order_with_missing(self, small_table):
        order = RecordOrder.of("x")
        keys = [order.row_key(small_table, i) for i in range(small_table.universe_size)]
        missing_key = keys[3]
        assert all(missing_key < k for k in keys if k != missing_key)

    def test_descending_reverses(self, small_table):
        asc = RecordOrder.of("x")
        desc = RecordOrder.of("x", ascending=False)
        k1a, k2a = asc.row_key(small_table, 1), asc.row_key(small_table, 0)
        k1d, k2d = desc.row_key(small_table, 1), desc.row_key(small_table, 0)
        assert k1a < k2a
        assert k2d < k1d

    def test_equality_and_values(self, small_table):
        order = RecordOrder.of("x")
        assert order.row_key(small_table, 1) == order.row_key(small_table, 6)
        assert order.row_key(small_table, 3).values() == (None,)

    def test_key_from_values_consistent(self, small_table):
        order = RecordOrder.of("name", "x")
        from_row = order.row_key(small_table, 0)
        from_values = order.key_from_values(("bob", 3))
        assert from_row == from_values

    def test_sorted_keys_match_argsort(self, small_table):
        order = RecordOrder.of("name", "x", ascending=[True, False])
        rows = order.argsort(small_table)
        keys = [order.row_key(small_table, int(r)) for r in rows]
        assert all(not (b < a) for a, b in zip(keys, keys[1:]))


class TestReversedOrder:
    def test_reversed_flips_every_direction(self):
        order = RecordOrder.of("a", "b", ascending=[True, False])
        rev = order.reversed()
        assert rev.columns == ["a", "b"]
        assert rev.directions == (-1, 1)
        assert rev.reversed().directions == order.directions

    def test_reversed_key_comparison_flips(self):
        order = RecordOrder.of("a")
        rev = order.reversed()
        small = order.key_from_values((1,))
        large = order.key_from_values((2,))
        assert small < large
        assert rev.key_from_values((2,)) < rev.key_from_values((1,))
