"""The documentation conformance suite: ``docs/`` must match the code.

Every protocol surface is documented in ``docs/``, and every normative
claim in those documents is checked here against the real implementation
— frame examples round-trip through the actual codec, error-code tables
mirror the registries bidirectionally, the feature table matches
``FEATURES``, and the ``REPRO_*`` configuration matrix is diffed against
a grep of the source tree.  Changing the wire without changing the docs
(or vice versa) fails this suite.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.core.framing import encode_frame
from repro.engine.rpc import (
    TERMINAL_REPLY_KINDS,
    WIRE_ERROR_CODES,
    RpcReply,
    RpcRequest,
    encode_envelope,
    split_envelope,
)
from repro.engine.web import WebServer
from repro.gateway.protocol import (
    FEATURES,
    GATEWAY_ERROR_CODES,
    MIN_SUPPORTED,
    PROTOCOL_VERSION,
    protocol_features,
)

REPO = Path(__file__).resolve().parents[1]
DOCS = REPO / "docs"
PROTOCOL_MD = (DOCS / "PROTOCOL.md").read_text()
GATEWAY_MD = (DOCS / "GATEWAY_API.md").read_text()
CONFIG_MD = (DOCS / "CONFIG.md").read_text()


# ---------------------------------------------------------------------------
# Markdown parsing helpers
# ---------------------------------------------------------------------------
def conformance_block(text: str, name: str) -> str:
    """The fenced code block tagged ``<!-- conformance: name -->``."""
    pattern = (
        rf"<!-- conformance: {re.escape(name)} -->\s*\n\s*```[a-z]*\n(.*?)```"
    )
    match = re.search(pattern, text, re.DOTALL)
    assert match, f"no conformance block named {name!r}"
    # Strip the indentation fenced blocks pick up inside list items.
    lines = match.group(1).splitlines()
    indent = min(
        (len(l) - len(l.lstrip()) for l in lines if l.strip()), default=0
    )
    return "\n".join(l[indent:] for l in lines).strip()


def section(text: str, heading: str) -> str:
    """Everything under ``heading`` up to the next same-level heading."""
    lines = text.splitlines()
    level = heading.split()[0].count("#")
    out: list[str] = []
    active = False
    for line in lines:
        if line.strip() == heading:
            active = True
            continue
        if active and re.match(rf"#{{1,{level}}} ", line):
            break
        if active:
            out.append(line)
    assert out, f"heading {heading!r} not found or empty"
    return "\n".join(out)


def table_first_column(text: str) -> list[str]:
    """Backticked first-column entries of every markdown table row."""
    return re.findall(r"^\|\s*`([A-Za-z0-9_]+)`", text, re.MULTILINE)


# ---------------------------------------------------------------------------
# PROTOCOL.md: frames and envelopes round-trip through the codec
# ---------------------------------------------------------------------------
class TestWireExamples:
    def test_documented_frame_bytes_match_the_codec(self):
        payload = conformance_block(PROTOCOL_MD, "frame-payload")
        documented = bytes.fromhex(conformance_block(PROTOCOL_MD, "frame-hex"))
        assert encode_frame(payload.encode("utf-8")) == documented

    def test_frame_payload_is_a_canonical_request(self):
        payload = conformance_block(PROTOCOL_MD, "frame-payload")
        request = RpcRequest.from_json(payload)
        assert request.to_json() == payload

    def test_request_envelope_round_trips(self):
        documented = json.loads(conformance_block(PROTOCOL_MD, "request-envelope"))
        request = RpcRequest.from_json(json.dumps(documented))
        assert json.loads(request.to_json()) == documented

    def test_reply_envelope_round_trips(self):
        documented = json.loads(conformance_block(PROTOCOL_MD, "reply-envelope"))
        reply = RpcReply.from_json(json.dumps(documented))
        assert json.loads(reply.to_json()) == documented

    def test_binary_envelope_example(self):
        raw = bytes.fromhex(conformance_block(PROTOCOL_MD, "binary-envelope-hex"))
        header, attachment = split_envelope(raw)
        assert attachment == b"\x01\x02\x03"
        reply = RpcReply.from_json(header)
        assert (reply.request_id, reply.kind) == (7, "partial")
        assert encode_envelope(header, attachment) == raw
        framed = bytes.fromhex(
            conformance_block(PROTOCOL_MD, "binary-envelope-framed-hex")
        )
        assert encode_frame(raw) == framed

    def test_terminal_kinds(self):
        documented = set(conformance_block(PROTOCOL_MD, "terminal-kinds").split())
        assert documented == set(TERMINAL_REPLY_KINDS)

    def test_documented_methods_are_dispatchable(self):
        rows = table_first_column(section(PROTOCOL_MD, "## 3. Methods"))
        assert rows, "the method table is empty"
        dispatch = (WebServer._dispatch.__doc__ or "") + _source_of(
            WebServer._dispatch
        )
        for method in rows:
            assert f'method == "{method}"' in dispatch, (
                f"PROTOCOL.md documents method {method!r} but "
                "WebServer._dispatch has no branch for it"
            )


def _source_of(fn) -> str:
    import inspect

    return inspect.getsource(fn)


# ---------------------------------------------------------------------------
# Error-code registries: bidirectional cross-checks
# ---------------------------------------------------------------------------
class TestErrorCodeTables:
    def test_wire_codes_match_registry(self):
        documented = set(table_first_column(section(PROTOCOL_MD, "## 4. Error codes")))
        registry = set(WIRE_ERROR_CODES)
        assert documented - registry == set(), (
            "PROTOCOL.md documents codes the registry does not have"
        )
        assert registry - documented == set(), (
            "WIRE_ERROR_CODES has codes PROTOCOL.md does not document"
        )

    def test_gateway_codes_match_registry(self):
        documented = set(
            table_first_column(section(GATEWAY_MD, "## 7. Gateway error codes"))
        )
        registry = set(GATEWAY_ERROR_CODES)
        assert documented == registry, (
            f"doc-only: {documented - registry}, code-only: {registry - documented}"
        )

    def test_registries_do_not_overlap(self):
        # A code must mean one thing: the gateway table extends, never
        # shadows, the wire table.
        assert set(GATEWAY_ERROR_CODES) & set(WIRE_ERROR_CODES) == set()


# ---------------------------------------------------------------------------
# GATEWAY_API.md: versions and the feature table
# ---------------------------------------------------------------------------
class TestGatewayDoc:
    def test_version_numbers(self):
        versioning = section(GATEWAY_MD, "## 1. Protocol versioning")
        assert f"(**{PROTOCOL_VERSION}**)" in versioning
        assert f"(**{MIN_SUPPORTED}**)" in versioning

    def test_feature_table_matches_features(self):
        rows = re.findall(
            r"^\|\s*`([a-z0-9_]+)`\s*\|\s*(\d+)\s*\|",
            section(GATEWAY_MD, "## 1. Protocol versioning"),
            re.MULTILINE,
        )
        documented = {name: int(version) for name, version in rows}
        assert documented == FEATURES

    def test_server_hello_example(self):
        hello = json.loads(conformance_block(GATEWAY_MD, "server-hello"))
        assert hello["type"] == "hello"
        assert hello["protocolVersion"] == PROTOCOL_VERSION
        assert hello["minSupported"] == MIN_SUPPORTED
        assert hello["features"] == protocol_features()


# ---------------------------------------------------------------------------
# CONFIG.md: the flag matrix is diffed against a grep of the source tree
# ---------------------------------------------------------------------------
def flags_in_tree() -> set[str]:
    found: set[str] = set()
    for root in (REPO / "src", REPO / "benchmarks"):
        for path in root.rglob("*.py"):
            found |= set(re.findall(r"REPRO_[A-Z0-9_]+", path.read_text()))
    return found


class TestConfigMatrix:
    def test_every_flag_in_code_is_documented(self):
        documented = set(table_first_column(CONFIG_MD))
        undocumented = flags_in_tree() - documented
        assert undocumented == set(), (
            f"flags read by the code but missing from docs/CONFIG.md: "
            f"{sorted(undocumented)}"
        )

    def test_every_documented_flag_exists_in_code(self):
        documented = set(table_first_column(CONFIG_MD))
        stale = documented - flags_in_tree()
        assert stale == set(), (
            f"docs/CONFIG.md documents flags the code no longer reads: "
            f"{sorted(stale)}"
        )


# ---------------------------------------------------------------------------
# Link integrity: every relative link in README.md and docs/ resolves
# ---------------------------------------------------------------------------
def _slugify(heading: str) -> str:
    """GitHub-style heading anchor."""
    text = heading.strip().lstrip("#").strip().lower()
    text = re.sub(r"[`*]", "", text)
    text = re.sub(r"[^a-z0-9 _-]", "", text)
    return text.replace(" ", "-")


def _anchors(text: str) -> set[str]:
    return {
        _slugify(line)
        for line in text.splitlines()
        if re.match(r"#{1,6} ", line)
    }


def _relative_links(text: str) -> list[str]:
    links = re.findall(r"\[[^\]]*\]\(([^)\s]+)\)", text)
    return [
        l
        for l in links
        if not l.startswith(("http://", "https://", "mailto:"))
    ]


MARKDOWN_FILES = sorted(
    [REPO / "README.md", *DOCS.glob("*.md")], key=lambda p: p.name
)


class TestLinks:
    @pytest.mark.parametrize(
        "path", MARKDOWN_FILES, ids=[p.name for p in MARKDOWN_FILES]
    )
    def test_relative_links_resolve(self, path: Path):
        text = path.read_text()
        for link in _relative_links(text):
            target, _, anchor = link.partition("#")
            if target:
                resolved = (path.parent / target).resolve()
                assert resolved.exists(), f"{path.name}: broken link {link!r}"
            else:
                resolved = path
            if anchor and resolved.suffix == ".md":
                assert anchor in _anchors(resolved.read_text()), (
                    f"{path.name}: link {link!r} names a missing anchor"
                )


# ---------------------------------------------------------------------------
# The curl walkthrough names only routes the server actually serves
# ---------------------------------------------------------------------------
class TestEndpointTable:
    def test_documented_paths_exist_in_server(self):
        server_source = (
            REPO / "src" / "repro" / "gateway" / "server.py"
        ).read_text()
        table = section(GATEWAY_MD, "## 2. HTTP endpoints")
        paths = re.findall(r"`(?:GET|POST|DELETE) (/api/v1/[^`\s]+)`", table)
        assert len(paths) >= 13, "the endpoint table lost rows"
        for path in paths:
            # Route tails appear as literals in the dispatcher; dynamic
            # segments ({id}, {name}) and $views are matched structurally.
            tail = path.removeprefix("/api/v1/").split("/")[0]
            if tail:
                assert f'"{tail}"' in server_source or f"'{tail}'" in server_source, (
                    f"endpoint table documents {path} but the server "
                    f"never routes {tail!r}"
                )
