"""Terminal spreadsheet (repro.cli) tests: every command, end to end."""

from __future__ import annotations

import io

import pytest

from repro.cli import Session, source_for_path
from repro.engine.cluster import Cluster
from repro.errors import HillviewError
from repro.spreadsheet import Spreadsheet
from repro.storage.loader import CsvSource, JsonlSource, SqlSource, SyslogSource
from repro.storage.sql_io import write_sql
from repro.table.table import Table


@pytest.fixture
def session(flights):
    cluster = Cluster(num_workers=2)
    from repro.storage.loader import TableSource

    dataset = cluster.load(TableSource([flights], shards_per_table=8))
    out = io.StringIO()
    return Session(Spreadsheet(dataset, seed=7), out=out), out


def run(session_pair, *lines: str) -> str:
    session, out = session_pair
    session.run(lines)
    return out.getvalue()


class TestCommands:
    def test_cols_lists_schema(self, session):
        output = run(session, "cols")
        assert "DepDelay: double" in output
        assert "Airline: category" in output

    def test_rows(self, session):
        output = run(session, "rows")
        assert "60,000 rows" in output

    def test_view_next_prev(self, session):
        output = run(session, "view Distance", "next", "prev")
        assert output.count("Distance") >= 3
        assert "count" in output

    def test_scroll(self, session):
        output = run(session, "view DepDelay", "scroll 0.5")
        assert "scrolled to ~" in output

    def test_find(self, session):
        output = run(session, "find Origin SFO")
        assert "matches; showing the first" in output

    def test_find_no_match(self, session):
        output = run(session, "find Origin ZZZZ")
        assert "no match" in output

    def test_hist(self, session):
        output = run(session, "hist Distance")
        assert "#" in output  # histogram bars

    def test_stack_and_heat(self, session):
        output = run(session, "stack DepDelay Airline", "heat DepDelay ArrDelay")
        assert "stacked histogram" in output

    def test_trellis(self, session):
        output = run(session, "trellis Airline DepDelay")
        assert "--" in output  # pane separators

    def test_top(self, session):
        output = run(session, "top Origin 5")
        assert "ATL" in output
        assert "%" in output

    def test_distinct_and_summary(self, session):
        output = run(session, "distinct Origin", "summary DepDelay")
        assert "distinct values" in output
        assert "mean" in output

    def test_filter_then_reset(self, session):
        output = run(session, "filter DepDelay > 60", "rows", "reset", "rows")
        assert "filtered:" in output
        assert "back to the full dataset" in output
        assert output.count("60,000 rows") == 1  # only after reset

    def test_derive(self, session):
        output = run(session, "derive gain 'DepDelay - ArrDelay'", "summary gain")
        assert "derived 'gain'" in output

    def test_log(self, session):
        output = run(session, "rows", "hist Distance", "log")
        assert "histogram" in output

    def test_help(self, session):
        output = run(session, "help")
        assert "view <col>" in output

    def test_quit_stops_processing(self, session):
        output = run(session, "rows", "quit", "cols")
        assert "DepDelay" not in output  # cols never ran

    def test_unknown_command(self, session):
        output = run(session, "teleport")
        assert "unknown command" in output

    def test_unknown_column_is_reported(self, session):
        output = run(session, "hist Nonexistent")
        assert "no column" in output

    def test_bad_expression_is_reported(self, session):
        output = run(session, "derive evil 'exec(1)'")
        assert "error" in output

    def test_empty_lines_ignored(self, session):
        output = run(session, "", "   ", "rows")
        assert "60,000 rows" in output


class TestSourceSelection:
    def test_csv(self):
        assert isinstance(source_for_path("data.csv"), CsvSource)

    def test_jsonl(self):
        assert isinstance(source_for_path("data.jsonl"), JsonlSource)

    def test_syslog(self):
        assert isinstance(source_for_path("server.log"), SyslogSource)

    def test_sqlite_requires_table(self):
        with pytest.raises(HillviewError, match="--sql-table"):
            source_for_path("data.db")

    def test_sqlite_with_table(self, tmp_path):
        path = str(tmp_path / "t.db")
        write_sql(path, "events", Table.from_pydict({"n": [1, 2, 3]}))
        source = source_for_path(path, sql_table="events")
        assert isinstance(source, SqlSource)
        assert sum(t.num_rows for t in source.load()) == 3


class TestMainEntry:
    def test_scripted_run(self, capsys):
        from repro.cli import main

        code = main(
            ["--demo-flights", "5000", "--workers", "1",
             "--commands", "rows; top Airline 3; quit"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "5,000 rows" in output
