"""The chaos runner: SIGKILL real worker processes mid-sketch (§5.8).

Hillview's correctness story is that *any* soft state can disappear at any
time — a worker process dying mid-query included — and the streamed result
is still exact, because lineage replays from the redo log and cumulative
partials let the root simply replace a revived worker's contribution.
This runner makes that claim executable:

1. spawn a :class:`~repro.engine.remote.ProcessCluster` (real
   subprocesses speaking the uvarint-framed JSON worker protocol);
2. start a sketch, slowed per shard so the query is genuinely in flight;
3. SIGKILL chosen workers after the first streamed partial;
4. drain the stream to completion and compare the final summary
   byte-for-byte against a single-process :class:`LocalDataSet` run over
   the same data.
"""

from __future__ import annotations

import signal
from dataclasses import dataclass, field

from repro.data.flights import FlightsSource
from repro.engine.local import LocalDataSet
from repro.engine.remote import ProcessCluster
from repro.table.table import Table


@dataclass
class ChaosOutcome:
    """What one chaos run produced, ready for assertions."""

    final: object
    reference: object
    partials: int
    killed_pids: list[int] = field(default_factory=list)
    respawned: bool = False

    @property
    def converged(self) -> bool:
        """Final streamed summary is byte-identical to the reference."""
        return (
            self.final is not None
            and self.final.to_bytes() == self.reference.to_bytes()
        )


class ChaosRunner:
    """Spawns a ProcessCluster over synthetic flights and kills workers.

    Use as a context manager; ``dataset`` is the cluster-resident flights
    dataset and ``reference_table`` the same rows as one local table.
    """

    def __init__(
        self,
        rows: int = 24_000,
        partitions: int = 12,
        num_workers: int = 3,
        cores_per_worker: "int | tuple[int, ...]" = 2,
        seed: int = 7,
        per_shard_seconds: float = 0.08,
        aggregation_interval: float = 0.02,
    ):
        self.source = FlightsSource(rows, partitions=partitions, seed=seed)
        self.num_workers = num_workers
        self.cores_per_worker = cores_per_worker
        self.per_shard_seconds = per_shard_seconds
        self.aggregation_interval = aggregation_interval
        self.cluster: ProcessCluster | None = None
        self.dataset = None
        self.reference_table: Table | None = None

    def __enter__(self) -> "ChaosRunner":
        self.cluster = ProcessCluster(
            num_workers=self.num_workers,
            cores_per_worker=self.cores_per_worker,
            aggregation_interval=self.aggregation_interval,
        )
        self.dataset = self.cluster.load(self.source)
        self.reference_table = Table.concat(self.source.load())
        return self

    def __exit__(self, *exc_info) -> None:
        if self.cluster is not None:
            self.cluster.close()

    # -- building blocks -------------------------------------------------
    def reference(self, sketch):
        """The single-process ground truth for ``sketch`` on the same rows."""
        return LocalDataSet(self.reference_table).sketch(sketch)

    def slowed(self, sketch):
        """Wrap a sketch so each micropartition costs real wall-clock time,
        keeping the query in flight long enough to be killed mid-stream."""
        from repro.service.slow import SlowdownSketch

        return SlowdownSketch(sketch, per_shard_seconds=self.per_shard_seconds)

    # -- the chaos experiment --------------------------------------------
    def run_with_kill(
        self,
        sketch,
        kill_workers: tuple[int, ...] = (0,),
        kill_after_partials: int = 1,
        sig: int = signal.SIGKILL,
    ) -> ChaosOutcome:
        """Stream ``sketch`` (slowed), SIGKILL workers mid-stream, drain.

        The kill fires after ``kill_after_partials`` streamed partials, when
        the victims are provably mid-computation; the run then continues to
        completion through respawn + lineage replay.
        """
        assert self.cluster is not None and self.dataset is not None
        pids_before = self.cluster.worker_pids()
        slow_sketch = self.slowed(sketch)
        partials = 0
        killed: list[int] = []
        final = None
        for partial in self.dataset.sketch_stream(slow_sketch):
            partials += 1
            final = partial.value
            if partials == kill_after_partials and not killed:
                for index in kill_workers:
                    self.cluster.kill_worker_process(index, sig)
                    killed.append(pids_before[index])
        pids_after = self.cluster.worker_pids()
        respawned = all(
            pids_after[i] is not None and pids_after[i] != pids_before[i]
            for i in kill_workers
        )
        return ChaosOutcome(
            final=final,
            reference=self.reference(sketch),
            partials=partials,
            killed_pids=killed,
            respawned=respawned,
        )
