"""Chaos/property harness for the distributed engine (tier-2 tests).

The harness spawns *real* worker processes behind a root, injects the
paper's fault model (SIGKILL mid-sketch, soft-state loss), and asserts the
root converges to the same final summary a single-process run computes on
the same data (§5.7–5.8).
"""

from .chaos import ChaosOutcome, ChaosRunner

__all__ = ["ChaosOutcome", "ChaosRunner"]
