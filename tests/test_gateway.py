"""Gateway tests: negotiation, HTTP surface, connector reads, WS streams.

The headline assertion is transport equivalence: for every wire-level
sketch type, the payload delivered over the WebSocket gateway is
**byte-identical** to the one the TCP :class:`ServiceClient` receives
from the same cluster — the gateway adds transport, never semantics.
"""

from __future__ import annotations

import json
import time

import pytest

import repro.service.slow  # noqa: F401 — registers the "slow" sketch type
from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.gateway import (
    FEATURES,
    MIN_SUPPORTED,
    PROTOCOL_VERSION,
    GatewayClient,
    GatewayServer,
    GatewayWebSocket,
    NegotiationError,
    negotiate,
    protocol_payload,
)
from repro.gateway.client import GatewayError
from repro.gateway.websocket import ConnectionClosed, OP_TEXT, encode_frame
from repro.service import (
    ConnectionDirector,
    ServiceClient,
    ServiceServer,
    probe_gateway,
)

from tests.test_engine_equivalence import SKETCH_SPECS

ROWS = 2_000
SOURCE = FlightsSource(ROWS, partitions=8, seed=5)

HIST = {
    "type": "histogram",
    "column": "Distance",
    "buckets": {"type": "double", "min": 0, "max": 3000, "count": 12},
}


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def service():
    server = ServiceServer(
        Cluster(num_workers=2, cores_per_worker=2, aggregation_interval=0.02),
        default_source=SOURCE,
        idle_ttl_seconds=900.0,
    )
    server.start_background()
    yield server
    server.close()


@pytest.fixture(scope="module")
def gateway(service):
    gw = GatewayServer(service)
    gw.start_background()
    yield gw
    gw.close()


@pytest.fixture
def api(gateway):
    with GatewayClient(*gateway.address) as client:
        yield client


def open_ws(gateway, **kwargs) -> GatewayWebSocket:
    return GatewayWebSocket(*gateway.address, **kwargs)


# ---------------------------------------------------------------------------
# Version negotiation (unit matrix)
# ---------------------------------------------------------------------------
class TestNegotiation:
    def test_current_client_gets_everything(self):
        pinned = negotiate(PROTOCOL_VERSION)
        assert pinned.version == PROTOCOL_VERSION
        assert all(pinned.features.values())
        assert set(pinned.features) == set(FEATURES)

    def test_old_client_downgrades_new_features(self):
        pinned = negotiate(1)
        assert pinned.version == 1
        assert pinned.enabled("cache_telemetry")
        assert not pinned.enabled("ws_resume")
        assert not pinned.enabled("ws_heartbeat")

    def test_newer_client_is_pinned_to_server_version(self):
        pinned = negotiate(PROTOCOL_VERSION + 97)
        assert pinned.version == PROTOCOL_VERSION
        assert all(pinned.features.values())

    def test_below_min_supported_is_rejected(self):
        with pytest.raises(NegotiationError) as info:
            negotiate(MIN_SUPPORTED - 1)
        assert info.value.code == "unsupported_protocol"

    def test_non_integer_version_is_rejected(self):
        with pytest.raises(NegotiationError):
            negotiate("latest")  # type: ignore[arg-type]

    def test_client_can_switch_a_feature_off(self):
        pinned = negotiate(PROTOCOL_VERSION, {"ws_heartbeat": False})
        assert not pinned.enabled("ws_heartbeat")
        assert pinned.enabled("ws_resume")

    def test_client_cannot_switch_on_an_unavailable_feature(self):
        pinned = negotiate(1, {"ws_resume": True})
        assert not pinned.enabled("ws_resume")

    def test_payload_announces_current_version(self):
        payload = protocol_payload()
        assert payload["protocolVersion"] == PROTOCOL_VERSION
        assert payload["minSupported"] == MIN_SUPPORTED
        assert all(payload["features"].values())


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------
class TestHttpSurface:
    def test_protocol_endpoint(self, api):
        assert api.protocol() == protocol_payload()

    def test_health_is_gateway_aware(self, api):
        health = api.health()
        assert health["gateway"] is True
        assert health["status"] == "ok"
        assert health["protocolVersion"] == PROTOCOL_VERSION
        assert health["workers"] == 2

    def test_session_create_resume_close(self, api):
        created = api.create_session()
        assert created["resumed"] is False
        session_id = created["session"]
        again = api.create_session(session_id)
        assert again == {"session": session_id, "resumed": True}
        assert api.close_session(session_id) is True
        assert api.close_session(session_id) is False

    def test_unknown_path_is_a_structured_404(self, api):
        with pytest.raises(GatewayError) as info:
            api.get("/api/v1/nope")
        assert info.value.status == 404
        assert info.value.code == "not_found"

    def test_draining_refuses_new_sessions(self, api, service):
        api.drain()
        try:
            with pytest.raises(GatewayError) as info:
                api.create_session()
            assert info.value.status == 503
            assert info.value.code == "draining"
        finally:
            api.undrain()
        assert service.draining is False
        assert api.create_session()["session"]

    def test_stats_and_prometheus_metrics(self, api):
        stats = api.stats()
        assert "scheduler" in stats
        text = api.metrics(fmt="prometheus")
        assert isinstance(text, str) and "# TYPE" in text

    def test_metrics_include_gateway_series(self, api):
        registry = api.metrics()["registry"]
        assert any(name.startswith("gateway.") for name in registry)


# ---------------------------------------------------------------------------
# The OData-style connector
# ---------------------------------------------------------------------------
class TestConnector:
    @pytest.fixture(scope="class", autouse=True)
    def published(self, gateway):
        with GatewayClient(*gateway.address) as client:
            result = client.publish("flights", {})
            yield result
            client.unpublish("flights")

    def test_publish_reports_row_count(self, published):
        assert published == {"dataset": "flights", "rows": ROWS}

    def test_datasets_listing(self, api):
        assert "flights" in api.datasets()

    def test_metadata_document(self, api):
        meta = api.metadata("flights")
        assert meta["dataset"] == "flights"
        assert meta["rows"] == ROWS
        names = [c["name"] for c in meta["columns"]]
        assert "Distance" in names and "Origin" in names

    def test_rows_paging_walks_distinct_rows(self, api):
        first = api.rows("flights", top=5)
        assert first["top"] == 5 and first["skip"] == 0
        assert len(first["rows"]) == 5
        assert len(first["counts"]) == 5
        # Every column appears: the default order is the full schema.
        assert len(first["columns"]) == len(api.metadata("flights")["columns"])
        assert first["nextSkip"] == 5
        second = api.rows("flights", top=5, skip=first["nextSkip"])
        assert second["rows"] != first["rows"]
        assert second["skip"] == 5

    def test_rows_orderby_descending(self, api):
        page = api.rows("flights", top=10, orderby="Distance desc")
        assert page["columns"] == ["Distance"]
        distances = [row[0] for row in page["rows"]]
        assert distances == sorted(distances, reverse=True)

    def test_rows_rejects_unknown_column(self, api):
        with pytest.raises(GatewayError) as info:
            api.rows("flights", orderby="Nope")
        assert info.value.status == 400

    def test_rows_rejects_oversized_window(self, api):
        with pytest.raises(GatewayError):
            api.rows("flights", top=1000, skip=999_999)

    def test_sample_is_bounded_and_seeded(self, api):
        view = api.sample("flights", count=50, seed=7)
        assert view["requested"] == 50
        assert len(view["rows"]) == 50
        assert view["scanned"] == ROWS
        assert api.sample("flights", count=50, seed=7) == view

    def test_unpublished_dataset_is_404(self, api):
        with pytest.raises(GatewayError) as info:
            api.rows("ghost")
        assert info.value.status == 404
        assert info.value.code == "not_found"

    def test_connector_survives_session_sweep(self, api, service):
        before = api.rows("flights", top=3)
        # Kill the connector's backing session outright: the published
        # spec (not the handle) is durable, so the next read re-resolves.
        service.sessions.close("gateway-connector")
        after = api.rows("flights", top=3)
        assert canonical(after) == canonical(before)


# ---------------------------------------------------------------------------
# WebSocket transport equivalence: byte-identical payloads per sketch type
# ---------------------------------------------------------------------------
class TestTransportEquivalence:
    @pytest.fixture(scope="class")
    def tcp_results(self, service):
        with ServiceClient(*service.address) as tcp:
            handle = tcp.load({})
            yield {
                kind: tcp.sketch(handle, spec).result().payload
                for kind, spec in SKETCH_SPECS.items()
            }

    @pytest.fixture(scope="class")
    def ws_results(self, gateway):
        ws = open_ws(gateway)
        ws.connect()
        ws.submit(0, "load", args={"source": {}})
        handle = ws.result(0)["payload"]["handle"]
        results = {}
        for index, (kind, spec) in enumerate(sorted(SKETCH_SPECS.items())):
            # One request per stream: newest-query-wins would supersede
            # concurrent sketches from the same session.
            ws.submit(index + 1, "sketch", handle, {"sketch": spec})
            results[kind] = ws.result(index + 1)["payload"]
        ws.close()
        return results

    @pytest.mark.parametrize("kind", sorted(SKETCH_SPECS))
    def test_ws_payload_is_byte_identical_to_tcp(
        self, kind, tcp_results, ws_results
    ):
        assert canonical(ws_results[kind]) == canonical(tcp_results[kind])


# ---------------------------------------------------------------------------
# WebSocket handshake end to end
# ---------------------------------------------------------------------------
class TestWsHandshake:
    def test_server_hello_comes_first(self, gateway):
        ws = open_ws(gateway)
        welcome = ws.connect()
        assert ws.server_hello == {"type": "hello", **protocol_payload()}
        assert welcome["type"] == "welcome"
        assert welcome["protocolVersion"] == PROTOCOL_VERSION
        assert welcome["session"]
        ws.close()

    def test_mixed_version_fleet_serves_old_clients(self, gateway):
        """A v1 client on a v2 server completes with features downgraded."""
        ws = open_ws(gateway)
        welcome = ws.connect(protocol_version=1)
        assert welcome["protocolVersion"] == 1
        assert welcome["features"]["cache_telemetry"] is True
        assert welcome["features"]["ws_resume"] is False
        assert welcome["features"]["ws_heartbeat"] is False
        # v1 welcomes carry no resume bookkeeping.
        assert "resumed" not in welcome
        ws.submit(1, "ping")
        reply = ws.result(1)
        assert reply["kind"] == "ack"
        assert reply["payload"] == {"pong": True}
        # v1 streams carry no seq numbers (ws_resume is a v2 feature).
        assert "seq" not in reply
        ws.close()

    def test_too_old_client_is_refused(self, gateway):
        ws = open_ws(gateway)
        with pytest.raises(GatewayError) as info:
            ws.connect(protocol_version=MIN_SUPPORTED - 1)
        assert info.value.code == "unsupported_protocol"
        ws.close()

    def test_future_client_is_pinned_down(self, gateway):
        ws = open_ws(gateway)
        welcome = ws.connect(protocol_version=PROTOCOL_VERSION + 5)
        assert welcome["protocolVersion"] == PROTOCOL_VERSION
        ws.close()

    def test_client_feature_opt_out(self, gateway):
        ws = open_ws(gateway)
        welcome = ws.connect(features={"ws_heartbeat": False})
        assert welcome["features"]["ws_heartbeat"] is False
        assert welcome["features"]["ws_resume"] is True
        ws.close()

    def test_malformed_hello_is_bad_handshake(self, gateway):
        ws = open_ws(gateway)
        ws.recv(None)  # server hello
        ws._send_json({"type": "request", "requestId": 1, "method": "ping"})
        answer = ws.recv(None)
        assert answer["type"] == "error"
        assert answer["code"] == "bad_handshake"
        ws.close()

    def test_unmasked_client_frame_closes_the_connection(self, gateway):
        ws = open_ws(gateway)
        ws.recv(None)
        ws._sock.sendall(
            encode_frame(OP_TEXT, b'{"type": "hello"}', mask=False)
        )
        with pytest.raises((ConnectionClosed, ConnectionError, OSError)):
            ws.recv(None)
        ws.close()

    def test_ws_session_roams_from_http(self, gateway, api):
        session_id = api.create_session()["session"]
        ws = open_ws(gateway)
        welcome = ws.connect(session=session_id)
        assert welcome["session"] == session_id
        ws.close()
        api.close_session(session_id)


# ---------------------------------------------------------------------------
# Streams: progressive replies, cancel, resume, heartbeats
# ---------------------------------------------------------------------------
class TestWsStreams:
    def test_sketch_streams_progressive_partials(self, gateway):
        ws = open_ws(gateway)
        ws.connect()
        ws.submit(1, "load", args={"source": {}})
        handle = ws.result(1)["payload"]["handle"]
        ws.submit(2, "sketch", handle, {"sketch": HIST})
        replies = list(ws.stream(2))
        kinds = [r["kind"] for r in replies]
        assert kinds[-1] == "complete"
        assert kinds.count("complete") == 1
        assert all(k == "partial" for k in kinds[:-1])
        seqs = [r["seq"] for r in replies]
        assert seqs == sorted(seqs) and seqs[0] == 1
        progress = [r["progress"] for r in replies]
        assert progress == sorted(progress) and progress[-1] == 1.0
        assert replies[-1]["cache"] is not None  # cache_telemetry feature
        ws.close()

    def test_cancel_terminates_with_cancelled(self, gateway):
        ws = open_ws(gateway)
        ws.connect()
        ws.submit(1, "load", args={"source": {}})
        handle = ws.result(1)["payload"]["handle"]
        slow = {"type": "slow", "perShardSeconds": 0.2, "inner": HIST}
        ws.submit(2, "sketch", handle, {"sketch": slow})
        ws.cancel(2)
        seen = list(ws.stream(2))
        # The ack is its own message type; the stream still ends with
        # exactly one terminal of its own.
        acks = [m for m in seen if m.get("type") == "cancel_ack"]
        assert len(acks) == 1 and acks[0]["cancelled"] is True
        assert seen[-1]["kind"] in ("cancelled", "complete")
        ws.close()

    def test_resume_replays_the_cumulative_tail(self, gateway):
        ws = open_ws(gateway)
        ws.connect()
        session_id = ws.session
        ws.submit(1, "load", args={"source": {}})
        handle = ws.result(1)["payload"]["handle"]
        ws.submit(2, "sketch", handle, {"sketch": HIST})
        original = list(ws.stream(2))
        ws.close()

        again = open_ws(gateway)
        welcome = again.connect(session=session_id, resume={"2": 0})
        assert welcome["resumed"] == [2]
        assert welcome["restarted"] == [] and welcome["expired"] == []
        replayed = list(again.stream(2))
        # The ledger holds the latest partial + the terminal: cumulative
        # partials make that replay lossless.
        assert [r["kind"] for r in replayed][-1] == "complete"
        assert canonical(replayed[-1]["payload"]) == canonical(
            original[-1]["payload"]
        )
        assert replayed[-1]["seq"] == original[-1]["seq"]
        again.close()

    def test_resume_skips_already_seen_seqs(self, gateway):
        ws = open_ws(gateway)
        ws.connect()
        session_id = ws.session
        ws.submit(1, "load", args={"source": {}})
        handle = ws.result(1)["payload"]["handle"]
        ws.submit(2, "sketch", handle, {"sketch": HIST})
        last_seq = ws.result(2)["seq"]
        ws.close()

        again = open_ws(gateway)
        again.connect(session=session_id, resume={"2": last_seq})
        again.submit(9, "ping")
        assert again.result(9)["kind"] == "ack"
        # Nothing with seq <= last_seq was replayed.
        assert again._inbox.get(2) is None
        again.close()

    def test_unknown_stream_resume_is_expired(self, gateway):
        ws = open_ws(gateway)
        welcome = ws.connect(resume={"777": 3})
        assert welcome["expired"] == [777]
        terminal = ws.result(777)
        assert terminal["kind"] == "error"
        assert terminal["code"] == "stream_expired"
        ws.close()

    def test_completed_stream_resumes_even_after_grace(self, service):
        """A stream that finished before the disconnect never expires:
        the ledger keeps its terminal for replay indefinitely."""
        gw = GatewayServer(service, resume_grace_seconds=0.05)
        gw.start_background()
        try:
            ws = GatewayWebSocket(*gw.address)
            ws.connect()
            session_id = ws.session
            ws.submit(1, "load", args={"source": {}})
            handle = ws.result(1)["payload"]["handle"]
            ws.submit(2, "sketch", handle, {"sketch": HIST})
            original = ws.result(2)
            ws.close()
            time.sleep(0.3)

            again = GatewayWebSocket(*gw.address)
            welcome = again.connect(session=session_id, resume={"2": 0})
            assert welcome["resumed"] == [2]
            replayed = list(again.stream(2))
            assert canonical(replayed[-1]["payload"]) == canonical(
                original["payload"]
            )
            again.close()
        finally:
            gw.close()

    def test_restart_after_grace_expiry(self, service):
        """A stream live at disconnect expires after the grace period;
        a late resume restarts the stored request from soft state."""
        gw = GatewayServer(service, resume_grace_seconds=0.05)
        gw.start_background()
        try:
            ws = GatewayWebSocket(*gw.address)
            ws.connect()
            session_id = ws.session
            ws.submit(1, "load", args={"source": {}})
            handle = ws.result(1)["payload"]["handle"]
            slow = {"type": "slow", "perShardSeconds": 0.1, "inner": HIST}
            ws.submit(2, "sketch", handle, {"sketch": slow})
            ws.close()  # drop mid-flight
            time.sleep(0.5)  # grace elapses; the live stream expires

            again = GatewayWebSocket(*gw.address)
            welcome = again.connect(session=session_id, resume={"2": 0})
            assert welcome["restarted"] == [2]
            replayed = list(again.stream(2))
            terminal = replayed[-1]
            assert terminal["kind"] == "complete"
            # seq continued monotonically across the restart (the expired
            # run already consumed seq 1+), so the client's "ignore
            # seq <= last seen" dedupe rule stays safe.
            assert replayed[0]["seq"] >= 2
            # The restarted run is the same computation: byte-identical
            # to a fresh submission of the same spec.
            again.submit(3, "sketch", handle, {"sketch": slow})
            fresh = again.result(3)
            assert canonical(terminal["payload"]) == canonical(
                fresh["payload"]
            )
            again.close()
        finally:
            gw.close()

    def test_heartbeats_arrive_when_negotiated(self, service):
        gw = GatewayServer(service, heartbeat_interval_seconds=0.05)
        gw.start_background()
        try:
            ws = GatewayWebSocket(*gw.address)
            ws.connect()
            deadline = time.monotonic() + 5.0
            message = ws.recv(None)
            while message.get("type") != "heartbeat":
                assert time.monotonic() < deadline
                message = ws.recv(None)
            assert message["n"] >= 1
            ws.close()
        finally:
            gw.close()

    def test_application_ping(self, gateway):
        ws = open_ws(gateway)
        ws.connect()
        assert ws.ping() == {"type": "pong"}
        ws.close()

    def test_unknown_message_type_is_bad_request(self, gateway):
        ws = open_ws(gateway)
        ws.connect()
        ws._send_json({"type": "subscribe"})
        answer = ws.recv(None)
        assert answer["type"] == "error"
        assert answer["code"] == "bad_request"
        ws.close()


# ---------------------------------------------------------------------------
# Trace-context ingestion from HTTP headers
# ---------------------------------------------------------------------------
class TestTracing:
    def test_traceparent_header_joins_the_trace(
        self, gateway, api, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TRACE", "1")
        trace_id = "ab" * 16
        header = f"00-{trace_id}-{'cd' * 8}-01"
        api.publish("traced", {})
        try:
            api.rows("traced", top=3, headers={"traceparent": header})
            spans = api.traces(trace_id)["spans"]
            assert spans, "no spans recorded for the propagated trace id"
            assert all(s["traceId"] == trace_id for s in spans)
        finally:
            api.unpublish("traced")


# ---------------------------------------------------------------------------
# Director integration: gateway-aware routing and health
# ---------------------------------------------------------------------------
class TestDirector:
    def test_probe_gateway_sees_a_live_gateway(self, gateway):
        assert probe_gateway(gateway.address) is True

    def test_probe_gateway_rejects_a_dead_port(self):
        assert probe_gateway(("127.0.0.1", 1), timeout=0.5) is False

    def test_register_gateway_requires_a_known_root(self, service):
        director = ConnectionDirector([service.address])
        with pytest.raises(ValueError):
            director.register_gateway(("10.0.0.1", 9999), ("10.0.0.1", 80))

    def test_gateway_for_without_registration_raises(self, service):
        director = ConnectionDirector([service.address])
        with pytest.raises(ConnectionError):
            director.gateway_for()

    def test_gateway_for_routes_through_root_affinity(
        self, service, gateway
    ):
        director = ConnectionDirector([service.address])
        director.register_gateway(service.address, gateway.address)
        assert director.gateway_for() == tuple(gateway.address)
        # A pinned session keeps landing on the same root's gateway.
        client = director.connect()
        try:
            session = client.session_id
        finally:
            client.close()
        assert director.gateway_for(session) == tuple(gateway.address)

    def test_healthy_root_with_live_gateway_stays_in_rotation(
        self, service, gateway
    ):
        director = ConnectionDirector([service.address], max_ping_failures=1)
        director.register_gateway(service.address, gateway.address)
        results = director.check_health()
        assert results[service.address] is True
        assert director.ejected() == []

    def test_dead_gateway_ejects_its_root(self, service):
        # The root's TCP transport is alive, but its registered gateway
        # is a closed port: the stricter dual probe must eject the root.
        director = ConnectionDirector([service.address], max_ping_failures=2)
        director.register_gateway(service.address, ("127.0.0.1", 1))
        assert director.check_health()[service.address] is False
        assert director.ejected() == []  # one strike is not enough
        assert director.check_health()[service.address] is False
        assert director.ejected() == [service.address]
        # Re-registering a live gateway heals the root on the next pass.
        gw = GatewayServer(service)
        gw.start_background()
        try:
            director.register_gateway(service.address, gw.address)
            assert director.check_health()[service.address] is True
            assert director.ejected() == []
        finally:
            gw.close()


# ---------------------------------------------------------------------------
# `repro gateway`: the CLI front door end to end
# ---------------------------------------------------------------------------
class TestGatewayCli:
    def test_gateway_subcommand_serves_http(self):
        import os
        import re
        import subprocess
        import sys
        import urllib.request

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo, "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "gateway",
                "--demo-flights", "300", "--workers", "1",
                "--port", "0", "--service-port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            assert match, f"no address in the startup banner: {banner!r}"
            host, port = match.group(1), int(match.group(2))
            with urllib.request.urlopen(
                f"http://{host}:{port}/api/v1/health", timeout=10
            ) as response:
                health = json.loads(response.read())
            assert health["gateway"] is True
            assert health["protocolVersion"] == PROTOCOL_VERSION
            with urllib.request.urlopen(
                f"http://{host}:{port}/api/v1/protocol", timeout=10
            ) as response:
                protocol = json.loads(response.read())
            assert protocol == protocol_payload()
        finally:
            process.terminate()
            process.wait(timeout=10)
