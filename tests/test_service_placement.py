"""Shard-placement agreement: the multi-root fleet's slicing contract."""

from __future__ import annotations

import pytest

from repro.engine.remote import WorkerServer, _RootLink
from repro.engine.rpc import RpcRequest
from repro.service.placement import (
    PlacementError,
    ShardPlacement,
    agree_placement,
    canonical_order,
    parse_fleet_spec,
)

A, B, C = ("hosta", 9301), ("hostb", 9301), ("hostc", 9301)


class TestAgreement:
    def test_fresh_fleet_gets_canonical_assignment(self):
        """Unplaced workers are assigned by sorted address, so two roots
        listing the fleet in different orders mint identical placements."""
        forward = agree_placement([A, B, C], [None, None, None])
        shuffled = agree_placement([C, A, B], [None, None, None])
        # position -> index; resolve back to address -> index maps.
        by_address_fwd = {addr: idx for addr, idx in zip([A, B, C], forward)}
        by_address_shf = {addr: idx for addr, idx in zip([C, A, B], shuffled)}
        assert by_address_fwd == by_address_shf == {A: 0, B: 1, C: 2}

    def test_placed_fleet_is_adopted_verbatim(self):
        reported = [ShardPlacement(2, 3), ShardPlacement(0, 3), ShardPlacement(1, 3)]
        assert agree_placement([A, B, C], reported) == [2, 0, 1]

    def test_partially_placed_fleet_rejected(self):
        reported = [ShardPlacement(0, 3), None, ShardPlacement(1, 3)]
        with pytest.raises(PlacementError, match="partially placed"):
            agree_placement([A, B, C], reported)

    def test_wrong_fleet_size_rejected(self):
        """A fleet placed as 3 slices cannot be attached as 2 workers —
        that address list describes a different fleet."""
        reported = [ShardPlacement(0, 3), ShardPlacement(1, 3)]
        with pytest.raises(PlacementError, match="does not match"):
            agree_placement([A, B], reported)

    def test_duplicate_indices_rejected(self):
        reported = [ShardPlacement(0, 2), ShardPlacement(0, 2)]
        with pytest.raises(PlacementError, match="permutation"):
            agree_placement([A, B], reported)

    def test_canonical_order_is_a_permutation(self):
        addresses = [("h", p) for p in (9, 3, 7, 1)]
        assignment = canonical_order(addresses)
        assert sorted(assignment) == [0, 1, 2, 3]
        # Lowest port -> index 0.
        assert assignment[3] == 0 and assignment[0] == 3


class TestFleetSpec:
    def test_inline_spec(self):
        assert parse_fleet_spec("hosta:1,hostb:2") == [
            ("hosta", 1),
            ("hostb", 2),
        ]

    def test_port_only_defaults_to_localhost(self):
        assert parse_fleet_spec(":9301") == [("127.0.0.1", 9301)]

    def test_file_spec_with_comments_and_announcements(self, tmp_path):
        """A fleet file can be built by redirecting `repro worker --listen`
        stdout: JSON announcement lines parse alongside plain host:port."""
        fleet = tmp_path / "fleet.txt"
        fleet.write_text(
            "# the fleet\n"
            "hosta:9301\n"
            "\n"
            '{"worker": "daemon-1", "port": 9302}\n'
        )
        assert parse_fleet_spec(f"@{fleet}") == [
            ("hosta", 9301),
            ("127.0.0.1", 9302),
        ]

    def test_bad_entry_rejected(self):
        with pytest.raises(PlacementError, match="bad fleet entry"):
            parse_fleet_spec("hosta:not-a-port")

    def test_empty_spec_rejected(self):
        with pytest.raises(PlacementError, match="names no workers"):
            parse_fleet_spec("  , ,")

    def test_missing_file_rejected(self):
        with pytest.raises(PlacementError, match="cannot read fleet file"):
            parse_fleet_spec("@/no/such/fleet.txt")


class TestStickyWorkerPlacement:
    """The worker daemon pins its first configure and defends it."""

    def _dispatch(self, server: WorkerServer, request: RpcRequest):
        return list(server._dispatch(request, _RootLink(None, None)))

    def test_first_configure_pins_reconfigure_must_match(self):
        server = WorkerServer(name="pinned", cores=1)
        [ack] = self._dispatch(
            server,
            RpcRequest(1, "", "configure", {"index": 1, "count": 2}),
        )
        assert ack.kind == "ack"
        assert ack.payload == {"index": 1, "count": 2, "version": 0}
        # A second root configuring the same slice is welcome (it may
        # carry a different aggregation interval).
        [again] = self._dispatch(
            server,
            RpcRequest(
                2,
                "",
                "configure",
                {"index": 1, "count": 2, "aggregationInterval": 0.5},
            ),
        )
        assert again.kind == "ack"
        assert server.worker.aggregation_interval == 0.5

    def test_conflicting_configure_rejected(self):
        server = WorkerServer(name="defended", cores=1)
        self._dispatch(
            server, RpcRequest(1, "", "configure", {"index": 0, "count": 2})
        )
        with pytest.raises(PlacementError, match="re-slicing"):
            self._dispatch(
                server,
                RpcRequest(2, "", "configure", {"index": 1, "count": 2}),
            )
        # The pinned slice survived the attack.
        assert server.worker.index == 0
        assert server.worker.count == 2

    def test_placement_rpc_reports_sticky_state(self):
        server = WorkerServer(name="reporter", cores=1)
        [fresh] = self._dispatch(server, RpcRequest(1, "", "placement", {}))
        assert fresh.payload["index"] is None
        assert ShardPlacement.from_json(fresh.payload) is None
        self._dispatch(
            server, RpcRequest(2, "", "configure", {"index": 3, "count": 4})
        )
        [placed] = self._dispatch(server, RpcRequest(3, "", "placement", {}))
        assert ShardPlacement.from_json(placed.payload) == ShardPlacement(3, 4)
