"""Cross-engine equivalence: every engine computes the same summaries.

The paper's modularity claim (§5.5) means a vizketch's result is a function
of the *data*, never of the execution substrate.  This suite drives random
tables through all three ways a sketch can run — single-table local,
multi-threaded parallel, and the multi-worker cluster — and requires
bit-identical wire encodings, including under random repartitioning.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import DoubleBuckets, ExplicitStringBuckets
from repro.engine.cluster import Cluster
from repro.engine.local import LocalDataSet, ParallelDataSet, parallel_dataset
from repro.sketches.heavy_hitters import MisraGriesSketch
from repro.sketches.histogram import HistogramSketch
from repro.sketches.moments import MomentsSketch
from repro.sketches.next_items import NextKSketch
from repro.sketches.stacked import StackedHistogramSketch
from repro.sketches.trellis import TrellisHistogramSketch
from repro.storage.loader import TableSource
from repro.table.sort import RecordOrder
from repro.table.table import Table

VALUE_BUCKETS = DoubleBuckets(-50, 50, 10)
GROUP_BUCKETS = ExplicitStringBuckets(["a", "b", "c"])

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-50, 50)),
        st.sampled_from(["a", "b", "c"]),
    ),
    min_size=2,
    max_size=60,
)

SKETCHES = [
    lambda: HistogramSketch("n", VALUE_BUCKETS),
    lambda: MomentsSketch("n"),
    lambda: MisraGriesSketch("g", 4),
    lambda: NextKSketch(RecordOrder.of("g", "n"), 5),
    lambda: StackedHistogramSketch("n", VALUE_BUCKETS, "g", GROUP_BUCKETS),
    lambda: TrellisHistogramSketch("g", GROUP_BUCKETS, "n", VALUE_BUCKETS),
]


def build_table(data) -> Table:
    from repro.table.schema import ContentsKind

    return Table.from_pydict(
        {"n": [d[0] for d in data], "g": [d[1] for d in data]},
        kinds={"n": ContentsKind.INTEGER, "g": ContentsKind.STRING},
    )


@pytest.mark.parametrize("make_sketch", SKETCHES)
class TestEnginesAgree:
    @given(data=rows_strategy, shards=st.integers(1, 7))
    @settings(max_examples=25, deadline=None)
    def test_local_vs_parallel(self, make_sketch, data, shards):
        table = build_table(data)
        sketch = make_sketch()
        single = LocalDataSet(table).sketch(sketch)
        threaded = parallel_dataset(table, shards=shards).sketch(sketch)
        assert single.to_bytes() == threaded.to_bytes()

    @given(data=rows_strategy, shards=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_local_vs_cluster(self, make_sketch, data, shards):
        table = build_table(data)
        sketch = make_sketch()
        single = LocalDataSet(table).sketch(sketch)
        cluster = Cluster(num_workers=2, cores_per_worker=1)
        dataset = cluster.load(TableSource([table], shards_per_table=shards))
        assert dataset.sketch(sketch).to_bytes() == single.to_bytes()


class TestRepartitioningInvariance:
    @given(
        data=rows_strategy,
        first=st.integers(1, 6),
        second=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_shard_count_is_invisible(self, data, first, second):
        """Two arbitrary shardings of the same rows summarize identically."""
        table = build_table(data)
        sketch = HistogramSketch("n", VALUE_BUCKETS)
        one = ParallelDataSet(
            [LocalDataSet(s) for s in table.split(first)]
        ).sketch(sketch)
        other = ParallelDataSet(
            [LocalDataSet(s) for s in table.split(second)]
        ).sketch(sketch)
        assert one.to_bytes() == other.to_bytes()

    @given(data=rows_strategy, seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_row_order_is_invisible(self, data, seed):
        """Summaries are functions of multisets, not sequences (Appendix A)."""
        table = build_table(data)
        rng = np.random.default_rng(seed)
        shuffled = build_table([data[i] for i in rng.permutation(len(data))])
        sketch = MomentsSketch("n")
        assert (
            LocalDataSet(table).sketch(sketch).to_bytes()
            == LocalDataSet(shuffled).sketch(sketch).to_bytes()
        )
