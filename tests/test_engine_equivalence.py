"""Cross-engine equivalence: every engine computes the same summaries.

The paper's modularity claim (§5.5) means a vizketch's result is a function
of the *data*, never of the execution substrate.  This suite drives random
tables through all the ways a sketch can run — single-table local,
multi-threaded parallel, the multi-worker threaded cluster, and a cluster
of spawned worker *processes* — and requires bit-identical wire encodings,
including under random repartitioning.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import DoubleBuckets, ExplicitStringBuckets
from repro.core.sketch import Sketch, Summary
from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.engine.local import LocalDataSet, ParallelDataSet, parallel_dataset
from repro.engine.rpc import SKETCH_BUILDERS, sketch_from_json
from repro.sketches.heavy_hitters import MisraGriesSketch
from repro.sketches.histogram import HistogramSketch
from repro.sketches.moments import MomentsSketch
from repro.sketches.next_items import NextKSketch
from repro.sketches.stacked import StackedHistogramSketch
from repro.sketches.trellis import TrellisHistogramSketch
from repro.storage.loader import TableSource
from repro.table.sort import RecordOrder
from repro.table.table import Table

VALUE_BUCKETS = DoubleBuckets(-50, 50, 10)
GROUP_BUCKETS = ExplicitStringBuckets(["a", "b", "c"])

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-50, 50)),
        st.sampled_from(["a", "b", "c"]),
    ),
    min_size=2,
    max_size=60,
)

SKETCHES = [
    lambda: HistogramSketch("n", VALUE_BUCKETS),
    lambda: MomentsSketch("n"),
    lambda: MisraGriesSketch("g", 4),
    lambda: NextKSketch(RecordOrder.of("g", "n"), 5),
    lambda: StackedHistogramSketch("n", VALUE_BUCKETS, "g", GROUP_BUCKETS),
    lambda: TrellisHistogramSketch("g", GROUP_BUCKETS, "n", VALUE_BUCKETS),
]


def build_table(data) -> Table:
    from repro.table.schema import ContentsKind

    return Table.from_pydict(
        {"n": [d[0] for d in data], "g": [d[1] for d in data]},
        kinds={"n": ContentsKind.INTEGER, "g": ContentsKind.STRING},
    )


@pytest.mark.parametrize("make_sketch", SKETCHES)
class TestEnginesAgree:
    @given(data=rows_strategy, shards=st.integers(1, 7))
    @settings(max_examples=25, deadline=None)
    def test_local_vs_parallel(self, make_sketch, data, shards):
        table = build_table(data)
        sketch = make_sketch()
        single = LocalDataSet(table).sketch(sketch)
        threaded = parallel_dataset(table, shards=shards).sketch(sketch)
        assert single.to_bytes() == threaded.to_bytes()

    @given(data=rows_strategy, shards=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_local_vs_cluster(self, make_sketch, data, shards):
        table = build_table(data)
        sketch = make_sketch()
        single = LocalDataSet(table).sketch(sketch)
        cluster = Cluster(num_workers=2, cores_per_worker=1)
        dataset = cluster.load(TableSource([table], shards_per_table=shards))
        assert dataset.sketch(sketch).to_bytes() == single.to_bytes()


# ---------------------------------------------------------------------------
# Process-cluster equivalence: every SKETCH_BUILDERS entry, real subprocesses
# ---------------------------------------------------------------------------
# 2,000 rows keeps every summary under its decimation bounds (the quantile
# sample never exceeds 2 * max_size), so byte-identity is exact end to end.
FLIGHTS_SOURCE = FlightsSource(2_000, partitions=8, seed=5)

_DISTANCE = {"type": "double", "min": 0, "max": 3000, "count": 12}
_DELAY = {"type": "double", "min": -30, "max": 180, "count": 10}
_AIRLINES = {"type": "strings", "values": ["AA", "AS", "B6", "DL", "UA", "WN"]}
_ORDER = [
    {"column": "Distance", "ascending": True},
    {"column": "Origin", "ascending": True},
]

#: One spec per wire-level sketch type, exercised on the flights dataset.
SKETCH_SPECS: dict[str, dict] = {
    "histogram": {"type": "histogram", "column": "Distance", "buckets": _DISTANCE},
    "cdf": {"type": "cdf", "column": "DepDelay", "buckets": _DELAY},
    "heatmap": {
        "type": "heatmap",
        "xColumn": "Distance",
        "xBuckets": _DISTANCE,
        "yColumn": "DepDelay",
        "yBuckets": _DELAY,
    },
    "stacked": {
        "type": "stacked",
        "xColumn": "Distance",
        "xBuckets": _DISTANCE,
        "yColumn": "Airline",
        "yBuckets": _AIRLINES,
    },
    "trellisHeatmap": {
        "type": "trellisHeatmap",
        "groupColumn": "Airline",
        "groupBuckets": _AIRLINES,
        "xColumn": "Distance",
        "xBuckets": _DISTANCE,
        "yColumn": "DepDelay",
        "yBuckets": _DELAY,
    },
    "trellisHistogram": {
        "type": "trellisHistogram",
        "groupColumn": "Airline",
        "groupBuckets": _AIRLINES,
        "xColumn": "Distance",
        "xBuckets": _DISTANCE,
    },
    # Integer-valued columns keep float power sums exact, so summaries are
    # bit-identical regardless of merge order.
    "moments": {"type": "moments", "column": "CRSDepTime"},
    "distinct": {"type": "distinct", "column": "Origin", "precision": 10},
    # Misra-Gries merges exactly only while no counter reduction happens;
    # k above the column's cardinality (14 airlines) keeps it exact, which
    # is what cross-substrate byte-identity requires.
    "heavyHitters": {
        "type": "heavyHitters",
        "method": "streaming",
        "column": "Airline",
        "k": 20,
    },
    "nextK": {"type": "nextK", "order": _ORDER, "k": 10},
    "quantile": {"type": "quantile", "order": _ORDER, "rate": 1.0},
    "find": {
        "type": "find",
        "order": _ORDER,
        "match": {
            "type": "match",
            "column": "Origin",
            "pattern": "S",
            "mode": "substring",
            "caseSensitive": True,
        },
    },
    "bottomK": {"type": "bottomK", "column": "Origin", "k": 40},
    "correlation": {
        "type": "correlation",
        "columns": ["CRSDepTime", "DepTime", "DayOfWeek"],
    },
    "slow": {
        "type": "slow",
        "perShardSeconds": 0.0,
        "inner": {"type": "histogram", "column": "Distance", "buckets": _DISTANCE},
    },
    # "save" is side-effecting; exercised separately below.
}


@pytest.fixture(scope="module")
def process_cluster():
    from repro.engine.remote import ProcessCluster

    cluster = ProcessCluster(
        num_workers=3, cores_per_worker=2, aggregation_interval=0.01
    )
    try:
        yield cluster, cluster.load(FLIGHTS_SOURCE)
    finally:
        cluster.close()


@pytest.fixture(scope="module")
def flights_reference() -> Table:
    return Table.concat(FLIGHTS_SOURCE.load())


@pytest.mark.tier2
class TestProcessClusterEquivalence:
    """Local / threaded-cluster / process-cluster results are identical."""

    def test_specs_cover_every_builder(self):
        import repro.service.slow  # noqa: F401 — registers "slow"

        assert set(SKETCH_SPECS) | {"save"} >= set(SKETCH_BUILDERS)

    @pytest.mark.parametrize("kind", sorted(SKETCH_SPECS))
    def test_every_sketch_agrees(
        self, kind, process_cluster, flights_reference
    ):
        import repro.service.slow  # noqa: F401 — registers "slow"

        spec = SKETCH_SPECS[kind]
        _, process_ds = process_cluster
        local = LocalDataSet(flights_reference).sketch(sketch_from_json(spec))
        threaded = Cluster(num_workers=3, cores_per_worker=2)
        threaded_ds = threaded.load(FLIGHTS_SOURCE)
        via_threads = threaded_ds.sketch(sketch_from_json(spec))
        via_processes = process_ds.sketch(sketch_from_json(spec))
        assert via_threads.to_bytes() == local.to_bytes()
        assert via_processes.to_bytes() == local.to_bytes()

    def test_save_writes_identical_rows(
        self, tmp_path, process_cluster, flights_reference
    ):
        """save is side-effecting and its file list names shards, so the
        assertion is on the written *data*: same rows, no errors."""
        from repro.storage.columnar import write_manifest
        from repro.storage.loader import ColumnarDatasetSource

        _, process_ds = process_cluster
        remote_dir = tmp_path / "remote"
        spec = {"type": "save", "directory": str(remote_dir), "format": "hvc"}
        status = process_ds.sketch(sketch_from_json(spec))
        assert status.errors == []
        assert status.rows_written == flights_reference.num_rows
        write_manifest(str(remote_dir), status.files)  # the web layer's job
        reloaded = ColumnarDatasetSource(
            str(remote_dir), verify_snapshot=False
        ).load()
        assert sum(t.num_rows for t in reloaded) == flights_reference.num_rows


class TestRepartitioningInvariance:
    @given(
        data=rows_strategy,
        first=st.integers(1, 6),
        second=st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_shard_count_is_invisible(self, data, first, second):
        """Two arbitrary shardings of the same rows summarize identically."""
        table = build_table(data)
        sketch = HistogramSketch("n", VALUE_BUCKETS)
        one = ParallelDataSet(
            [LocalDataSet(s) for s in table.split(first)]
        ).sketch(sketch)
        other = ParallelDataSet(
            [LocalDataSet(s) for s in table.split(second)]
        ).sketch(sketch)
        assert one.to_bytes() == other.to_bytes()

    @given(data=rows_strategy, seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_row_order_is_invisible(self, data, seed):
        """Summaries are functions of multisets, not sequences (Appendix A)."""
        table = build_table(data)
        rng = np.random.default_rng(seed)
        shuffled = build_table([data[i] for i in rng.permutation(len(data))])
        sketch = MomentsSketch("n")
        assert (
            LocalDataSet(table).sketch(sketch).to_bytes()
            == LocalDataSet(shuffled).sketch(sketch).to_bytes()
        )


class _OrderSummary(Summary):
    """Records the order its pieces were merged in — nothing else."""

    def __init__(self, labels: tuple[str, ...] = ()):
        self.labels = tuple(labels)

    def encode(self, enc) -> None:
        enc.write_uvarint(len(self.labels))
        for label in self.labels:
            enc.write_str(label)


class _OrderProbeSketch(Sketch):
    """Associative but *non-commutative* merge, with leaves engineered to
    finish slowest-first: shard 0 sleeps longest, so completion order is
    the reverse of shard order.  Any merge loop keyed on completion (or
    arrival) order scrambles the labels; the engine must fold in shard
    order at the worker and worker-index order at the root regardless of
    which thread wins the race."""

    def __init__(self, shard_count: int):
        self.shard_count = shard_count

    def summarize(self, table: Table) -> _OrderSummary:
        index = int(table.column("n").value(0))
        time.sleep(0.02 * (self.shard_count - index))
        return _OrderSummary((f"s{index}",))

    def zero(self) -> _OrderSummary:
        return _OrderSummary()

    def merge(self, left: _OrderSummary, right: _OrderSummary) -> _OrderSummary:
        return _OrderSummary(left.labels + right.labels)


def _indexed_shards(count: int) -> list[Table]:
    return [build_table([(i, "a")]) for i in range(count)]


class TestMergeOrderDeterminism:
    """Merge order is a function of placement, never of thread timing.

    Misra-Gries at capacity is only approximately commutative — merging
    the same partials in a different order yields different (all valid)
    byte encodings.  The worker memo and the cross-root computation cache
    both require repeated runs to be byte-identical, so the engine pins
    the fold order even though every leaf races on a thread pool."""

    def test_worker_merges_in_shard_order(self):
        shards = _indexed_shards(6)
        cluster = Cluster(num_workers=1, cores_per_worker=6)
        dataset = cluster.load(TableSource(shards))
        result = dataset.sketch(_OrderProbeSketch(len(shards)))
        assert result.labels == ("s0", "s1", "s2", "s3", "s4", "s5")

    def test_root_merges_in_worker_order(self):
        # Worker w of 3 owns shards w::3; shard 0 is slowest, so worker 0
        # emits *last* — arrival-order folding would put it last.
        shards = _indexed_shards(6)
        cluster = Cluster(num_workers=3, cores_per_worker=2)
        dataset = cluster.load(TableSource(shards))
        result = dataset.sketch(_OrderProbeSketch(len(shards)))
        assert result.labels == ("s0", "s3", "s1", "s4", "s2", "s5")

    def test_parallel_dataset_merges_in_child_order(self):
        shards = _indexed_shards(5)
        dataset = ParallelDataSet([LocalDataSet(s) for s in shards])
        result = dataset.sketch(_OrderProbeSketch(len(shards)))
        assert result.labels == ("s0", "s1", "s2", "s3", "s4")
