"""Histogram/CDF/moments sketch tests: exactness, mergeability, sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buckets import DoubleBuckets, ExplicitStringBuckets, StringBuckets
from repro.core.serialization import Decoder, Encoder
from repro.sketches.cdf import CdfSketch
from repro.sketches.histogram import HistogramSketch, HistogramSummary
from repro.sketches.moments import ColumnStats, MomentsSketch
from repro.table.schema import ContentsKind
from repro.table.table import Table


def merge_over_shards(sketch, table, parts):
    return sketch.merge_all([sketch.summarize(s) for s in table.split(parts)])


class TestStreamingHistogram:
    def test_exact_counts(self, medium_numeric):
        buckets = DoubleBuckets(0, 100, 10)
        summary = HistogramSketch("value", buckets).summarize(medium_numeric)
        values = medium_numeric.column("value").data
        expected = np.histogram(values, bins=10, range=(0, 100))[0]
        assert np.array_equal(summary.counts, expected)
        assert summary.missing == 0
        assert summary.sampled_rows == medium_numeric.num_rows

    @pytest.mark.parametrize("parts", [1, 2, 7, 16])
    def test_partition_invariance(self, medium_numeric, parts):
        buckets = DoubleBuckets(0, 100, 25)
        sketch = HistogramSketch("value", buckets)
        whole = sketch.summarize(medium_numeric)
        merged = merge_over_shards(sketch, medium_numeric, parts)
        assert np.array_equal(whole.counts, merged.counts)
        assert whole.missing == merged.missing

    def test_missing_and_out_of_range_counted(self):
        table = Table.from_pydict({"v": [1.0, None, 50.0, 200.0, -5.0]})
        buckets = DoubleBuckets(0, 100, 4)
        summary = HistogramSketch("v", buckets).summarize(table)
        assert summary.missing == 1
        assert summary.out_of_range == 2
        assert summary.total_in_range == 2

    def test_zero_is_identity(self, medium_numeric):
        buckets = DoubleBuckets(0, 100, 10)
        sketch = HistogramSketch("value", buckets)
        summary = sketch.summarize(medium_numeric)
        merged = sketch.merge(sketch.zero(), summary)
        assert np.array_equal(merged.counts, summary.counts)
        assert merged.sampled_rows == summary.sampled_rows

    def test_merge_commutative(self, medium_numeric):
        buckets = DoubleBuckets(0, 100, 10)
        sketch = HistogramSketch("value", buckets)
        shards = medium_numeric.split(2)
        a, b = (sketch.summarize(s) for s in shards)
        ab, ba = sketch.merge(a, b), sketch.merge(b, a)
        assert np.array_equal(ab.counts, ba.counts)

    def test_string_histogram_explicit_buckets(self, medium_numeric):
        buckets = ExplicitStringBuckets(sorted({f"g{i}" for i in range(12)}))
        summary = HistogramSketch("group", buckets).summarize(medium_numeric)
        assert summary.total_in_range == medium_numeric.num_rows
        assert (summary.counts > 0).all()

    def test_string_histogram_range_buckets(self, medium_numeric):
        buckets = StringBuckets(["g0", "g3", "g6"])
        summary = HistogramSketch("group", buckets).summarize(medium_numeric)
        # g0..g2* fall below "g3": buckets are alphabetical ranges.
        assert summary.total_in_range == medium_numeric.num_rows

    def test_cacheable_when_exact(self):
        buckets = DoubleBuckets(0, 1, 2)
        assert HistogramSketch("v", buckets).cache_key() is not None
        assert HistogramSketch("v", buckets, rate=0.5, seed=1).cache_key() is None

    def test_serialization_roundtrip(self, medium_numeric):
        buckets = DoubleBuckets(0, 100, 10)
        summary = HistogramSketch("value", buckets).summarize(medium_numeric)
        enc = Encoder()
        summary.encode(enc)
        back = HistogramSummary.decode(Decoder(enc.to_bytes()))
        assert np.array_equal(back.counts, summary.counts)
        assert back.sampled_rows == summary.sampled_rows

    def test_summary_size_independent_of_rows(self):
        buckets = DoubleBuckets(0, 100, 50)
        small = HistogramSketch("v", buckets).summarize(
            Table.from_pydict({"v": [1.0] * 10})
        )
        big = HistogramSketch("v", buckets).summarize(
            Table.from_pydict({"v": list(np.linspace(0, 99, 5000))})
        )
        # "summary is small ... size depends only on the visualization" §4.2
        assert abs(small.serialized_size() - big.serialized_size()) < 16


class TestSampledHistogram:
    def test_rate_one_equals_streaming(self, medium_numeric):
        buckets = DoubleBuckets(0, 100, 10)
        exact = HistogramSketch("value", buckets).summarize(medium_numeric)
        sampled = HistogramSketch("value", buckets, rate=1.0, seed=9).summarize(
            medium_numeric
        )
        assert np.array_equal(exact.counts, sampled.counts)

    def test_sample_size_near_expectation(self, medium_numeric):
        buckets = DoubleBuckets(0, 100, 10)
        rate = 0.05
        summary = HistogramSketch("value", buckets, rate=rate, seed=3).summarize(
            medium_numeric
        )
        expected = medium_numeric.num_rows * rate
        assert abs(summary.sampled_rows - expected) < 5 * np.sqrt(expected)

    def test_scaled_counts_unbiased(self, medium_numeric):
        buckets = DoubleBuckets(0, 100, 5)
        exact = HistogramSketch("value", buckets).summarize(medium_numeric)
        rate = 0.1
        estimates = []
        for seed in range(20):
            sampled = HistogramSketch(
                "value", buckets, rate=rate, seed=seed
            ).summarize(medium_numeric)
            estimates.append(sampled.scaled_counts(rate))
        mean_estimate = np.mean(estimates, axis=0)
        relative_error = np.abs(mean_estimate - exact.counts) / exact.counts
        assert relative_error.max() < 0.05

    def test_deterministic_given_seed_and_shard(self, medium_numeric):
        buckets = DoubleBuckets(0, 100, 10)
        sketch = HistogramSketch("value", buckets, rate=0.1, seed=5)
        a = sketch.summarize(medium_numeric)
        b = sketch.summarize(medium_numeric)
        assert np.array_equal(a.counts, b.counts)

    def test_with_seed_changes_sample(self, medium_numeric):
        buckets = DoubleBuckets(0, 100, 10)
        sketch = HistogramSketch("value", buckets, rate=0.1, seed=5)
        reseeded = sketch.with_seed(6)
        assert reseeded.seed == 6
        a = sketch.summarize(medium_numeric)
        b = reseeded.summarize(medium_numeric)
        assert not np.array_equal(a.counts, b.counts)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            HistogramSketch("v", DoubleBuckets(0, 1, 2), rate=0.0)
        with pytest.raises(ValueError):
            HistogramSketch("v", DoubleBuckets(0, 1, 2), rate=1.5)


class TestCdf:
    def test_cumulative_monotone_and_normalized(self, medium_numeric):
        buckets = DoubleBuckets(0, 100, 200)
        summary = CdfSketch("value", buckets).summarize(medium_numeric)
        cumulative = CdfSketch.cumulative(summary)
        assert np.all(np.diff(cumulative) >= 0)
        assert cumulative[-1] == pytest.approx(1.0)

    def test_empty_cdf(self):
        table = Table.from_pydict({"v": [None, None]}, kinds={"v": ContentsKind.DOUBLE})
        buckets = DoubleBuckets(0, 1, 10)
        summary = CdfSketch("v", buckets).summarize(table)
        assert CdfSketch.cumulative(summary).tolist() == [0.0] * 10

    def test_distinct_cache_key_from_histogram(self):
        buckets = DoubleBuckets(0, 1, 4)
        assert CdfSketch("v", buckets).cache_key() != HistogramSketch(
            "v", buckets
        ).cache_key()


class TestMoments:
    def test_matches_numpy(self, medium_numeric):
        stats = MomentsSketch("value", moments=2).summarize(medium_numeric)
        values = medium_numeric.column("value").data
        assert stats.mean == pytest.approx(values.mean())
        assert stats.variance == pytest.approx(values.var(), rel=1e-9)
        assert stats.min_value == pytest.approx(values.min())
        assert stats.max_value == pytest.approx(values.max())
        assert stats.present_count == len(values)

    def test_merge_matches_whole(self, medium_numeric):
        sketch = MomentsSketch("value", moments=3)
        whole = sketch.summarize(medium_numeric)
        merged = merge_over_shards(sketch, medium_numeric, 7)
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.moment(3) == pytest.approx(whole.moment(3))
        assert merged.min_value == whole.min_value

    def test_missing_counted(self):
        table = Table.from_pydict({"v": [1.0, None, 3.0]})
        stats = MomentsSketch("v").summarize(table)
        assert stats.missing_count == 1
        assert stats.present_count == 2
        assert stats.row_count == 3

    def test_string_column_min_max(self, small_table):
        stats = MomentsSketch("name").summarize(small_table)
        assert stats.min_value == "alice"
        assert stats.max_value == "dave"
        assert stats.power_sums == []

    def test_empty_stats(self):
        table = Table.from_pydict({"v": [None]}, kinds={"v": ContentsKind.DOUBLE})
        stats = MomentsSketch("v").summarize(table)
        assert stats.min_value is None
        assert np.isnan(stats.mean)
        assert np.isnan(stats.variance)

    def test_serialization(self, medium_numeric):
        stats = MomentsSketch("value").summarize(medium_numeric)
        enc = Encoder()
        stats.encode(enc)
        back = ColumnStats.decode(Decoder(enc.to_bytes()))
        assert back.mean == pytest.approx(stats.mean)
        assert back.min_value == stats.min_value
