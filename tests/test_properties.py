"""Cross-sketch property-based tests (hypothesis).

The mergeability law — ``summarize(D1 ⊎ D2) == merge(summarize(D1),
summarize(D2))`` — and the monoid laws for ``merge`` are THE invariants the
whole engine rests on (§4.1).  These properties are exercised here over
randomly generated tables, partitionings, and sketch configurations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buckets import DoubleBuckets, ExplicitStringBuckets
from repro.sketches.bottomk import BottomKDistinctSketch
from repro.sketches.cdf import CdfSketch
from repro.sketches.distinct import ExactDistinctSketch
from repro.sketches.find_text import FindTextSketch
from repro.sketches.heavy_hitters import MisraGriesSketch
from repro.sketches.histogram import HistogramSketch
from repro.sketches.hll import HyperLogLogSketch
from repro.sketches.moments import MomentsSketch
from repro.sketches.next_items import NextKSketch
from repro.sketches.stacked import StackedHistogramSketch
from repro.sketches.trellis import TrellisHeatmapSketch, TrellisHistogramSketch
from repro.table.compute import StringMatchPredicate
from repro.table.sort import RecordOrder
from repro.table.table import Table

COLOR_BUCKETS = ExplicitStringBuckets(["black", "blue", "cyan", "green", "red"])
VALUE_BUCKETS = DoubleBuckets(-100, 100, 8)

# Random tables: one numeric column with missing values, one string column.
cells = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-100, 100)),
        st.sampled_from(["red", "green", "blue", "cyan", "black"]),
    ),
    min_size=1,
    max_size=80,
)


def build_table(data) -> Table:
    from repro.table.schema import ContentsKind

    return Table.from_pydict(
        {"n": [d[0] for d in data], "s": [d[1] for d in data]},
        kinds={"n": ContentsKind.INTEGER, "s": ContentsKind.STRING},
    )


def summaries_equal(sketch, a, b) -> bool:
    """Structural equality via the wire format (works for every summary)."""
    return a.to_bytes() == b.to_bytes()


DETERMINISTIC_SKETCHES = [
    lambda: HistogramSketch("n", DoubleBuckets(-100, 100, 16)),
    lambda: MomentsSketch("n", moments=3),
    lambda: MomentsSketch("s"),
    lambda: ExactDistinctSketch("s"),
    lambda: HyperLogLogSketch("n", precision=8, seed=5),
    lambda: NextKSketch(RecordOrder.of("n"), 5),
    lambda: NextKSketch(RecordOrder.of("s", "n", ascending=[False, True]), 4),
    lambda: CdfSketch("n", DoubleBuckets(-100, 100, 16)),
    lambda: StackedHistogramSketch("n", VALUE_BUCKETS, "s", COLOR_BUCKETS),
    lambda: TrellisHistogramSketch("s", COLOR_BUCKETS, "n", VALUE_BUCKETS),
    lambda: TrellisHeatmapSketch(
        "s", COLOR_BUCKETS, "n", VALUE_BUCKETS, "n", VALUE_BUCKETS
    ),
    lambda: TrellisHistogramSketch(
        "s", COLOR_BUCKETS, "n", VALUE_BUCKETS,
        group2_column="s", group2_buckets=COLOR_BUCKETS,
    ),
    lambda: BottomKDistinctSketch("s", k=10, seed=3),
    lambda: FindTextSketch(
        StringMatchPredicate("s", "re"), RecordOrder.of("s")
    ),
]


@pytest.mark.parametrize("make_sketch", DETERMINISTIC_SKETCHES)
class TestMonoidLaws:
    @given(data=cells, parts=st.integers(1, 6))
    @settings(max_examples=25, deadline=None)
    def test_mergeability(self, make_sketch, data, parts):
        """merge over any partitioning == summarize of the whole."""
        sketch = make_sketch()
        table = build_table(data)
        whole = sketch.summarize(table)
        merged = sketch.merge_all(
            [sketch.summarize(shard) for shard in table.split(parts)]
        )
        assert summaries_equal(sketch, whole, merged)

    @given(data=cells)
    @settings(max_examples=15, deadline=None)
    def test_zero_identity(self, make_sketch, data):
        sketch = make_sketch()
        summary = sketch.summarize(build_table(data))
        left = sketch.merge(sketch.zero(), summary)
        right = sketch.merge(summary, sketch.zero())
        assert summaries_equal(sketch, left, summary)
        assert summaries_equal(sketch, right, summary)

    @given(data=cells)
    @settings(max_examples=15, deadline=None)
    def test_associativity(self, make_sketch, data):
        sketch = make_sketch()
        table = build_table(data)
        shards = table.split(3)
        if len(shards) < 3:
            return
        a, b, c = (sketch.summarize(s) for s in shards[:3])
        left = sketch.merge(sketch.merge(a, b), c)
        right = sketch.merge(a, sketch.merge(b, c))
        assert summaries_equal(sketch, left, right)


class TestCommutativityWhereGuaranteed:
    """Histogram-family merges are fully commutative (vector addition)."""

    @given(data=cells)
    @settings(max_examples=20, deadline=None)
    def test_histogram_commutes(self, data):
        sketch = HistogramSketch("n", DoubleBuckets(-100, 100, 8))
        table = build_table(data)
        shards = table.split(2)
        if len(shards) < 2:
            return
        a, b = (sketch.summarize(s) for s in shards)
        assert summaries_equal(sketch, sketch.merge(a, b), sketch.merge(b, a))

    @given(data=cells)
    @settings(max_examples=20, deadline=None)
    def test_hll_commutes(self, data):
        sketch = HyperLogLogSketch("s", precision=6, seed=2)
        table = build_table(data)
        shards = table.split(2)
        if len(shards) < 2:
            return
        a, b = (sketch.summarize(s) for s in shards)
        assert summaries_equal(sketch, sketch.merge(a, b), sketch.merge(b, a))


class TestMisraGriesProperties:
    @given(data=cells, k=st.integers(1, 10), parts=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_undercount_bounded(self, data, k, parts):
        """Estimates never exceed truth; undercount <= error bound."""
        sketch = MisraGriesSketch("s", k)
        table = build_table(data)
        merged = sketch.merge_all(
            [sketch.summarize(shard) for shard in table.split(parts)]
        )
        truth: dict = {}
        for _, s in data:
            truth[s] = truth.get(s, 0) + 1
        for value, estimate in merged.counts.items():
            assert estimate <= truth[value]
            assert truth[value] - estimate <= merged.error_bound
        assert len(merged.counts) <= k

    @given(data=cells, k=st.integers(2, 10))
    @settings(max_examples=20, deadline=None)
    def test_frequent_elements_survive(self, data, k):
        """Anything above n/(k+1) must be present after reduction."""
        sketch = MisraGriesSketch("s", k)
        table = build_table(data)
        merged = sketch.merge_all(
            [sketch.summarize(shard) for shard in table.split(3)]
        )
        truth: dict = {}
        for _, s in data:
            truth[s] = truth.get(s, 0) + 1
        n = len(data)
        for value, count in truth.items():
            if count > n / (k + 1):
                assert value in merged.counts


class TestSampledHistogramStatistics:
    @given(rate=st.floats(0.05, 0.9), seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_sampled_counts_bounded_by_population(self, rate, seed):
        rng = np.random.default_rng(0)
        table = Table.from_pydict({"n": rng.integers(0, 100, 2000).tolist()})
        buckets = DoubleBuckets(0, 100, 10)
        exact = HistogramSketch("n", buckets).summarize(table)
        sampled = HistogramSketch("n", buckets, rate=rate, seed=seed).summarize(table)
        assert (sampled.counts <= exact.counts).all()
        assert sampled.sampled_rows <= table.num_rows

    @given(parts=st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_sampled_partition_counts_disjoint(self, parts):
        """Shard samples are disjoint: merged counts == concatenated."""
        rng = np.random.default_rng(1)
        table = Table.from_pydict({"n": rng.integers(0, 100, 3000).tolist()})
        buckets = DoubleBuckets(0, 100, 10)
        sketch = HistogramSketch("n", buckets, rate=0.2, seed=3)
        merged = sketch.merge_all(
            [sketch.summarize(shard) for shard in table.split(parts)]
        )
        assert merged.sampled_rows <= table.num_rows
        assert merged.counts.sum() == merged.sampled_rows
