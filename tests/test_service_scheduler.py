"""Fair-share scheduler tests: admission, round-robin, newest-query-wins."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine.cluster import Cluster
from repro.engine.rpc import RpcRequest
from repro.service import FairShareScheduler, SessionManager
from repro.storage.loader import TableSource
from repro.table.table import Table

TERMINAL = {"ack", "complete", "cancelled", "error"}


class Collector:
    """A reply sink recording everything it receives."""

    def __init__(self, fail: bool = False):
        self.replies = []
        self.fail = fail

    def __call__(self, reply):
        if self.fail:
            raise ConnectionError("simulated dead client")
        self.replies.append(reply)

    def wait_first(self, timeout: float = 10.0) -> None:
        deadline = time.monotonic() + timeout
        while not self.replies and time.monotonic() < deadline:
            time.sleep(0.002)
        assert self.replies, "no reply arrived in time"

    @property
    def terminal(self):
        return self.replies[-1] if self.replies else None


@pytest.fixture(scope="module")
def numbers_source() -> TableSource:
    rng = np.random.default_rng(11)
    table = Table.from_pydict({"x": rng.uniform(0, 100, 8_000).tolist()})
    return TableSource([table], shards_per_table=32)


@pytest.fixture
def service_cluster() -> Cluster:
    return Cluster(num_workers=2, cores_per_worker=2, aggregation_interval=0.01)


@pytest.fixture
def manager(service_cluster) -> SessionManager:
    return SessionManager(service_cluster, idle_ttl_seconds=900.0)


def hist_spec(slow: float | None = None) -> dict:
    spec = {
        "type": "histogram",
        "column": "x",
        "buckets": {"type": "double", "min": 0, "max": 100, "count": 10},
    }
    if slow is not None:
        spec = {"type": "slow", "perShardSeconds": slow, "inner": spec}
    return spec


def sketch_request(request_id: int, handle: str, slow: float | None = None):
    return RpcRequest(request_id, handle, "sketch", {"sketch": hist_spec(slow)})


class TestFairShare:
    def test_unary_queries_complete_across_sessions(self, manager, numbers_source):
        scheduler = FairShareScheduler(max_concurrent=2)
        try:
            sessions = [manager.get_or_create(f"u{i}") for i in range(3)]
            tasks, sinks = [], []
            for i, session in enumerate(sessions):
                handle = session.web.load(numbers_source)
                sink = Collector()
                task = scheduler.submit(
                    session, RpcRequest(i + 1, handle, "rowCount"), sink
                )
                tasks.append(task)
                sinks.append(sink)
            for task in tasks:
                assert task.done.wait(timeout=10)
            for sink in sinks:
                assert sink.terminal.kind == "complete"
                assert sink.terminal.payload["rows"] == 8_000
            assert scheduler.metrics.completed == 3
            assert scheduler.metrics.peak_running <= 2
        finally:
            scheduler.shutdown()

    def test_bounded_concurrency(self, manager, numbers_source):
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            tasks = []
            for i in range(3):
                session = manager.get_or_create(f"u{i}")
                handle = session.web.load(numbers_source)
                tasks.append(
                    scheduler.submit(
                        session, sketch_request(i + 1, handle, slow=0.005), Collector()
                    )
                )
            for task in tasks:
                assert task.done.wait(timeout=30)
            assert scheduler.metrics.peak_running == 1
            assert scheduler.metrics.completed == 3
        finally:
            scheduler.shutdown()

    def test_admission_control_rejects_backlog(self, manager, numbers_source):
        scheduler = FairShareScheduler(max_concurrent=1, max_queue_per_session=2)
        try:
            # Occupy the only worker slot so the flood genuinely queues.
            blocker_session = manager.get_or_create("blocker")
            blocker_handle = blocker_session.web.load(numbers_source)
            blocker = scheduler.submit(
                blocker_session,
                sketch_request(99, blocker_handle, slow=0.02),
                Collector(),
            )
            session = manager.get_or_create("flood")
            handle = session.web.load(numbers_source)
            sinks = [Collector() for _ in range(6)]
            tasks = [
                # rowCount queries are not preemptible, so they pile up.
                scheduler.submit(
                    session, RpcRequest(i + 1, handle, "rowCount"), sinks[i]
                )
                for i in range(6)
            ]
            for task in tasks + [blocker]:
                assert task.done.wait(timeout=30)
            kinds = [s.terminal.kind for s in sinks]
            assert kinds.count("error") >= 4 - 1  # >= 3: one may sneak in
            rejected = [s.terminal for s in sinks if s.terminal.kind == "error"]
            assert all(r.code == "overloaded" for r in rejected)
            assert scheduler.metrics.rejected == len(rejected) > 0
        finally:
            scheduler.shutdown()


class TestNewestQueryWins:
    def test_preempts_running_sketch(self, manager, numbers_source):
        scheduler = FairShareScheduler(max_concurrent=2)
        try:
            session = manager.get_or_create("alice")
            handle = session.web.load(numbers_source)
            first_sink = Collector()
            first = scheduler.submit(
                session, sketch_request(1, handle, slow=0.02), first_sink
            )
            first_sink.wait_first()  # the first query is visibly streaming
            second_sink = Collector()
            second = scheduler.submit(
                session, sketch_request(2, handle, slow=0.0), second_sink
            )
            assert first.done.wait(timeout=30)
            assert second.done.wait(timeout=30)
            assert first.token.cancelled
            assert first_sink.terminal.kind == "cancelled"
            assert first_sink.terminal.code == "superseded"
            assert second_sink.terminal.kind == "complete"
            assert sum(second_sink.terminal.payload["counts"]) == 8_000
            assert scheduler.metrics.preempted == 1
            assert session.metrics.preempted == 1
        finally:
            scheduler.shutdown()

    def test_supersedes_queued_sketch_without_running_it(
        self, manager, numbers_source
    ):
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            blocker_session = manager.get_or_create("blocker")
            blocker_handle = blocker_session.web.load(numbers_source)
            blocker = scheduler.submit(
                blocker_session,
                sketch_request(1, blocker_handle, slow=0.02),
                Collector(),
            )
            session = manager.get_or_create("bob")
            handle = session.web.load(numbers_source)
            stale_sink, fresh_sink = Collector(), Collector()
            stale = scheduler.submit(
                session, sketch_request(2, handle, slow=0.01), stale_sink
            )
            fresh = scheduler.submit(
                session, sketch_request(3, handle, slow=0.0), fresh_sink
            )
            for task in (blocker, stale, fresh):
                assert task.done.wait(timeout=30)
            # The superseded query answered without touching the cluster.
            assert stale_sink.terminal.kind == "cancelled"
            assert stale_sink.terminal.code == "superseded"
            assert len(stale_sink.replies) == 1
            assert fresh_sink.terminal.kind == "complete"
        finally:
            scheduler.shutdown()

    def test_rejected_sketch_does_not_preempt_the_running_one(
        self, manager, numbers_source
    ):
        """Admission control rejects BEFORE newest-query-wins runs: an
        overloaded submit must leave the in-flight query untouched."""
        scheduler = FairShareScheduler(max_concurrent=1, max_queue_per_session=1)
        try:
            session = manager.get_or_create("greedy")
            handle = session.web.load(numbers_source)
            running_sink = Collector()
            running = scheduler.submit(
                session, sketch_request(1, handle, slow=0.02), running_sink
            )
            running_sink.wait_first()  # occupying the only slot
            # Fill the backlog with a non-preemptible query.
            queued = scheduler.submit(
                session, RpcRequest(2, handle, "rowCount"), Collector()
            )
            overflow_sink = Collector()
            overflow = scheduler.submit(
                session, sketch_request(3, handle), overflow_sink
            )
            assert overflow.done.wait(timeout=10)
            assert overflow_sink.terminal.code == "overloaded"
            # The running query was not collateral damage of the rejection.
            assert not running.token.cancelled
            assert running.done.wait(timeout=30)
            assert running_sink.terminal.kind == "complete"
            assert queued.done.wait(timeout=30)
        finally:
            scheduler.shutdown()

    def test_non_sketch_queries_are_not_preempted(self, manager, numbers_source):
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            session = manager.get_or_create("carol")
            handle = session.web.load(numbers_source)
            rows_sink = Collector()
            rows = scheduler.submit(
                session, RpcRequest(1, handle, "rowCount"), rows_sink
            )
            sketch = scheduler.submit(
                session, sketch_request(2, handle), Collector()
            )
            for task in (rows, sketch):
                assert task.done.wait(timeout=30)
            assert rows_sink.terminal.kind == "complete"
            assert scheduler.metrics.preempted == 0
        finally:
            scheduler.shutdown()


class TestCancellationEdgeCases:
    def test_chain_of_supersessions_while_queued_runs_only_the_newest(
        self, manager, numbers_source
    ):
        """Sketches superseded while still queued are answered without ever
        being admitted to a worker slot; only the newest executes."""
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            blocker_session = manager.get_or_create("blocker")
            blocker_handle = blocker_session.web.load(numbers_source)
            blocker = scheduler.submit(
                blocker_session,
                sketch_request(1, blocker_handle, slow=0.02),
                Collector(),
            )
            session = manager.get_or_create("impatient")
            handle = session.web.load(numbers_source)
            sinks = [Collector() for _ in range(3)]
            tasks = [
                scheduler.submit(session, sketch_request(10 + i, handle), sinks[i])
                for i in range(3)
            ]
            for task in tasks + [blocker]:
                assert task.done.wait(timeout=30)
            for stale_sink in sinks[:2]:
                assert stale_sink.terminal.kind == "cancelled"
                assert stale_sink.terminal.code == "superseded"
                # Never admitted to a slot: the single envelope is the
                # answer, with no partials ever streamed.
                assert len(stale_sink.replies) == 1
            assert sinks[2].terminal.kind == "complete"
            assert scheduler.metrics.preempted == 2
        finally:
            scheduler.shutdown()

    def test_cancel_racing_the_final_complete_is_clean(
        self, manager, numbers_source
    ):
        """Cancelling at the instant the final envelope is produced must
        yield exactly one terminal reply — complete or cancelled, never
        both, never an exception."""
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            session = manager.get_or_create("racer")
            handle = session.web.load(numbers_source)
            for request_id in range(1, 11):
                sink = Collector()
                task = scheduler.submit(
                    session, sketch_request(request_id, handle, slow=0.001), sink
                )
                sink.wait_first(timeout=30)
                session.cancel_request(request_id)  # races the terminal
                assert task.done.wait(timeout=30)
                terminals = [
                    r for r in sink.replies if r.kind in ("complete", "cancelled")
                ]
                assert len(terminals) == 1
                assert terminals[-1] is sink.replies[-1]
            metrics = scheduler.metrics
            assert metrics.completed + metrics.cancelled == 10
        finally:
            scheduler.shutdown()

    def test_session_close_finalizes_queued_queries(
        self, manager, numbers_source
    ):
        """Closing a session with queries still in the admission queue must
        cancel and finalize them (no dangling done events), and must not
        disturb other sessions' work."""
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            blocker_session = manager.get_or_create("survivor")
            blocker_handle = blocker_session.web.load(numbers_source)
            blocker_sink = Collector()
            blocker = scheduler.submit(
                blocker_session,
                sketch_request(1, blocker_handle, slow=0.02),
                blocker_sink,
            )
            blocker_sink.wait_first()  # the only slot is now occupied
            doomed = manager.get_or_create("doomed")
            handle = doomed.web.load(numbers_source)
            sinks = [Collector() for _ in range(3)]
            tasks = [
                # rowCount queries are not preemptible, so all three queue.
                scheduler.submit(
                    doomed, RpcRequest(10 + i, handle, "rowCount"), sinks[i]
                )
                for i in range(3)
            ]
            assert manager.close("doomed")
            scheduler.forget_session("doomed")
            for task in tasks:
                assert task.done.wait(timeout=10), "queued task left dangling"
                assert task.token.cancelled
            for sink in sinks:
                assert sink.terminal is not None
                assert sink.terminal.kind == "cancelled"
                assert sink.terminal.code == "session_closed"
            assert blocker.done.wait(timeout=30)
            assert blocker_sink.terminal.kind == "complete"
            assert scheduler.queued_count("doomed") == 0
        finally:
            scheduler.shutdown()


class TestFailureModes:
    def test_worker_crash_mid_query(self, service_cluster, manager, numbers_source):
        """A worker losing its soft state mid-query does not corrupt the
        running query, and the next one replays lineage (§5.7-5.8)."""
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            session = manager.get_or_create("crashy")
            handle = session.web.load(numbers_source)
            sink = Collector()
            task = scheduler.submit(
                session, sketch_request(1, handle, slow=0.01), sink
            )
            sink.wait_first()
            service_cluster.kill_worker(0)
            assert task.done.wait(timeout=30)
            assert sink.terminal.kind == "complete"
            assert sum(sink.terminal.payload["counts"]) == 8_000
            # The follow-up query forces a redo-log replay on worker 0.
            again = Collector()
            task2 = scheduler.submit(session, sketch_request(2, handle), again)
            assert task2.done.wait(timeout=30)
            assert again.terminal.kind == "complete"
            assert sum(again.terminal.payload["counts"]) == 8_000
            assert service_cluster.workers[0].crashes == 1
        finally:
            scheduler.shutdown()

    def test_dead_sink_cancels_the_query(self, manager, numbers_source):
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            session = manager.get_or_create("ghost")
            handle = session.web.load(numbers_source)
            task = scheduler.submit(
                session, sketch_request(1, handle, slow=0.01), Collector(fail=True)
            )
            assert task.done.wait(timeout=30)
            assert task.token.cancelled
        finally:
            scheduler.shutdown()

    def test_error_envelope_flows_through_scheduler(self, manager):
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            session = manager.get_or_create("confused")
            sink = Collector()
            task = scheduler.submit(
                session, RpcRequest(1, "obj-404", "rowCount"), sink
            )
            assert task.done.wait(timeout=10)
            assert sink.terminal.kind == "error"
            assert sink.terminal.code == "unknown_handle"
            assert scheduler.metrics.errors == 1
            assert session.metrics.errors == 1
        finally:
            scheduler.shutdown()


class TestSchedulerStateLifecycle:
    """Regression: per-session scheduler state must not outlive the session.

    ``_queues`` entries and round-robin slots used to accumulate forever on
    a long-lived server — TTL-expired sessions never reached
    ``forget_session``, drained queues were never purged, and even a
    rejected submit left bookkeeping behind."""

    @staticmethod
    def _wait_empty(scheduler, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with scheduler._cond:
                if not scheduler._queues and not scheduler._order:
                    return
            time.sleep(0.01)
        with scheduler._cond:
            assert not scheduler._queues, dict(scheduler._queues)
            assert not scheduler._order, list(scheduler._order)

    def test_ttl_expired_session_releases_scheduler_state(
        self, service_cluster, numbers_source
    ):
        class FakeClock:
            t = 1000.0

            def now(self):
                return self.t

        clock = FakeClock()
        scheduler = FairShareScheduler(max_concurrent=1)
        manager = SessionManager(
            service_cluster,
            idle_ttl_seconds=10.0,
            expire_ttl_seconds=20.0,
            clock=clock.now,
            on_close=scheduler.forget_session,
        )
        try:
            session = manager.get_or_create("leaky")
            handle = session.web.load(numbers_source)
            task = scheduler.submit(
                session, RpcRequest(1, handle, "rowCount"), Collector()
            )
            assert task.done.wait(timeout=10)
            clock.t += 21.0
            assert manager.expire() == ["leaky"]
            self._wait_empty(scheduler)
        finally:
            scheduler.shutdown()

    def test_drained_session_queues_are_purged(self, manager, numbers_source):
        scheduler = FairShareScheduler(max_concurrent=2)
        try:
            tasks = []
            for i in range(3):
                session = manager.get_or_create(f"drain-{i}")
                handle = session.web.load(numbers_source)
                tasks.append(
                    scheduler.submit(
                        session, RpcRequest(i + 1, handle, "rowCount"), Collector()
                    )
                )
            for task in tasks:
                assert task.done.wait(timeout=10)
            # With the backlog drained and the workers idle, no per-session
            # residue may remain.
            self._wait_empty(scheduler)
        finally:
            scheduler.shutdown()

    def test_rejected_submit_leaves_no_scheduler_state(
        self, manager, numbers_source
    ):
        scheduler = FairShareScheduler(max_concurrent=1, max_queue_per_session=0)
        try:
            session = manager.get_or_create("bounced")
            handle = session.web.load(numbers_source)
            sink = Collector()
            task = scheduler.submit(
                session, RpcRequest(1, handle, "rowCount"), sink
            )
            assert task.done.wait(timeout=10)
            assert sink.terminal.code == "overloaded"
            assert scheduler.metrics.rejected == 1
            with scheduler._cond:
                assert session.session_id not in scheduler._queues
                assert session.session_id not in scheduler._order
        finally:
            scheduler.shutdown()


class TestReplyHygiene:
    """Regression: reply-stream classification and envelope ownership."""

    def test_empty_stream_with_cancelled_token_counts_as_cancelled(
        self, manager
    ):
        """A token cancelled before the first envelope used to be counted
        as 'completed' (last_kind is None fell into the else branch)."""
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            session = manager.get_or_create("hollow")

            def hollow_execute(request, token=None):
                token.cancel()  # cancelled before any envelope is produced
                return iter(())

            session.web.execute = hollow_execute
            task = scheduler.submit(
                session, RpcRequest(1, "obj-1", "rowCount"), Collector()
            )
            assert task.done.wait(timeout=10)
            assert scheduler.metrics.cancelled == 1
            assert scheduler.metrics.completed == 0
        finally:
            scheduler.shutdown()

    def test_empty_stream_without_cancellation_still_counts_completed(
        self, manager
    ):
        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            session = manager.get_or_create("benign")
            session.web.execute = lambda request, token=None: iter(())
            task = scheduler.submit(
                session, RpcRequest(1, "obj-1", "rowCount"), Collector()
            )
            assert task.done.wait(timeout=10)
            assert scheduler.metrics.completed == 1
            assert scheduler.metrics.cancelled == 0
        finally:
            scheduler.shutdown()

    def test_superseded_code_is_stamped_on_a_copy(self, manager):
        """The scheduler must not mutate reply envelopes it does not own:
        the 'superseded' qualifier goes on a copy, the original object
        (which the execution layer may share) stays untouched."""
        from repro.engine.rpc import RpcReply
        from repro.service import QueryTask

        scheduler = FairShareScheduler(max_concurrent=1)
        try:
            session = manager.get_or_create("copycat")
            shared = RpcReply(7, "cancelled")
            session.web.execute = lambda request, token=None: iter([shared])
            sink = Collector()
            task = QueryTask(session, sketch_request(7, "obj-1"), sink)
            task.superseded = True
            scheduler._execute(task)
            assert sink.terminal.code == "superseded"
            assert sink.terminal is not shared
            assert shared.code is None, "shared envelope was mutated in place"
        finally:
            scheduler.shutdown()


def test_threads_wind_down_after_shutdown(manager, numbers_source):
    scheduler = FairShareScheduler(max_concurrent=2)
    session = manager.get_or_create("bye")
    handle = session.web.load(numbers_source)
    task = scheduler.submit(session, sketch_request(1, handle), Collector())
    assert task.done.wait(timeout=30)
    scheduler.shutdown()
    assert all(not t.is_alive() for t in scheduler._threads)
    with pytest.raises(Exception):
        scheduler.submit(session, sketch_request(2, handle), Collector())


def test_slowdown_sketch_is_uncached():
    from repro.engine.rpc import sketch_from_json
    from repro.service import SlowdownSketch

    sketch = sketch_from_json(
        {
            "type": "slow",
            "perShardSeconds": 0.001,
            "inner": {
                "type": "histogram",
                "column": "x",
                "buckets": {"type": "double", "min": 0, "max": 1, "count": 2},
            },
        }
    )
    assert isinstance(sketch, SlowdownSketch)
    assert sketch.cache_key() is None
    assert not sketch.deterministic
    table = Table.from_pydict({"x": [0.1, 0.9]})
    merged = sketch.merge(sketch.zero(), sketch.summarize(table))
    assert sum(merged.counts) == 2
