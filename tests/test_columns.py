"""Column storage tests: kinds, missing values, surrogates, inference."""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.errors import ColumnKindError, SchemaError
from repro.table.column import (
    DateColumn,
    DoubleColumn,
    IntColumn,
    StringColumn,
    column_from_values,
    datetime_to_millis,
    millis_to_datetime,
)
from repro.table.dictionary import StringDictionary
from repro.table.schema import ColumnDescription, ContentsKind


def desc(name, kind):
    return ColumnDescription(name, kind)


class TestIntColumn:
    def test_values_and_missing(self):
        col = IntColumn(
            desc("a", ContentsKind.INTEGER),
            np.array([1, 2, 3]),
            np.array([False, True, False]),
        )
        assert col.value(0) == 1
        assert col.value(1) is None
        assert col.missing_mask().tolist() == [False, True, False]

    def test_numeric_values_nan_for_missing(self):
        col = IntColumn(
            desc("a", ContentsKind.INTEGER),
            np.array([1, 2]),
            np.array([False, True]),
        )
        values = col.numeric_values(np.array([0, 1]))
        assert values[0] == 1.0
        assert np.isnan(values[1])

    def test_all_false_mask_dropped(self):
        col = IntColumn(
            desc("a", ContentsKind.INTEGER),
            np.array([1, 2]),
            np.array([False, False]),
        )
        assert not col.missing_mask().any()

    def test_wrong_kind_rejected(self):
        with pytest.raises(SchemaError):
            IntColumn(desc("a", ContentsKind.DOUBLE), np.array([1]))

    def test_take_subset(self):
        col = IntColumn(
            desc("a", ContentsKind.INTEGER),
            np.array([10, 20, 30, 40]),
            np.array([False, True, False, False]),
        )
        sub = col.take(np.array([1, 3]))
        assert sub.size == 2
        assert sub.value(0) is None
        assert sub.value(1) == 40

    def test_string_access_raises(self):
        col = IntColumn(desc("a", ContentsKind.INTEGER), np.array([1]))
        with pytest.raises(ColumnKindError):
            col.string_values(np.array([0]))


class TestDoubleColumn:
    def test_nan_is_missing(self):
        col = DoubleColumn(
            desc("d", ContentsKind.DOUBLE), np.array([1.0, np.nan, 3.0])
        )
        assert col.value(1) is None
        assert col.missing_mask().tolist() == [False, True, False]

    def test_sort_surrogate_missing_first(self):
        col = DoubleColumn(desc("d", ContentsKind.DOUBLE), np.array([2.0, np.nan]))
        surrogate = col.sort_surrogate(np.array([0, 1]))
        assert surrogate[1] == -np.inf
        assert surrogate[0] == 2.0

    def test_memory_accounting(self):
        col = DoubleColumn(desc("d", ContentsKind.DOUBLE), np.zeros(100))
        assert col.memory_bytes() == 800


class TestDateColumn:
    def test_millis_roundtrip(self):
        moment = datetime(2019, 7, 10, 15, 30, tzinfo=timezone.utc)
        assert millis_to_datetime(datetime_to_millis(moment)) == moment

    def test_naive_datetime_taken_as_utc(self):
        naive = datetime(2019, 1, 1)
        aware = datetime(2019, 1, 1, tzinfo=timezone.utc)
        assert datetime_to_millis(naive) == datetime_to_millis(aware)

    def test_value_and_numeric(self):
        moment = datetime(2005, 6, 1, tzinfo=timezone.utc)
        col = DateColumn(
            desc("t", ContentsKind.DATE),
            np.array([datetime_to_millis(moment)]),
        )
        assert col.value(0) == moment
        assert col.numeric_values(np.array([0]))[0] == datetime_to_millis(moment)


class TestStringColumn:
    def test_dictionary_encoding(self):
        col = StringColumn.from_values(
            desc("s", ContentsKind.STRING), ["b", "a", None, "b"]
        )
        assert col.value(0) == "b"
        assert col.value(2) is None
        assert len(col.dictionary) == 2  # only distinct strings stored
        assert col.string_values(np.array([0, 1, 2, 3])) == ["b", "a", None, "b"]

    def test_sort_surrogate_alphabetical(self):
        col = StringColumn.from_values(
            desc("s", ContentsKind.STRING), ["m", "a", "z", None]
        )
        surrogate = col.sort_surrogate(np.array([0, 1, 2, 3]))
        assert surrogate[1] < surrogate[0] < surrogate[2]
        assert surrogate[3] == -np.inf

    def test_take_reencodes_dictionary(self):
        col = StringColumn.from_values(
            desc("s", ContentsKind.STRING), ["a", "b", "c", "d"]
        )
        sub = col.take(np.array([0, 1]))
        assert isinstance(sub, StringColumn)
        assert len(sub.dictionary) == 2

    def test_rename_shares_storage(self):
        col = StringColumn.from_values(desc("s", ContentsKind.STRING), ["x"])
        renamed = col.rename("t")
        assert renamed.name == "t"
        assert renamed.value(0) == "x"
        assert col.name == "s"


class TestDictionary:
    def test_codes_dense_and_stable(self):
        d = StringDictionary()
        assert d.code_for("x") == 0
        assert d.code_for("y") == 1
        assert d.code_for("x") == 0
        assert d.code_of("z") == -1
        assert "y" in d

    def test_sorted_ranks(self):
        d = StringDictionary(["m", "a", "z"])
        ranks = d.sorted_ranks()
        # "a" < "m" < "z": codes 1, 0, 2 get ranks 0, 1, 2 respectively
        assert ranks.tolist() == [1, 0, 2]

    def test_ranks_refresh_after_growth(self):
        d = StringDictionary(["b"])
        assert d.sorted_ranks().tolist() == [0]
        d.code_for("a")
        assert d.sorted_ranks().tolist() == [1, 0]


class TestInference:
    def test_infer_integer(self):
        col = column_from_values("c", [1, 2, None])
        assert col.kind is ContentsKind.INTEGER

    def test_infer_double(self):
        assert column_from_values("c", [1, 2.5]).kind is ContentsKind.DOUBLE

    def test_infer_date(self):
        col = column_from_values("c", [datetime(2019, 1, 1)])
        assert col.kind is ContentsKind.DATE

    def test_infer_string_wins_over_mixed(self):
        assert column_from_values("c", [1, "x"]).kind is ContentsKind.STRING

    def test_all_none_is_string(self):
        assert column_from_values("c", [None, None]).kind is ContentsKind.STRING

    def test_explicit_kind_respected(self):
        col = column_from_values("c", [1, 2], ContentsKind.DOUBLE)
        assert col.kind is ContentsKind.DOUBLE
