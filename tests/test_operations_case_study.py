"""Figure 4 operations and Figure 10/11 case study, end to end."""

from __future__ import annotations

import pytest

from repro.core.resolution import Resolution
from repro.spreadsheet import OPERATIONS, Spreadsheet, run_operation
from repro.spreadsheet.case_study import QUESTIONS, run_case_study


@pytest.fixture(scope="module")
def sheet(flights):
    from repro.engine.local import parallel_dataset

    dataset = parallel_dataset(flights, shards=8)
    return Spreadsheet(dataset, resolution=Resolution(300, 100), seed=7)


class TestOperations:
    def test_catalogue_matches_figure4(self):
        assert [op.op_id for op in OPERATIONS] == [f"O{i}" for i in range(1, 12)]
        # O4 and O6 never run on cold data (Figure 6 omits them).
        cold_excluded = {op.op_id for op in OPERATIONS if not op.cold_applicable}
        assert cold_excluded == {"O4", "O6"}

    @pytest.mark.parametrize("op_id", [f"O{i}" for i in range(1, 12)])
    def test_operation_runs(self, sheet, op_id):
        records = run_operation(sheet, op_id)
        assert records, op_id
        assert all(r.seconds >= 0 for r in records)
        assert sum(r.bytes_received for r in records) > 0

    def test_operations_use_distinct_vizketch_mixes(self, sheet):
        mark = sheet.log.count
        run_operation(sheet, "O9")
        o9 = sheet.log.since(mark)
        assert any("distinct_count" in a.name for a in o9)


class TestCaseStudy:
    @pytest.fixture(scope="class")
    def results(self, sheet):
        return run_case_study(sheet)

    def test_all_twenty_questions_run(self, results):
        assert len(results) == 20
        assert [r.q_id for r in results] == [q.q_id for q in QUESTIONS]
        assert all(r.answer for r in results)

    def test_action_counts_in_paper_range(self, results):
        # Figure 11: between 1 and 6 actions per question (Q20 investigates).
        for result in results:
            assert 1 <= result.actions <= 8, (result.q_id, result.actions)

    def test_partially_answerable_flagged(self, results):
        flagged = {r.q_id for r in results if not r.fully_answerable}
        assert flagged == {"Q4", "Q6", "Q10", "Q20"}

    def test_q2_answer_is_hawaiian(self, results):
        q2 = next(r for r in results if r.q_id == "Q2")
        assert "HA" in q2.answer

    def test_q9_answer_is_ev(self, results):
        q9 = next(r for r in results if r.q_id == "Q9")
        assert "EV" in q9.answer

    def test_q14_hawaii_carriers_subset(self, results):
        q14 = next(r for r in results if r.q_id == "Q14")
        carriers = set(q14.answer.replace(" ", "").split(","))
        assert "HA" in carriers
        assert carriers <= {"HA", "UA", "AA", "DL", "AS", "WN"}

    def test_q19_finds_both_retired_carriers(self, results):
        q19 = next(r for r in results if r.q_id == "Q19")
        assert "EV" in q19.answer and "MQ" in q19.answer

    def test_q11_longest_flight_plausible(self, results):
        q11 = next(r for r in results if r.q_id == "Q11")
        miles = float(q11.answer.split()[0])
        assert 4000 < miles < 6500

    def test_q20_reports_unanswerable(self, results):
        q20 = next(r for r in results if r.q_id == "Q20")
        assert "cannot" in q20.answer

    def test_machine_time_is_small(self, results):
        # The paper: "most of the time is the operator thinking"; machine
        # time per question is seconds at most even in this reproduction.
        assert max(r.seconds for r in results) < 30
