"""Predicate tests: column comparisons, text search, boolean composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ColumnKindError, SchemaError
from repro.table.compute import (
    AndPredicate,
    ColumnPredicate,
    NotPredicate,
    OrPredicate,
    StringMatchPredicate,
)
from repro.table.table import Table


@pytest.fixture
def table():
    return Table.from_pydict(
        {
            "n": [1, 2, 3, 4, 5, None],
            "s": ["Apple", "banana", "Cherry", "apple pie", None, "BANANA"],
        }
    )


def rows(table):
    return table.members.indices()


class TestColumnPredicate:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("==", 3, [False, False, True, False, False, False]),
            ("!=", 3, [True, True, False, True, True, False]),
            ("<", 3, [True, True, False, False, False, False]),
            ("<=", 3, [True, True, True, False, False, False]),
            (">", 3, [False, False, False, True, True, False]),
            (">=", 3, [False, False, True, True, True, False]),
        ],
    )
    def test_numeric_operators(self, table, op, value, expected):
        predicate = ColumnPredicate("n", op, value)
        assert predicate.evaluate(table, rows(table)).tolist() == expected

    def test_between_and_in(self, table):
        between = ColumnPredicate("n", "between", (2, 4))
        assert between.evaluate(table, rows(table)).tolist() == [
            False, True, True, True, False, False,
        ]
        contained = ColumnPredicate("n", "in", [1, 5])
        assert contained.evaluate(table, rows(table)).tolist() == [
            True, False, False, False, True, False,
        ]

    def test_is_missing(self, table):
        predicate = ColumnPredicate("n", "is_missing")
        assert predicate.evaluate(table, rows(table)).tolist() == [
            False, False, False, False, False, True,
        ]

    def test_string_equality_via_dictionary(self, table):
        predicate = ColumnPredicate("s", "==", "Apple")
        assert predicate.evaluate(table, rows(table)).tolist() == [
            True, False, False, False, False, False,
        ]

    def test_string_range(self, table):
        predicate = ColumnPredicate("s", "between", ("A", "C"))
        result = predicate.evaluate(table, rows(table))
        assert result.tolist() == [True, False, False, False, False, True]

    def test_unknown_operator(self):
        with pytest.raises(SchemaError):
            ColumnPredicate("n", "~~", 1)

    def test_spec_is_stable(self):
        assert (
            ColumnPredicate("n", ">", 3).spec()
            == ColumnPredicate("n", ">", 3).spec()
        )


class TestStringMatch:
    def test_substring_default(self, table):
        predicate = StringMatchPredicate("s", "an")
        assert predicate.evaluate(table, rows(table)).tolist() == [
            False, True, False, False, False, False,
        ]

    def test_case_insensitive(self, table):
        predicate = StringMatchPredicate("s", "banana", case_sensitive=False)
        assert predicate.evaluate(table, rows(table)).tolist() == [
            False, True, False, False, False, True,
        ]

    def test_exact(self, table):
        predicate = StringMatchPredicate("s", "Apple", mode="exact")
        assert predicate.evaluate(table, rows(table)).sum() == 1

    def test_regex(self, table):
        predicate = StringMatchPredicate("s", r"^[ab]", mode="regex")
        assert predicate.evaluate(table, rows(table)).tolist() == [
            False, True, False, True, False, False,
        ]

    def test_regex_case_insensitive(self, table):
        predicate = StringMatchPredicate(
            "s", r"^banana$", mode="regex", case_sensitive=False
        )
        assert predicate.evaluate(table, rows(table)).sum() == 2

    def test_invalid_mode(self):
        with pytest.raises(SchemaError):
            StringMatchPredicate("s", "x", mode="glob")

    def test_numeric_column_rejected(self, table):
        predicate = StringMatchPredicate("n", "1")
        with pytest.raises(ColumnKindError):
            predicate.evaluate(table, rows(table))


class TestComposition:
    def test_and_or_not(self, table):
        a = ColumnPredicate("n", ">", 1)
        b = ColumnPredicate("n", "<", 4)
        both = (a & b).evaluate(table, rows(table))
        assert both.tolist() == [False, True, True, False, False, False]
        either = (ColumnPredicate("n", "==", 1) | ColumnPredicate("n", "==", 5))
        assert either.evaluate(table, rows(table)).tolist() == [
            True, False, False, False, True, False,
        ]
        negated = (~a).evaluate(table, rows(table))
        assert negated.tolist() == [True, False, False, False, False, True]

    def test_and_short_circuits_structurally(self, table):
        # An AND whose first branch is empty must not fail on the second.
        bad = ColumnPredicate("n", ">", 100)
        composite = AndPredicate([bad, ColumnPredicate("n", ">", 0)])
        assert composite.evaluate(table, rows(table)).sum() == 0

    def test_empty_composites_rejected(self):
        with pytest.raises(SchemaError):
            AndPredicate([])
        with pytest.raises(SchemaError):
            OrPredicate([])

    def test_specs_compose(self, table):
        spec = NotPredicate(
            AndPredicate([ColumnPredicate("n", ">", 1), ColumnPredicate("n", "<", 3)])
        ).spec()
        assert spec.startswith("Not(And(")

    def test_filter_on_member_subset(self, table):
        filtered = table.filter(ColumnPredicate("n", ">", 2))
        result = ColumnPredicate("n", "<", 5).evaluate(
            filtered, filtered.members.indices()
        )
        assert result.tolist() == [True, True, False]
