"""Simulator tests: the scalability shapes of Figures 5-8 must hold."""

from __future__ import annotations

import pytest

from repro.engine.costmodel import CostModel
from repro.engine.simulation import SimCluster, SimPhase, simulate_phase, simulate_query

MODEL = CostModel()  # default constants; shapes must not depend on calibration


def cluster(servers=8, cores=28, rows=1_000_000_000):
    return SimCluster(
        servers=servers,
        cores_per_server=cores,
        total_rows=rows,
        micropartition_rows=15_000_000,
    )


SCAN = SimPhase(kind="scan", columns=1, summary_bytes=800)
SAMPLE = SimPhase(kind="sample", total_samples=1_000_000, summary_bytes=800)


class TestPhaseBasics:
    def test_result_fields(self):
        result = simulate_phase(cluster(), SCAN, MODEL)
        assert result.total_s > 0
        assert 0 < result.first_partial_s <= result.total_s
        assert result.bytes_to_root >= 8 * SCAN.summary_bytes
        assert result.leaf_tasks > 0

    def test_deterministic(self):
        a = simulate_phase(cluster(), SCAN, MODEL, seed=3)
        b = simulate_phase(cluster(), SCAN, MODEL, seed=3)
        assert a == b

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SimPhase(kind="teleport").leaf_cost_s(MODEL, 10, 10)

    def test_sort_costlier_than_scan(self):
        scan = SimPhase(kind="scan", columns=1)
        sort = SimPhase(kind="sort", columns=1)
        assert sort.leaf_cost_s(MODEL, 10**6, 10**6) > scan.leaf_cost_s(
            MODEL, 10**6, 10**6
        )


class TestWeakScalingServers:
    """Figure 8: rows grow with servers; streaming flat, sampled improves."""

    def latencies(self, phase):
        out = []
        for servers in (1, 2, 4, 8):
            result = simulate_phase(
                cluster(servers=servers, rows=125_000_000 * servers), phase, MODEL
            )
            out.append(result.total_s)
        return out

    def test_streaming_constant(self):
        lat = self.latencies(SCAN)
        assert max(lat) / min(lat) < 1.4  # near-flat

    def test_sampled_superlinear(self):
        lat = self.latencies(SAMPLE)
        # Fixed total sample spread over more servers: latency drops.
        assert lat[-1] < lat[0] / 2.0


class TestWeakScalingCores:
    """Figure 7: leaves+shards grow together; flat until cores exhausted."""

    def test_flat_until_core_limit(self):
        latencies = []
        for leaves in (1, 2, 4, 8, 16):
            result = simulate_phase(
                SimCluster(
                    servers=1,
                    cores_per_server=16,
                    total_rows=15_000_000 * leaves,
                ),
                SCAN,
                MODEL,
            )
            latencies.append(result.total_s)
        assert max(latencies) / min(latencies) < 1.4

    def test_oversubscription_hurts(self):
        at_cores = simulate_phase(
            SimCluster(servers=1, cores_per_server=16, total_rows=15_000_000 * 16),
            SCAN,
            MODEL,
        )
        beyond = simulate_phase(
            SimCluster(servers=1, cores_per_server=16, total_rows=15_000_000 * 64),
            SCAN,
            MODEL,
        )
        assert beyond.total_s > at_cores.total_s * 2.5


class TestColdVsWarm:
    """Figure 6: cold runs pay disk; first partials still arrive early."""

    def test_cold_slower_than_warm(self):
        warm = simulate_query(cluster(), [SCAN], MODEL, cold_columns=0)
        cold = simulate_query(cluster(), [SCAN], MODEL, cold_columns=1)
        assert cold.total_s > warm.total_s

    def test_cold_cost_scales_with_columns(self):
        one = simulate_query(cluster(), [SCAN], MODEL, cold_columns=1)
        five = simulate_query(cluster(), [SCAN], MODEL, cold_columns=5)
        assert five.total_s > one.total_s

    def test_second_phase_is_warm(self):
        single = simulate_query(cluster(), [SCAN], MODEL, cold_columns=1)
        double = simulate_query(cluster(), [SCAN, SCAN], MODEL, cold_columns=1)
        # The second phase adds warm time only (data cache, §5.4).
        warm = simulate_query(cluster(), [SCAN], MODEL, cold_columns=0)
        assert double.total_s == pytest.approx(
            single.total_s + warm.total_s, rel=0.35
        )


class TestProgressiveness:
    """First partials must arrive well before completion at scale."""

    def test_first_partial_early(self):
        big = cluster(rows=10_000_000_000)
        result = simulate_phase(big, SCAN, MODEL)
        assert result.first_partial_s < result.total_s * 0.7

    def test_more_data_more_partials(self):
        # The run must outlast the 0.1 s aggregation cadence for partials to
        # accumulate — use a wide scan, as the paper's larger datasets do.
        wide = SimPhase(kind="scan", columns=8, summary_bytes=800)
        small = simulate_phase(cluster(rows=250_000_000), wide, MODEL)
        large = simulate_phase(cluster(rows=8_000_000_000), wide, MODEL)
        assert large.partials_to_root > small.partials_to_root
        assert large.bytes_to_root > small.bytes_to_root

    def test_sampling_cheaper_than_scan(self):
        scan = simulate_phase(cluster(), SCAN, MODEL)
        sample = simulate_phase(cluster(), SAMPLE, MODEL)
        assert sample.total_s < scan.total_s


class TestQueryComposition:
    def test_phases_add(self):
        one = simulate_query(cluster(), [SCAN], MODEL)
        two = simulate_query(cluster(), [SCAN, SCAN], MODEL)
        assert two.total_s > one.total_s
        assert two.leaf_tasks == 2 * one.leaf_tasks

    def test_first_partial_after_preparation(self):
        # With a prepare phase, nothing renders until it completes.
        render_only = simulate_query(cluster(), [SAMPLE], MODEL)
        with_prepare = simulate_query(cluster(), [SCAN, SAMPLE], MODEL)
        assert with_prepare.first_partial_s > render_only.first_partial_s

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            simulate_query(cluster(), [], MODEL)


class TestCostModel:
    def test_override(self):
        fast = MODEL.with_overrides(scan_ns_per_row_column=0.5)
        assert fast.scan_cost_s(10**9, 1) == pytest.approx(0.5)

    def test_disk_and_transfer(self):
        assert MODEL.disk_load_s(10**9, 1) == pytest.approx(
            8e9 / MODEL.disk_bytes_per_second
        )
        assert MODEL.transfer_s(0) == MODEL.network_latency_s

    def test_calibrate_produces_positive_constants(self):
        model = CostModel.calibrate(rows=200_000)
        assert model.scan_ns_per_row_column > 0
        assert model.sample_ns_per_row > 0
        assert model.sort_ns_per_row > 0


class TestAggregationTree:
    def test_flat_tree_for_small_deployments(self):
        from repro.engine.simulation import aggregation_tree

        shape = aggregation_tree(servers=8, fanout=16)
        assert shape.layers == 0
        assert shape.root_in_degree == 8
        assert shape.aggregation_nodes == 0

    def test_layers_added_until_fanout_met(self):
        from repro.engine.simulation import aggregation_tree

        shape = aggregation_tree(servers=512, fanout=4)
        assert shape.root_in_degree <= 4
        # Every layer shrinks the width by the fanout.
        assert shape.layer_widths == (128, 32, 8, 2)

    def test_hop_latency_grows_with_layers(self):
        from repro.engine.costmodel import CostModel
        from repro.engine.simulation import aggregation_tree

        model = CostModel()
        flat = aggregation_tree(8, 16)
        deep = aggregation_tree(512, 4)
        assert flat.hop_latency_s(model, 800) == 0.0
        assert deep.hop_latency_s(model, 800) > 0.0

    def test_root_bytes_scale_with_in_degree(self):
        from repro.engine.simulation import aggregation_tree

        direct = aggregation_tree(512, 64)
        capped = aggregation_tree(512, 4)
        assert capped.root_bytes_per_round(800) < direct.root_bytes_per_round(800)

    def test_invalid_arguments(self):
        import pytest as _pytest

        from repro.engine.simulation import aggregation_tree

        with _pytest.raises(ValueError):
            aggregation_tree(0, 4)
        with _pytest.raises(ValueError):
            aggregation_tree(8, 1)
