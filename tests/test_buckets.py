"""Bucket description tests: indexing, labels, serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.buckets import (
    DoubleBuckets,
    ExplicitStringBuckets,
    StringBuckets,
    decode_buckets,
)
from repro.core.serialization import Decoder, Encoder


def roundtrip(buckets):
    enc = Encoder()
    buckets.encode(enc)
    return decode_buckets(Decoder(enc.to_bytes()))


class TestDoubleBuckets:
    def test_basic_indexing(self):
        b = DoubleBuckets(0.0, 10.0, 5)
        idx = b.index_numeric(np.array([0.0, 1.9, 2.0, 9.9, 10.0]))
        assert idx.tolist() == [0, 0, 1, 4, 4]

    def test_out_of_range_and_nan(self):
        b = DoubleBuckets(0.0, 10.0, 5)
        idx = b.index_numeric(np.array([-0.1, 10.1, np.nan]))
        assert idx.tolist() == [-1, -1, -1]

    def test_right_edge_closed(self):
        b = DoubleBuckets(0.0, 10.0, 10)
        assert b.index_numeric(np.array([10.0]))[0] == 9

    def test_degenerate_range(self):
        b = DoubleBuckets(5.0, 5.0, 3)
        idx = b.index_numeric(np.array([5.0, 4.9, 5.1]))
        assert idx.tolist() == [0, -1, -1]

    def test_bucket_ranges_partition_span(self):
        b = DoubleBuckets(0.0, 100.0, 4)
        edges = [b.bucket_range(i) for i in range(4)]
        assert edges[0][0] == 0.0
        for (lo1, hi1), (lo2, _) in zip(edges, edges[1:]):
            assert hi1 == pytest.approx(lo2)

    def test_validation(self):
        with pytest.raises(ValueError):
            DoubleBuckets(0, 10, 0)
        with pytest.raises(ValueError):
            DoubleBuckets(10, 0, 5)
        with pytest.raises(ValueError):
            DoubleBuckets(float("nan"), 10, 5)
        with pytest.raises(IndexError):
            DoubleBuckets(0, 10, 5).bucket_range(5)

    def test_equality_and_spec(self):
        assert DoubleBuckets(0, 1, 2) == DoubleBuckets(0, 1, 2)
        assert DoubleBuckets(0, 1, 2) != DoubleBuckets(0, 1, 3)
        assert "DoubleBuckets" in DoubleBuckets(0, 1, 2).spec()

    def test_roundtrip(self):
        b = DoubleBuckets(-3.5, 17.25, 13)
        assert roundtrip(b) == b

    @given(
        st.floats(-1e6, 1e6),
        st.floats(1e-3, 1e6),
        st.integers(1, 200),
        st.floats(0, 1),
    )
    def test_inside_values_always_indexed(self, lo, span, count, t):
        b = DoubleBuckets(lo, lo + span, count)
        value = lo + t * span
        idx = b.index_numeric(np.array([value]))[0]
        assert 0 <= idx < count
        blo, bhi = b.bucket_range(int(idx))
        assert blo - 1e-9 <= value <= bhi + 1e-9 or idx == count - 1


class TestStringBuckets:
    def test_indexing(self):
        b = StringBuckets(["a", "g", "p"])
        assert b.index_of("a") == 0
        assert b.index_of("f") == 0
        assert b.index_of("g") == 1
        assert b.index_of("z") == 2
        assert b.index_of("A") == -1  # below the first boundary

    def test_index_strings_handles_none(self):
        b = StringBuckets(["a", "m"])
        idx = b.index_strings(["a", None, "z"])
        assert idx.tolist() == [0, -1, 1]

    def test_labels(self):
        b = StringBuckets(["a", "m"])
        assert b.label(0) == "[a, m)"
        assert b.label(1) == "[m, ...)"
        with pytest.raises(IndexError):
            b.label(2)

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            StringBuckets(["b", "a"])
        with pytest.raises(ValueError):
            StringBuckets(["a", "a"])
        with pytest.raises(ValueError):
            StringBuckets([])

    def test_roundtrip(self):
        b = StringBuckets(["alpha", "beta", "gamma"])
        assert roundtrip(b) == b


class TestExplicitStringBuckets:
    def test_one_bucket_per_value(self):
        b = ExplicitStringBuckets(["x", "y", "z"])
        assert b.count == 3
        assert b.index_strings(["y", "w", None]).tolist() == [1, -1, -1]
        assert b.label(2) == "z"

    def test_distinct_required(self):
        with pytest.raises(ValueError):
            ExplicitStringBuckets(["a", "a"])

    def test_roundtrip(self):
        b = ExplicitStringBuckets(["UA", "AA", "DL"])
        assert roundtrip(b) == b
