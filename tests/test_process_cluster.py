"""Process-cluster integration: the RPC surface, maps, sessions, attach mode.

Everything here runs against real spawned ``repro worker`` subprocesses —
the multi-server topology of §5.2 on one machine.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.buckets import DoubleBuckets
from repro.data.flights import FlightsSource
from repro.engine.dataset import ExpressionMap, FilterMap, ProjectMap
from repro.engine.local import LocalDataSet
from repro.engine.remote import ProcessCluster, RemoteWorkerProxy, _spawn_env
from repro.engine.rpc import RpcRequest
from repro.sketches.histogram import HistogramSketch
from repro.table.compute import ColumnPredicate
from repro.table.table import Table

pytestmark = pytest.mark.tier2

SOURCE = FlightsSource(4_000, partitions=8, seed=11)
DISTANCE = DoubleBuckets(0, 3000, 10)


@pytest.fixture(scope="module")
def cluster():
    c = ProcessCluster(
        num_workers=2, cores_per_worker=2, aggregation_interval=0.01
    )
    try:
        yield c
    finally:
        c.close()


@pytest.fixture(scope="module")
def dataset(cluster):
    return cluster.load(SOURCE)


@pytest.fixture(scope="module")
def reference() -> Table:
    return Table.concat(SOURCE.load())


class TestRemoteDatasets:
    def test_workers_are_separate_processes(self, cluster):
        pids = cluster.worker_pids()
        assert len(pids) == 2
        assert all(pid is not None and pid != os.getpid() for pid in pids)
        for proxy in cluster.workers:
            assert isinstance(proxy, RemoteWorkerProxy)
            stats = proxy.stats()
            assert stats["pid"] == proxy.pid

    def test_rows_and_schema(self, dataset, reference):
        assert dataset.total_rows == reference.num_rows
        assert [d.name for d in dataset.schema] == [
            d.name for d in reference.schema
        ]

    def test_maps_run_on_the_workers(self, dataset, reference):
        """filter -> derive-expression -> project, all over the wire, then
        a sketch on the derived column; byte-identical to local."""
        chain = [
            FilterMap(ColumnPredicate("Distance", ">", 500.0)),
            ExpressionMap("gain", "DepDelay - ArrDelay"),
            ProjectMap(["gain"]),
        ]
        remote = dataset
        local_table = reference
        for table_map in chain:
            remote = remote.map(table_map)
            local_table = table_map.apply(local_table)
        sketch = HistogramSketch("gain", DoubleBuckets(-60, 60, 8))
        assert (
            remote.sketch(sketch).to_bytes()
            == LocalDataSet(local_table).sketch(sketch).to_bytes()
        )
        assert remote.total_rows == local_table.num_rows

    def test_eviction_rebuilds_via_lineage(self, cluster, dataset, reference):
        cluster.evict_dataset(dataset.dataset_id)
        sketch = HistogramSketch("Distance", DoubleBuckets(0, 3000, 7))
        assert (
            dataset.sketch(sketch).to_bytes()
            == LocalDataSet(reference).sketch(sketch).to_bytes()
        )


class TestSessionsOverProcessWorkers:
    def test_session_rebuild_from_lineage_on_remote_workers(
        self, cluster, reference
    ):
        """An idle-swept session's handle chain rebuilds even though the
        missing shard state lives in worker processes (§5.7): the rebuild
        walks the lineage and every hop goes over the worker wire."""
        from repro.service import SessionManager

        manager = SessionManager(cluster, idle_ttl_seconds=900.0)
        session = manager.get_or_create("remote-user")
        root = session.web.load(SOURCE)
        [ack] = list(
            session.web.execute(
                RpcRequest(
                    1,
                    root,
                    "filter",
                    {
                        "predicate": {
                            "type": "column",
                            "column": "Distance",
                            "op": ">",
                            "value": 1000.0,
                        }
                    },
                )
            )
        )
        derived = ack.payload["handle"]
        spec = {
            "type": "histogram",
            "column": "Distance",
            "buckets": {"type": "double", "min": 0, "max": 3000, "count": 9},
        }
        before = list(
            session.web.execute(
                RpcRequest(2, derived, "sketch", {"sketch": spec})
            )
        )
        assert before[-1].kind == "complete"

        # Lose every layer of soft state: the session's handles AND the
        # workers' shard stores (crash RPC to each worker process).
        assert session.evict_handles() >= 2
        for index in range(len(cluster.workers)):
            cluster.kill_worker(index)

        after = list(
            session.web.execute(
                RpcRequest(3, derived, "sketch", {"sketch": spec})
            )
        )
        assert after[-1].kind == "complete"
        assert after[-1].payload == before[-1].payload

        expected = (
            Table.concat(SOURCE.load())
            .filter(ColumnPredicate("Distance", ">", 1000.0))
        )
        local = LocalDataSet(expected).sketch(
            HistogramSketch("Distance", DoubleBuckets(0, 3000, 9))
        )
        assert after[-1].payload["counts"] == local.counts.tolist()


class TestListenMode:
    def test_attach_to_prestarted_worker_daemons(self):
        """`repro worker --listen` daemons + ProcessCluster(addresses=...):
        the fleet topology where workers outlive any particular root."""
        import json as json_mod

        env = _spawn_env()
        daemons = []
        addresses = []
        try:
            for i in range(2):
                proc = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.cli",
                        "worker",
                        "--listen",
                        "127.0.0.1:0",
                        "--name",
                        f"daemon-{i}",
                        "--cores",
                        "2",
                    ],
                    env=env,
                    stdout=subprocess.PIPE,
                    text=True,
                )
                daemons.append(proc)
                announcement = json_mod.loads(proc.stdout.readline())
                addresses.append(("127.0.0.1", int(announcement["port"])))
            cluster = ProcessCluster(
                addresses=addresses, aggregation_interval=0.01
            )
            try:
                dataset = cluster.load(SOURCE)
                sketch = HistogramSketch("Distance", DISTANCE)
                remote = dataset.sketch(sketch)
                local = LocalDataSet(Table.concat(SOURCE.load())).sketch(sketch)
                assert remote.to_bytes() == local.to_bytes()
                assert {w.name for w in cluster.workers} == {
                    "daemon-0",
                    "daemon-1",
                }
            finally:
                cluster.close()
        finally:
            for proc in daemons:
                proc.terminate()
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
