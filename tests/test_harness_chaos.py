"""Chaos tests: worker processes die mid-query; the engine stays exact.

These are the tier-2 distributed-correctness tests (also selected by the
scheduled CI job): they spawn real subprocess workers, SIGKILL them in the
middle of a streaming sketch, and require the root to converge to the same
final summary a single-process run computes on the same data (§5.7–5.8).
"""

from __future__ import annotations

import pytest

from harness import ChaosRunner
from repro.core.buckets import DoubleBuckets, ExplicitStringBuckets
from repro.sketches.histogram import HistogramSketch
from repro.sketches.stacked import StackedHistogramSketch

pytestmark = pytest.mark.tier2

DISTANCE = DoubleBuckets(0, 3000, 12)


class TestSigkillMidSketch:
    def test_histogram_survives_worker_sigkill(self):
        """SIGKILL one worker after the first streamed partial: the root
        respawns it, lineage replays its shards, and the final summary is
        byte-identical to the single-process ground truth."""
        sketch = HistogramSketch("Distance", DISTANCE)
        with ChaosRunner() as chaos:
            outcome = chaos.run_with_kill(sketch, kill_workers=(0,))
        assert outcome.partials >= 1
        assert len(outcome.killed_pids) == 1
        assert outcome.respawned, "the dead worker was not respawned"
        assert outcome.converged, (
            "root result diverged from the single-process reference after "
            f"killing pid {outcome.killed_pids}"
        )

    def test_two_column_sketch_survives_worker_sigkill(self):
        """Same fault, richer summary type (matrix counts cross the wire)."""
        sketch = StackedHistogramSketch(
            "Distance",
            DISTANCE,
            "Airline",
            ExplicitStringBuckets(["AA", "DL", "UA", "WN"]),
        )
        with ChaosRunner(rows=16_000, partitions=9) as chaos:
            outcome = chaos.run_with_kill(sketch, kill_workers=(0,))
        assert outcome.respawned
        assert outcome.converged


class TestSoftStateLoss:
    def test_crash_rpc_then_requery_replays_lineage(self):
        """A soft crash (state wiped, process alive) on every worker: the
        next query replays lineage on the workers and is still exact."""
        sketch = HistogramSketch("DepDelay", DoubleBuckets(-30, 120, 10))
        with ChaosRunner(
            rows=8_000, partitions=8, num_workers=2, per_shard_seconds=0.0
        ) as chaos:
            before = chaos.dataset.sketch(sketch)
            for index in range(len(chaos.cluster.workers)):
                chaos.cluster.kill_worker(index)  # crash RPC: store wiped
            # A different bucketing dodges the root's computation cache, so
            # the workers genuinely re-summarize replayed shards.
            after_sketch = HistogramSketch("DepDelay", DoubleBuckets(-30, 120, 20))
            after = chaos.dataset.sketch(after_sketch)
            reference = chaos.reference(after_sketch)
        assert before.to_bytes() == chaos.reference(sketch).to_bytes()
        assert after.to_bytes() == reference.to_bytes()
