"""Service transport tests: framing, concurrent sessions, wire acceptance."""

from __future__ import annotations

import io
import threading

import pytest

from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.service import (
    ServiceClient,
    ServiceError,
    ServiceServer,
    encode_frame,
    read_frame_blocking,
)

ROWS = 20_000


@pytest.fixture(scope="module")
def server():
    server = ServiceServer(
        Cluster(num_workers=2, cores_per_worker=2, aggregation_interval=0.02),
        default_source=FlightsSource(ROWS, partitions=16, seed=3),
        max_concurrent=4,
        idle_ttl_seconds=900.0,
    )
    server.start_background()
    yield server
    server.close()


@pytest.fixture
def client(server):
    with ServiceClient(*server.address) as client:
        yield client


def hist_spec(per_shard_seconds: float = 0.0) -> dict:
    spec = {
        "type": "histogram",
        "column": "Distance",
        "buckets": {"type": "double", "min": 0, "max": 6000, "count": 12},
    }
    if per_shard_seconds > 0:
        spec = {"type": "slow", "perShardSeconds": per_shard_seconds, "inner": spec}
    return spec


class TestFraming:
    def test_frame_round_trip(self):
        payload = b'{"hello": "world"}' * 50
        stream = io.BytesIO(encode_frame(payload) + encode_frame(b"x"))
        assert read_frame_blocking(stream) == payload
        assert read_frame_blocking(stream) == b"x"
        assert read_frame_blocking(stream) is None

    def test_truncated_frame_detected(self):
        stream = io.BytesIO(encode_frame(b"abcdef")[:-2])
        with pytest.raises(ServiceError, match="inside a frame body"):
            read_frame_blocking(stream)


class TestBasicRpc:
    def test_hello_assigns_session(self, client):
        assert client.session_id.startswith("sess-")
        assert client.ping()

    def test_load_schema_rows(self, client):
        handle = client.load()
        names = [c["name"] for c in client.schema(handle)]
        assert "Distance" in names and "Airline" in names
        assert client.row_count(handle) == ROWS

    def test_sketch_streams_monotonic_progress(self, client):
        handle = client.load()
        replies = list(client.sketch(handle, hist_spec(0.01)).replies(timeout=60))
        assert replies[-1].kind == "complete"
        assert replies[-1].progress == 1.0
        progresses = [r.progress for r in replies]
        assert progresses == sorted(progresses)
        assert len(replies) > 1  # progressive, not one-shot
        total = sum(replies[-1].payload["counts"])
        assert 0 < total <= ROWS

    def test_unknown_handle_error_envelope_keeps_session_alive(self, client):
        with pytest.raises(ServiceError, match="unknown remote object"):
            client.row_count("obj-404")
        assert client.ping()  # the connection survived the bad request

    def test_malformed_frame_gets_protocol_error(self, server):
        import socket as socket_mod

        with socket_mod.create_connection(server.address, timeout=5) as sock:
            sock.sendall(encode_frame(b"this is not json"))
            stream = sock.makefile("rb")
            frame = read_frame_blocking(stream)
            assert b'"protocol"' in frame

    def test_explicit_cancel_rpc(self, client):
        handle = client.load()
        pending = client.sketch(handle, hist_spec(0.05))
        next(pending.replies(timeout=60))  # the query is visibly running
        assert client.cancel(pending.request_id) is True
        terminal = pending.result(raise_on_error=False)
        assert terminal.kind in ("cancelled", "complete")

    def test_stats_rpc(self, client):
        handle = client.load()
        client.row_count(handle)
        stats = client.stats()
        assert stats["type"] == "serviceStats"
        assert stats["scheduler"]["admitted"] >= 1
        assert stats["cluster"]["workers"] == 2


class TestSessions:
    def test_session_resumes_across_connections(self, server):
        with ServiceClient(*server.address) as first:
            session_id = first.session_id
            handle = first.load()
            assert first.row_count(handle) == ROWS
        # Reconnect with the same session id: the handle namespace is
        # still there (soft state lives on the server, not the socket).
        with ServiceClient(*server.address, session=session_id) as second:
            assert second.session_id == session_id
            assert second.row_count(handle) == ROWS

    def test_sessions_share_the_default_dataset(self, server):
        with ServiceClient(*server.address) as a, ServiceClient(
            *server.address
        ) as b:
            a.load()
            b.load()
            stats = a.stats()
            assert stats["sessions"]["sharedDatasets"] >= 1


class TestConcurrentSessions:
    def test_two_sessions_stream_concurrently(self, server):
        """The acceptance scenario: two sessions, overlapping streaming
        sketches, each seeing monotonically-progressing partials."""
        results: dict[str, list] = {}
        errors: list[Exception] = []

        def explore(name: str) -> None:
            try:
                with ServiceClient(*server.address) as client:
                    handle = client.load()
                    replies = list(
                        client.sketch(handle, hist_spec(0.01)).replies(timeout=60)
                    )
                    results[name] = replies
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=explore, args=(f"user-{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert set(results) == {"user-0", "user-1"}
        for replies in results.values():
            assert replies[-1].kind == "complete"
            progresses = [r.progress for r in replies]
            assert progresses == sorted(progresses)
            assert sum(replies[-1].payload["counts"]) > 0

    def test_newest_query_wins_isolated_per_session(self, server):
        """Second half of the acceptance criteria: a superseding sketch on
        one session cancels its predecessor (visible in scheduler metrics)
        without affecting the other session."""
        preempted_before = server.scheduler.metrics.preempted
        with ServiceClient(*server.address) as alice, ServiceClient(
            *server.address
        ) as bob:
            ha, hb = alice.load(), bob.load()
            bob_query = bob.sketch(hb, hist_spec(0.01))
            stale = alice.sketch(ha, hist_spec(0.05))
            next(stale.replies(timeout=60))  # streaming has visibly begun
            fresh = alice.sketch(ha, hist_spec(0.0))
            stale_terminal = stale.result(timeout=60, raise_on_error=False)
            fresh_terminal = fresh.result(timeout=60)
            bob_terminal = bob_query.result(timeout=60)
            assert stale_terminal.kind == "cancelled"
            assert stale_terminal.code == "superseded"
            assert fresh_terminal.kind == "complete"
            # Bob's overlapping query is untouched by Alice's preemption.
            assert bob_terminal.kind == "complete"
            assert sum(bob_terminal.payload["counts"]) > 0
            assert server.scheduler.metrics.preempted == preempted_before + 1
            stats = alice.stats()
            alice_stats = next(
                s
                for s in stats["sessions"]["sessions"]
                if s["session"] == alice.session_id
            )
            assert alice_stats["metrics"]["preempted"] == 1


class TestWorkerFailure:
    def test_worker_crash_mid_query_over_the_wire(self, server):
        with ServiceClient(*server.address) as client:
            handle = client.load()
            pending = client.sketch(handle, hist_spec(0.02))
            next(pending.replies(timeout=60))
            server.cluster.kill_worker(1)
            terminal = pending.result(timeout=60)
            assert terminal.kind == "complete"
            # The next query replays the lost shards from lineage (§5.7).
            again = client.sketch(handle, hist_spec()).result(timeout=60)
            assert again.payload["counts"] == terminal.payload["counts"]


class TestCliService:
    def test_client_command_loop(self, server):
        from repro.cli import client_main

        out = io.StringIO()
        host, port = server.address
        client_main(
            [
                "--host", host, "--port", str(port),
                "--commands",
                "load; rows; hist Distance 0 6000 6; distinct Airline; stats",
            ],
            out=out,
        )
        text = out.getvalue()
        assert f"{ROWS:,} rows" in text
        assert "distinct values" in text
        assert "admitted" in text

    def test_serve_parser_defaults(self):
        """`repro serve --help`-level sanity: the subcommand dispatches."""
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["serve", "--help"])
