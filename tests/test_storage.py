"""Storage layer tests: columnar format, CSV, JSON-lines, syslog, sources."""

from __future__ import annotations

import os
from datetime import datetime, timezone

import numpy as np
import pytest

from repro.data.logs import generate_syslog_lines
from repro.errors import SnapshotViolationError, StorageError
from repro.storage import columnar, csv_io, jsonl_io, logs_io
from repro.storage.loader import (
    ColumnarDatasetSource,
    CsvSource,
    SyslogSource,
    TableSource,
)
from repro.table.compute import ColumnPredicate
from repro.table.schema import ContentsKind
from repro.table.table import Table


class TestColumnarFormat:
    def test_roundtrip_all_kinds(self, small_table, tmp_path):
        path = str(tmp_path / "t.hvc")
        columnar.write_table(small_table, path)
        back = columnar.read_table(path)
        assert back.schema == small_table.schema
        assert back.to_pydict() == small_table.to_pydict()

    def test_dates_roundtrip(self, tmp_path):
        table = Table.from_pydict(
            {"d": [datetime(2019, 7, 10, tzinfo=timezone.utc), None]}
        )
        path = str(tmp_path / "d.hvc")
        columnar.write_table(table, path)
        back = columnar.read_table(path)
        assert back.to_pydict() == table.to_pydict()

    def test_filtered_table_writes_members_only(self, small_table, tmp_path):
        filtered = small_table.filter(ColumnPredicate("x", ">", 2))
        path = str(tmp_path / "f.hvc")
        columnar.write_table(filtered, path)
        back = columnar.read_table(path)
        assert back.num_rows == filtered.num_rows
        assert back.universe_size == filtered.num_rows

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.hvc"
        path.write_bytes(b"NOPE1234")
        with pytest.raises(StorageError):
            columnar.read_table(str(path))

    def test_dataset_roundtrip(self, small_table, tmp_path):
        directory = str(tmp_path / "ds")
        shards = small_table.split(3)
        columnar.write_dataset(shards, directory)
        back = columnar.read_dataset(directory)
        assert len(back) == 3
        assert sum(t.num_rows for t in back) == small_table.num_rows

    def test_snapshot_violation_detected(self, small_table, tmp_path):
        directory = str(tmp_path / "snap")
        columnar.write_dataset(small_table.split(2), directory)
        # Mutate one partition under the snapshot.
        victim = os.path.join(directory, "part-00000.hvc")
        with open(victim, "ab") as f:
            f.write(b"EXTRA")
        with pytest.raises(SnapshotViolationError):
            columnar.read_dataset(directory)
        # Unverified read still works (caller takes responsibility).
        assert columnar.read_dataset(directory, verify_snapshot=False)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            columnar.read_dataset(str(tmp_path))


class TestCsv:
    def test_roundtrip_with_inference(self, small_table, tmp_path):
        path = str(tmp_path / "t.csv")
        csv_io.write_csv(small_table, path)
        back = csv_io.read_csv(path)
        assert back.schema.kind("x") is ContentsKind.INTEGER
        assert back.schema.kind("y") is ContentsKind.DOUBLE
        assert back.schema.kind("name") is ContentsKind.STRING
        assert back.to_pydict() == small_table.to_pydict()

    def test_date_inference(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("day,event\n2019-07-10,a\n2019-07-11,b\n")
        table = csv_io.read_csv(str(path))
        assert table.schema.kind("day") is ContentsKind.DATE
        assert table.column("day").value(0) == datetime(
            2019, 7, 10, tzinfo=timezone.utc
        )

    def test_missing_tokens(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("a,b\n1,x\nNA,null\n3,\n")
        table = csv_io.read_csv(str(path))
        assert table.to_pydict() == {"a": [1, None, 3], "b": ["x", None, None]}

    def test_kind_override(self, tmp_path):
        path = tmp_path / "k.csv"
        path.write_text("a\n1\n2\n")
        table = csv_io.read_csv(str(path), kinds={"a": ContentsKind.DOUBLE})
        assert table.schema.kind("a") is ContentsKind.DOUBLE

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(StorageError):
            csv_io.read_csv(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(StorageError):
            csv_io.read_csv(str(path))


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        table = Table.from_pydict({"a": [1, 2], "b": ["x", None]})
        path = str(tmp_path / "t.jsonl")
        jsonl_io.write_jsonl(table, path)
        back = jsonl_io.read_jsonl(path)
        assert back.to_pydict() == table.to_pydict()

    def test_union_of_keys(self, tmp_path):
        path = tmp_path / "u.jsonl"
        path.write_text('{"a": 1}\n{"b": "x"}\n')
        table = jsonl_io.read_jsonl(str(path))
        assert table.column_names == ["a", "b"]
        assert table.row(0)["b"] is None

    def test_iso_strings_become_dates(self, tmp_path):
        path = tmp_path / "d.jsonl"
        path.write_text('{"t": "2019-07-10T12:00:00"}\n')
        table = jsonl_io.read_jsonl(str(path))
        assert table.schema.kind("t") is ContentsKind.DATE

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(StorageError):
            jsonl_io.read_jsonl(str(path))


class TestSyslog:
    def test_parse_generated_lines(self, tmp_path):
        lines = generate_syslog_lines(50, seed=1)
        path = tmp_path / "app.log"
        path.write_text("\n".join(lines) + "\n")
        table = logs_io.read_syslog(str(path))
        assert table.num_rows == 50
        assert table.schema.kind("Timestamp") is ContentsKind.DATE
        assert table.schema.kind("Severity") is ContentsKind.CATEGORY
        severities = set(table.to_pydict()["Severity"])
        assert severities <= set(logs_io.SEVERITIES)

    def test_parse_single_line(self):
        record = logs_io.parse_syslog_line(
            "<14>1 2019-03-01T12:00:00Z gandalf authd 991 - - user login ok"
        )
        assert record["Severity"] == "info"
        assert record["Facility"] == 1
        assert record["Host"] == "gandalf"
        assert record["Message"] == "user login ok"

    def test_unparseable_line(self):
        with pytest.raises(StorageError):
            logs_io.parse_syslog_line("this is not syslog")


class TestSources:
    def test_table_source_shards(self, small_table):
        source = TableSource([small_table], shards_per_table=3)
        shards = source.load()
        assert len(shards) == 3
        assert sum(s.num_rows for s in shards) == small_table.num_rows
        # Reload produces the same partitioning (replay requirement).
        again = source.load()
        assert [s.num_rows for s in shards] == [s.num_rows for s in again]

    def test_csv_source_glob(self, small_table, tmp_path):
        for i in range(3):
            csv_io.write_csv(small_table, str(tmp_path / f"part{i}.csv"))
        source = CsvSource(str(tmp_path / "part*.csv"))
        assert len(source.load()) == 3
        with pytest.raises(StorageError):
            CsvSource(str(tmp_path / "nope*.csv")).load()

    def test_columnar_source(self, small_table, tmp_path):
        directory = str(tmp_path / "cds")
        columnar.write_dataset(small_table.split(2), directory)
        source = ColumnarDatasetSource(directory)
        assert len(source.load()) == 2
        assert "ColumnarDatasetSource" in source.spec()

    def test_syslog_source(self, tmp_path):
        lines = generate_syslog_lines(10, seed=2)
        (tmp_path / "a.log").write_text("\n".join(lines) + "\n")
        source = SyslogSource(str(tmp_path / "*.log"))
        assert source.load()[0].num_rows == 10

    def test_load_slice_matches_full_load(self, small_table, tmp_path):
        """The shard-placement law: a worker's load_slice must equal the
        root's load()[index::count] slice, partition for partition —
        including the partition-granular overrides."""
        from repro.data.flights import FlightsSource

        for i in range(5):
            csv_io.write_csv(small_table, str(tmp_path / f"part{i}.csv"))
        sources = [
            TableSource([small_table], shards_per_table=5),
            CsvSource(str(tmp_path / "part*.csv")),
            FlightsSource(1_000, partitions=7, seed=3),
            FlightsSource(3, partitions=5, seed=3),  # some empty partitions
        ]
        for source in sources:
            full = source.load()
            for count in (1, 2, 3):
                for index in range(count):
                    sliced = source.load_slice(index, count)
                    expected = full[index::count]
                    assert [s.shard_id for s in sliced] == [
                        s.shard_id for s in expected
                    ], source.spec()
                    assert [s.num_rows for s in sliced] == [
                        s.num_rows for s in expected
                    ], source.spec()
        with pytest.raises(ValueError):
            CsvSource(str(tmp_path / "part*.csv")).load_slice(2, 2)
