"""Next-items, quantile and find-text sketch tests (the tabular view)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialization import Decoder, Encoder
from repro.sketches.find_text import FindResult, FindTextSketch
from repro.sketches.next_items import NextKList, NextKSketch
from repro.sketches.quantile import QuantileSummary, SampleQuantileSketch
from repro.table.compute import StringMatchPredicate
from repro.table.sort import RecordOrder
from repro.table.table import Table


def exact_groups(table, order):
    """Reference: distinct sort-column tuples with counts, in order."""
    rows = table.members.indices()
    columns = [table.column(c) for c in order.columns]
    tuples = [tuple(col.value(int(r)) for col in columns) for r in rows]
    counted: dict = {}
    for t in tuples:
        counted[t] = counted.get(t, 0) + 1
    keys = sorted(counted, key=lambda t: order.key_from_values(t))
    return [(k, counted[k]) for k in keys]


class TestNextK:
    def test_first_page_matches_reference(self, flights):
        order = RecordOrder.of("Airline", "DepDelay")
        sketch = NextKSketch(order, 10)
        result = sketch.summarize(flights)
        expected = exact_groups(flights, order)[:10]
        assert list(zip(result.rows, result.counts)) == expected

    @pytest.mark.parametrize("parts", [2, 5, 11])
    def test_partition_invariance(self, flights, parts):
        order = RecordOrder.of("Origin", "Dest")
        sketch = NextKSketch(order, 8)
        whole = sketch.summarize(flights)
        merged = sketch.merge_all(
            [sketch.summarize(s) for s in flights.split(parts)]
        )
        assert merged.rows == whole.rows
        assert merged.counts == whole.counts
        assert merged.scanned == whole.scanned

    def test_start_key_pages_forward(self, small_table):
        order = RecordOrder.of("x")
        first = NextKSketch(order, 3).summarize(small_table)
        start = order.key_from_values(first.rows[-1])
        second = NextKSketch(order, 3, start).summarize(small_table)
        assert second.rows[0][0] > first.rows[-1][0] or first.rows[-1][0] is None
        # preceding counts the rows on earlier pages
        assert second.preceding == sum(first.counts)

    def test_inclusive_start(self, small_table):
        order = RecordOrder.of("x")
        key = order.key_from_values((2,))
        exclusive = NextKSketch(order, 3, key).summarize(small_table)
        inclusive = NextKSketch(order, 3, key, inclusive=True).summarize(small_table)
        assert exclusive.rows[0] == (3,)
        assert inclusive.rows[0] == (2,)

    def test_duplicate_aggregation(self, small_table):
        order = RecordOrder.of("name")
        result = NextKSketch(order, 10).summarize(small_table)
        by_name = dict(zip([r[0] for r in result.rows], result.counts))
        assert by_name["alice"] == 3
        assert by_name["bob"] == 2
        assert by_name[None] == 1

    def test_descending_order(self, small_table):
        order = RecordOrder.of("x", ascending=False)
        result = NextKSketch(order, 3).summarize(small_table)
        assert [r[0] for r in result.rows] == [5, 4, 3]

    def test_missing_sorts_first_ascending(self, small_table):
        order = RecordOrder.of("x")
        result = NextKSketch(order, 1).summarize(small_table)
        assert result.rows[0] == (None,)

    def test_empty_shard(self, small_table):
        from repro.table.compute import ColumnPredicate

        empty = small_table.filter(ColumnPredicate("x", ">", 1000))
        order = RecordOrder.of("x")
        result = NextKSketch(order, 5).summarize(empty)
        assert result.rows == []
        merged = NextKSketch(order, 5).merge(
            result, NextKSketch(order, 5).summarize(small_table)
        )
        assert len(merged.rows) == 5

    def test_serialization(self, small_table):
        order = RecordOrder.of("name", "x")
        result = NextKSketch(order, 4).summarize(small_table)
        enc = Encoder()
        result.encode(enc)
        back = NextKList.decode(Decoder(enc.to_bytes()))
        assert back.rows == result.rows
        assert back.counts == result.counts
        assert back.order == order

    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=60),
        st.integers(1, 8),
        st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_merge_equals_whole(self, values, k, parts):
        table = Table.from_pydict({"v": values})
        order = RecordOrder.of("v")
        sketch = NextKSketch(order, k)
        whole = sketch.summarize(table)
        merged = sketch.merge_all([sketch.summarize(s) for s in table.split(parts)])
        assert whole.rows == merged.rows
        assert whole.counts == merged.counts


class TestQuantile:
    def test_exact_when_rate_one(self, medium_numeric):
        order = RecordOrder.of("value")
        sketch = SampleQuantileSketch(order, rate=1.0, max_size=200_000)
        summary = sketch.summarize(medium_numeric)
        median = summary.quantile(0.5)[0]
        true_median = float(np.median(medium_numeric.column("value").data))
        assert abs(median - true_median) < 1.0

    def test_sampled_quantiles_close(self, medium_numeric):
        order = RecordOrder.of("value")
        sketch = SampleQuantileSketch(order, rate=0.2, seed=4)
        summary = sketch.merge_all(
            [sketch.summarize(s) for s in medium_numeric.split(8)]
        )
        for fraction in (0.1, 0.5, 0.9):
            estimate = summary.quantile(fraction)[0]
            truth = float(
                np.quantile(medium_numeric.column("value").data, fraction)
            )
            assert abs(estimate - truth) < 2.5, fraction

    def test_samples_stay_sorted_through_merge(self, medium_numeric):
        order = RecordOrder.of("value")
        sketch = SampleQuantileSketch(order, rate=0.05, seed=1)
        summary = sketch.merge_all(
            [sketch.summarize(s) for s in medium_numeric.split(6)]
        )
        values = [s[0] for s in summary.samples]
        assert values == sorted(values)

    def test_size_bounded(self, medium_numeric):
        order = RecordOrder.of("value")
        sketch = SampleQuantileSketch(order, rate=1.0, max_size=100)
        summary = sketch.merge_all(
            [sketch.summarize(s) for s in medium_numeric.split(4)]
        )
        assert len(summary.samples) <= 200

    def test_quantile_edges(self):
        order = RecordOrder.of("v")
        summary = QuantileSummary(order=order, samples=[(1,), (2,), (3,)])
        assert summary.quantile(0.0) == (1,)
        assert summary.quantile(1.0) == (3,)
        assert summary.quantile(-5) == (1,)
        assert QuantileSummary(order=order).quantile(0.5) is None

    def test_serialization(self, small_table):
        order = RecordOrder.of("x")
        sketch = SampleQuantileSketch(order, rate=1.0)
        summary = sketch.summarize(small_table)
        enc = Encoder()
        summary.encode(enc)
        back = QuantileSummary.decode(Decoder(enc.to_bytes()))
        assert back.samples == summary.samples


class TestFindText:
    @pytest.fixture
    def table(self):
        return Table.from_pydict(
            {
                "s": ["gandalf", "frodo", "gimli", "Gandalf", "legolas", None],
                "n": [1, 2, 3, 4, 5, 6],
            }
        )

    def test_finds_first_in_order(self, table):
        predicate = StringMatchPredicate("s", "gandalf", case_sensitive=False)
        order = RecordOrder.of("n")
        result = FindTextSketch(predicate, order).summarize(table)
        assert result.first_match == (1,)
        assert result.matches_after == 2
        assert result.matches_before == 0

    def test_start_key_skips_earlier_matches(self, table):
        predicate = StringMatchPredicate("s", "gandalf", case_sensitive=False)
        order = RecordOrder.of("n")
        start = order.key_from_values((1,))
        result = FindTextSketch(predicate, order, start).summarize(table)
        assert result.first_match == (4,)
        assert result.matches_before == 1
        assert result.matches_after == 1

    def test_no_match(self, table):
        predicate = StringMatchPredicate("s", "sauron")
        order = RecordOrder.of("n")
        result = FindTextSketch(predicate, order).summarize(table)
        assert result.first_match is None
        assert result.total_matches == 0

    def test_merge_picks_smallest_key(self, table):
        predicate = StringMatchPredicate("s", "g")  # gandalf, gimli, legolas...
        order = RecordOrder.of("n")
        sketch = FindTextSketch(predicate, order)
        merged = sketch.merge_all([sketch.summarize(s) for s in table.split(3)])
        whole = sketch.summarize(table)
        assert merged.first_match == whole.first_match
        assert merged.total_matches == whole.total_matches

    def test_serialization(self, table):
        predicate = StringMatchPredicate("s", "frodo")
        order = RecordOrder.of("n")
        result = FindTextSketch(predicate, order).summarize(table)
        enc = Encoder()
        result.encode(enc)
        back = FindResult.decode(Decoder(enc.to_bytes()))
        assert back.first_match == result.first_match
        assert back.matches_after == result.matches_after
