"""Property-based round-trips for every storage format (hypothesis).

The storage layer is Hillview's only persistent contract (§2): a format
that silently corrupts a cell corrupts every downstream vizketch.  The
binary columnar format and SQL must be bit-faithful; the text formats
(CSV, JSON-lines) must preserve values up to their documented encodings.
"""

from __future__ import annotations

import math
from datetime import datetime, timezone

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import columnar, csv_io, jsonl_io, sql_io
from repro.table.schema import ContentsKind
from repro.table.table import Table

# Whole-second UTC datetimes: the common denominator every format stores.
datetimes = st.datetimes(
    min_value=datetime(1980, 1, 2),
    max_value=datetime(2100, 1, 1),
).map(lambda d: d.replace(microsecond=0, fold=0, tzinfo=timezone.utc))

# Text cells avoid the CSV reader's missing-value tokens and delimiters.
texts = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x2FF
    ),
    min_size=1,
    max_size=12,
)

finite_doubles = st.floats(
    allow_nan=False, allow_infinity=False, width=32, min_value=-1e6, max_value=1e6
)

tables = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-(10**12), 10**12)),
        st.one_of(st.none(), finite_doubles),
        st.one_of(st.none(), texts),
        st.one_of(st.none(), datetimes),
    ),
    min_size=1,
    max_size=30,
).map(
    lambda rows: Table.from_pydict(
        {
            "i": [r[0] for r in rows],
            "d": [r[1] for r in rows],
            "s": [r[2] for r in rows],
            "t": [r[3] for r in rows],
        },
        kinds={
            "i": ContentsKind.INTEGER,
            "d": ContentsKind.DOUBLE,
            "s": ContentsKind.STRING,
            "t": ContentsKind.DATE,
        },
    )
)


def assert_cells_close(original: Table, restored: Table, exact: bool) -> None:
    assert restored.schema == original.schema
    assert restored.num_rows == original.num_rows
    left, right = original.to_pydict(), restored.to_pydict()
    for name in left:
        for a, b in zip(left[name], right[name]):
            if a is None or b is None:
                assert a is None and b is None, (name, a, b)
            elif isinstance(a, float) and not exact:
                assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12), (name, a, b)
            else:
                assert a == b, (name, a, b)


class TestBitFaithfulFormats:
    @given(table=tables)
    @settings(max_examples=40, deadline=None)
    def test_columnar(self, table, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("hvc") / "t.hvc")
        columnar.write_table(table, path)
        assert_cells_close(table, columnar.read_table(path), exact=True)

    @given(table=tables)
    @settings(max_examples=30, deadline=None)
    def test_sql(self, table, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("sql") / "t.db")
        sql_io.write_sql(path, "t", table)
        [restored] = sql_io.read_sql(path, "t")
        assert_cells_close(table, restored, exact=True)


class TestTextFormats:
    @given(table=tables)
    @settings(max_examples=30, deadline=None)
    def test_jsonl(self, table, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("jsonl") / "t.jsonl")
        jsonl_io.write_jsonl(table, path)
        restored = jsonl_io.read_jsonl(path)
        # JSON-lines re-infers kinds; values must match under the original
        # schema's coercions.
        assert restored.num_rows == table.num_rows
        left = table.to_pydict()
        right = restored.to_pydict()
        for name in ("i", "t"):
            assert right[name] == left[name], name
        for a, b in zip(left["d"], right["d"]):
            if a is None:
                assert b is None
            else:
                assert math.isclose(a, float(b), rel_tol=1e-9)

    @given(table=tables)
    @settings(max_examples=30, deadline=None)
    def test_csv_with_declared_kinds(self, table, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("csv") / "t.csv")
        csv_io.write_csv(table, path)
        kinds = {d.name: d.kind for d in table.schema}
        restored = csv_io.read_csv(path, kinds=kinds)
        assert_cells_close(table, restored, exact=False)
