"""Rendering tests: canvases, bar heights, CDF pixels, color scales."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buckets import DoubleBuckets
from repro.core.resolution import Resolution
from repro.render.ascii_art import (
    cdf_ascii,
    heatmap_ascii,
    histogram_ascii,
    table_ascii,
)
from repro.render.cdf_render import cdf_pixels, render_cdf
from repro.render.colors import LinearColorScale, LogColorScale
from repro.render.heatmap_render import render_heatmap
from repro.render.histogram_render import (
    bar_heights,
    render_histogram,
    render_stacked_histogram,
)
from repro.render.pixels import PixelCanvas
from repro.sketches.heatmap import HeatmapSummary
from repro.sketches.histogram import HistogramSummary
from repro.sketches.next_items import NextKList
from repro.sketches.stacked import StackedHistogramSummary
from repro.table.sort import RecordOrder


class TestPixelCanvas:
    def test_bar_and_column_height(self):
        canvas = PixelCanvas(10, 20)
        canvas.draw_vertical_bar(2, 3, 7)
        assert canvas.column_height(2) == 7
        assert canvas.column_height(4) == 7
        assert canvas.column_height(5) == 0

    def test_out_of_bounds_clipped(self):
        canvas = PixelCanvas(5, 5)
        canvas.fill_rect(-2, -2, 20, 20, 3)
        assert canvas.nonzero_fraction() == 1.0
        canvas.set(100, 100)  # silently ignored

    def test_equality(self):
        a, b = PixelCanvas(4, 4), PixelCanvas(4, 4)
        assert a == b
        b.set(0, 0)
        assert a != b

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            PixelCanvas(0, 5)


class TestBarHeights:
    def test_largest_bar_reaches_full_height(self):
        heights = bar_heights(np.array([10.0, 5.0, 2.5]), 100)
        assert heights[0] == 100
        assert heights[1] == 50
        assert heights[2] == 25

    def test_nonzero_buckets_visible(self):
        heights = bar_heights(np.array([10_000.0, 1.0]), 50)
        assert heights[1] == 1  # tiny but visible

    def test_empty_counts(self):
        assert bar_heights(np.zeros(4), 50).tolist() == [0, 0, 0, 0]
        assert bar_heights(np.array([]), 50).tolist() == []


class TestHistogramRendering:
    def test_canvas_matches_heights(self):
        summary = HistogramSummary(
            counts=np.array([10, 20, 5], dtype=np.int64), sampled_rows=35
        )
        buckets = DoubleBuckets(0, 3, 3)
        rendering = render_histogram(summary, buckets, Resolution(30, 40))
        bar_width = 10
        for i, height in enumerate(rendering.heights):
            assert rendering.canvas.column_height(i * bar_width) == height

    def test_scaling_by_rate(self):
        summary = HistogramSummary(
            counts=np.array([10, 20], dtype=np.int64), sampled_rows=30
        )
        buckets = DoubleBuckets(0, 2, 2)
        rendering = render_histogram(summary, buckets, Resolution(20, 50), rate=0.1)
        assert rendering.counts.tolist() == [100.0, 200.0]


class TestCdfRendering:
    def test_pixels_monotone(self):
        fractions = np.linspace(0, 1, 60)
        pixels = cdf_pixels(fractions, 100)
        assert np.all(np.diff(pixels) >= 0)
        assert pixels[0] == 0
        assert pixels[-1] == 99

    def test_render_sets_one_pixel_per_column(self):
        summary = HistogramSummary(
            counts=np.ones(50, dtype=np.int64), sampled_rows=50
        )
        rendering = render_cdf(summary, Resolution(50, 30))
        assert len(rendering.y_pixels) == 50
        for x in range(50):
            assert (rendering.canvas.pixels[:, x] != 0).sum() == 1


class TestStackedRendering:
    def make_summary(self):
        return StackedHistogramSummary(
            bar_counts=np.array([30, 10], dtype=np.int64),
            cell_counts=np.array([[20, 10], [5, 5]], dtype=np.int64),
            y_missing=np.zeros(2, dtype=np.int64),
            sampled_rows=40,
        )

    def test_segments_stack_to_bar(self):
        rendering = render_stacked_histogram(
            self.make_summary(), Resolution(20, 60)
        )
        assert rendering.heights[0] == 60  # largest bar at full height
        assert rendering.segments[0].sum() == pytest.approx(60, abs=1)

    def test_normalized_bars_full_height(self):
        rendering = render_stacked_histogram(
            self.make_summary(), Resolution(20, 60), normalized=True
        )
        assert rendering.heights.tolist() == [60, 60]
        assert rendering.segments[1].tolist() == [30, 30]

    def test_normalized_requires_exact(self):
        with pytest.raises(ValueError):
            render_stacked_histogram(
                self.make_summary(), Resolution(20, 60), rate=0.5, normalized=True
            )


class TestColorScales:
    def test_linear_shades(self):
        scale = LinearColorScale(100.0, colors=20)
        shades = scale.shade(np.array([0.0, 1.0, 50.0, 100.0]))
        assert shades[0] == 0  # empty stays background
        assert shades[1] == 1  # rare but visible
        assert shades[2] == 10
        assert shades[3] == 19

    def test_log_scale_compresses(self):
        scale = LogColorScale(10_000.0, colors=20)
        shades = scale.shade(np.array([1.0, 10.0, 100.0, 10_000.0]))
        assert shades[-1] == 19
        diffs = np.diff(shades)
        assert (diffs > 0).all()
        assert not scale.supports_sampling

    def test_color_count_validated(self):
        with pytest.raises(ValueError):
            LinearColorScale(1.0, colors=1)


class TestHeatmapRendering:
    def test_blocks_painted(self):
        summary = HeatmapSummary(
            counts=np.array([[5, 0], [0, 10]], dtype=np.int64), sampled_rows=15
        )
        rendering = render_heatmap(summary, Resolution(6, 6), bin_pixels=3)
        assert rendering.shades[0, 0] > 0
        assert rendering.shades[0, 1] == 0
        assert rendering.canvas.get(0, 0) == rendering.shades[0, 0]

    def test_log_scale_rejects_sampling(self):
        summary = HeatmapSummary(counts=np.ones((2, 2), dtype=np.int64))
        with pytest.raises(ValueError):
            render_heatmap(summary, Resolution(6, 6), rate=0.5, log_scale=True)


class TestAscii:
    def test_histogram_ascii_has_bars(self):
        summary = HistogramSummary(
            counts=np.array([1, 5, 10], dtype=np.int64), sampled_rows=16
        )
        art = histogram_ascii(summary, DoubleBuckets(0, 3, 3), height=5)
        assert "#" in art
        assert "max=" in art

    def test_cdf_ascii(self):
        summary = HistogramSummary(
            counts=np.ones(30, dtype=np.int64), sampled_rows=30
        )
        art = cdf_ascii(summary, height=5, width=30)
        assert art.count("*") == 30

    def test_heatmap_ascii_shapes(self):
        summary = HeatmapSummary(
            counts=np.array([[1, 0], [0, 9]], dtype=np.int64), sampled_rows=10
        )
        art = heatmap_ascii(summary)
        assert len(art.splitlines()) == 2

    def test_table_ascii(self):
        order = RecordOrder.of("name")
        next_k = NextKList(
            order=order,
            rows=[("alice",), (None,)],
            counts=[3, 1],
            preceding=0,
            scanned=4,
        )
        art = table_ascii(next_k)
        assert "alice" in art
        assert "(missing)" in art
        assert "count" in art


class TestTrellisRendering:
    @staticmethod
    def make_histogram_trellis():
        import numpy as np

        from repro.sketches.histogram import HistogramSummary
        from repro.sketches.trellis import TrellisHistogramSummary

        panes = [
            HistogramSummary(counts=np.array([10 * (p + 1), 5, 2], dtype=np.int64))
            for p in range(4)
        ]
        return TrellisHistogramSummary(panes=panes)

    def test_grid_geometry(self):
        from repro.core.buckets import DoubleBuckets
        from repro.core.resolution import Resolution
        from repro.render.trellis_render import render_trellis_histograms

        summary = self.make_histogram_trellis()
        rendering = render_trellis_histograms(
            summary, DoubleBuckets(0, 3, 3), Resolution(120, 80)
        )
        assert rendering.pane_count == 4
        assert rendering.grid_columns * rendering.grid_rows >= 4
        assert rendering.canvas.width == (
            rendering.pane_resolution.width * rendering.grid_columns
        )

    def test_each_pane_draws_into_its_region(self):
        from repro.core.buckets import DoubleBuckets
        from repro.core.resolution import Resolution
        from repro.render.trellis_render import render_trellis_histograms

        summary = self.make_histogram_trellis()
        rendering = render_trellis_histograms(
            summary, DoubleBuckets(0, 3, 3), Resolution(120, 80)
        )
        for index in range(rendering.pane_count):
            region = rendering.pane_region(index)
            assert (region != 0).any(), f"pane {index} is blank"

    def test_pane_origins_distinct(self):
        from repro.core.buckets import DoubleBuckets
        from repro.core.resolution import Resolution
        from repro.render.trellis_render import render_trellis_histograms

        summary = self.make_histogram_trellis()
        rendering = render_trellis_histograms(
            summary, DoubleBuckets(0, 3, 3), Resolution(120, 80)
        )
        origins = {rendering.pane_origin(i) for i in range(rendering.pane_count)}
        assert len(origins) == rendering.pane_count

    def test_heatmap_trellis_renders(self):
        import numpy as np

        from repro.core.resolution import Resolution
        from repro.render.trellis_render import render_trellis_heatmaps
        from repro.sketches.heatmap import HeatmapSummary
        from repro.sketches.trellis import TrellisSummary

        rng = np.random.default_rng(4)
        panes = [
            HeatmapSummary(counts=rng.integers(0, 50, (6, 5)).astype(np.int64))
            for _ in range(3)
        ]
        rendering = render_trellis_heatmaps(
            TrellisSummary(panes=panes), Resolution(150, 90)
        )
        assert rendering.pane_count == 3
        assert rendering.canvas.nonzero_fraction() > 0

    def test_chart_level_rendering(self, request):
        """The spreadsheet chart objects compose their panes too."""
        import numpy as np

        from repro.core.resolution import Resolution
        from repro.engine.local import parallel_dataset
        from repro.spreadsheet import Spreadsheet
        from repro.table.table import Table

        rng = np.random.default_rng(9)
        table = Table.from_pydict(
            {
                "x": rng.uniform(0, 10, 20_000).tolist(),
                "g": [f"g{int(v)}" for v in rng.integers(0, 4, 20_000)],
            }
        )
        sheet = Spreadsheet(
            parallel_dataset(table, shards=4), resolution=Resolution(160, 80)
        )
        chart = sheet.trellis_histogram("g", "x", panes=4)
        rendering = chart.rendering()
        assert rendering.pane_count == chart.pane_count
        assert rendering.canvas.nonzero_fraction() > 0
