#!/usr/bin/env python3
"""Exploring server logs — the workload that motivates §3.1.

"50 servers logging 100 columns at a rate of 100 rows per minute generate
in a month 21.6B cells."  This example writes RFC 5424-style syslog files,
loads them through the storage layer (no ingestion, no indexes — §2), and
answers operations questions with the spreadsheet: error rates per host,
the flaky machine, latency distribution, and a text search.

Run:  python examples/server_logs.py
"""

from __future__ import annotations

import os
import tempfile

from repro.data.logs import generate_syslog_lines
from repro.engine.cluster import Cluster
from repro.spreadsheet import Spreadsheet
from repro.storage.loader import SyslogSource
from repro.table.compute import ColumnPredicate
from repro.table.sort import RecordOrder


def main() -> None:
    # Write raw log files, as a fleet of servers would.
    workdir = tempfile.mkdtemp(prefix="hillview-logs-")
    for i in range(4):
        lines = generate_syslog_lines(5_000, seed=i)
        with open(os.path.join(workdir, f"server{i}.log"), "w") as f:
            f.write("\n".join(lines) + "\n")
    print(f"wrote 4 log files under {workdir}")

    # Hillview reads them in place: one partition per file, no ETL (§2).
    cluster = Cluster(num_workers=2, cores_per_worker=2)
    dataset = cluster.load(SyslogSource(os.path.join(workdir, "*.log")))
    sheet = Spreadsheet(dataset, seed=3)
    print(f"loaded {sheet.total_rows:,} log rows, schema: "
          f"{', '.join(sheet.schema.names)}\n")

    print("== Which hosts log the most errors? ==")
    errors = sheet.filter_rows(
        ColumnPredicate("Severity", "in", ("err", "crit"))
    )
    for host, fraction in errors.heavy_hitters(
        "Host", k=8, method="streaming"
    ).frequencies():
        print(f"  {host}: {fraction:.1%} of all errors")

    print("\n== Latency distribution (ms) ==")
    # Latency lives inside the message text: extract it with a user-defined
    # map column (§5.6), computed at the leaves like Hillview's JS UDFs.
    import re

    number = re.compile(r"(\d+)")

    def extract_latency(row: dict) -> float | None:
        message = row["Message"]
        if message is None or "ms" not in message:
            return None
        match = number.search(message)
        return float(match.group(1)) if match else None

    from repro.table.schema import ContentsKind

    enriched = sheet.derive("LatencyMs", ContentsKind.DOUBLE, extract_latency)
    chart = enriched.histogram("LatencyMs", buckets=30)
    print(chart.ascii(height=8))

    print("== Find: when did 'gandalf' log critical messages? ==")
    gandalf = sheet.filter_equals("Host", "gandalf").filter_equals(
        "Severity", "crit"
    )
    view = gandalf.table_view(RecordOrder.of("Timestamp"), k=5)
    print(view.ascii())

    print("\n== Text search over messages (paper §3.3 find) ==")
    result, found = sheet.find("Message", "timeout", mode="substring")
    print(f"matches: {result.total_matches:,}")
    if found is not None:
        first = found.rows[0]
        print(f"first match (by message order): {first}")

    summary = enriched.column_summary("LatencyMs")
    print(
        f"\nlatency: mean {summary.mean:.0f} ms, "
        f"sd {summary.std_dev:.0f} ms, max {summary.max_value:,.0f} ms "
        f"({summary.missing_count:,} rows without a latency)"
    )


if __name__ == "__main__":
    main()
