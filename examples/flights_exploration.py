#!/usr/bin/env python3
"""The paper's case study (Figures 10-11): 20 questions, answered live.

Loads the synthetic flights dataset into a cluster and runs the scripted
operator workflows from ``repro.spreadsheet.case_study``, printing each
answer with the number of UI actions and machine time it took — the data
behind Figure 11.

Run:  python examples/flights_exploration.py [rows]
"""

from __future__ import annotations

import sys

from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.spreadsheet import Spreadsheet
from repro.spreadsheet.case_study import QUESTIONS, run_case_study


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 150_000
    cluster = Cluster(num_workers=4, cores_per_worker=2)
    dataset = cluster.load(FlightsSource(rows, partitions=16, seed=2024))
    sheet = Spreadsheet(dataset, seed=5)
    print(f"exploring {sheet.total_rows:,} flights "
          f"({sheet.total_rows * len(sheet.schema):,} cells)\n")

    results = run_case_study(sheet)
    total_actions = 0
    for question, result in zip(QUESTIONS, results):
        flag = "" if result.fully_answerable else " [partial]"
        print(f"{result.q_id:>4}: {question.text}{flag}")
        print(
            f"      -> {result.answer}"
            f"   ({result.actions} actions, {result.seconds * 1000:.0f} ms)"
        )
        total_actions += result.actions

    import numpy as np

    actions = [r.actions for r in results]
    print(
        f"\nactions: total {total_actions}, mean {np.mean(actions):.1f} "
        f"(paper 3.4), median {np.median(actions):.0f} (paper 3)"
    )
    print(
        f"machine time: {sum(r.seconds for r in results):.1f}s across all "
        "20 questions — the paper found the human, not the engine, was the "
        "bottleneck"
    )


if __name__ == "__main__":
    main()
