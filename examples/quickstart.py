#!/usr/bin/env python3
"""Quickstart: a Hillview-style spreadsheet over synthetic flight data.

Builds a small cluster, loads the flights dataset, and walks through the
core spreadsheet features: the tabular view, sorting/paging, a histogram
with its CDF, a heat map, heavy hitters, and a filter.  Everything runs
through vizketches on the distributed engine — this script never touches
raw rows directly.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.spreadsheet import Spreadsheet
from repro.table.sort import RecordOrder


def main() -> None:
    # A 4-worker "cluster" (in-process), 16 micropartitions of flights.
    cluster = Cluster(num_workers=4, cores_per_worker=2)
    dataset = cluster.load(FlightsSource(total_rows=200_000, partitions=16, seed=1))
    sheet = Spreadsheet(dataset, seed=1)

    print(f"rows: {sheet.total_rows:,}  columns: {len(sheet.schema)}")
    print(f"cells: {sheet.total_rows * len(sheet.schema):,}\n")

    # --- Tabular view: worst departure delays first (paper §3.3) ---------
    print("== Worst departure delays (sorted table view) ==")
    order = RecordOrder.of("DepDelay", ascending=False)
    view = sheet.table_view(order, k=8)
    print(view.ascii())

    # --- Page forward -----------------------------------------------------
    print("\n== Next page ==")
    print(sheet.next_page(view).ascii())

    # --- Histogram + CDF (paper §4.3) --------------------------------------
    print("\n== Departure-delay histogram (sampled vizketch) ==")
    chart = sheet.histogram("DepDelay")
    print(chart.ascii(height=10))
    print(f"(sampling rate {chart.rate:.3f}; "
          f"bucket 10 = {chart.bucket_value(10)})")

    # --- Heat map ----------------------------------------------------------
    print("\n== Departure vs arrival delay heat map ==")
    heat = sheet.heatmap("DepDelay", "ArrDelay")
    art = heat.ascii().splitlines()
    print("\n".join(art[len(art) // 3 : 2 * len(art) // 3]))  # middle band

    # --- Stacked histogram & trellis (Fig 2 gallery) -----------------------
    print("\n== Normalized stacked histogram: delay mix per airline ==")
    stacked = sheet.stacked_histogram("DepDelay", "Cancelled", normalized=True)
    print(f"bars={stacked.summary.x_buckets}, colors={stacked.summary.y_buckets} "
          f"(exact scan: normalization amplifies small-bar error, B.1)")

    print("\n== Trellis of histograms: delay distribution per airline ==")
    trellis = sheet.trellis_histogram("Airline", "DepDelay", panes=4)
    print(trellis.ascii(panes=2, height=6))

    # --- Heavy hitters -------------------------------------------------------
    print("\n== Busiest airports (sampling heavy hitters, Theorem 4) ==")
    hitters = sheet.heavy_hitters("Origin", k=8)
    for value, fraction in hitters.frequencies()[:8]:
        print(f"  {value}: {fraction:.1%}")

    # --- Filter (zoom) -------------------------------------------------------
    print("\n== Zoom: flights delayed 60+ minutes ==")
    from repro.table.compute import ColumnPredicate

    late = sheet.filter_rows(ColumnPredicate("DepDelay", ">=", 60))
    print(f"rows after filter: {late.total_rows:,}")
    print("top carriers among very-late flights:")
    for value, fraction in late.heavy_hitters("Airline", k=5).frequencies()[:5]:
        print(f"  {value}: {fraction:.1%}")

    # --- Derived column from an expression (§5.6 UDF) -----------------------
    print("\n== Derived column: minutes gained in the air ==")
    gained = sheet.derive_expression("Gained", "DepDelay - ArrDelay")
    stats = gained.column_summary("Gained")
    print(f"Gained = DepDelay - ArrDelay: mean {stats.mean:+.1f} min, "
          f"std {stats.std_dev:.1f}")

    # --- What the machine did ------------------------------------------------
    print(f"\nactions performed: {sheet.log.count}, "
          f"summary bytes at root: {sheet.log.total_bytes:,}")


if __name__ == "__main__":
    main()
