#!/usr/bin/env python3
"""A browser session over the JSON RPC protocol (§5.2, §6).

Hillview's browser UI never touches data directly: it sends JSON commands
to the web server, which runs vizketches on the cluster and streams JSON
partial results back over a WebSocket.  This example plays the browser's
role end to end, against data living in a SQL database:

1. store synthetic flight rows into SQLite (a data repository, §2);
2. load the table through :class:`SqlSource` — partitioned reads, snapshot
   verification, no ETL;
3. drive the session purely through JSON request/reply messages: schema
   discovery, a histogram with streamed partials, a filter deriving a new
   remote object, heavy hitters on the filtered data;
4. evict every server-side object and repeat a query, demonstrating the
   soft-state rebuild (§5.7).

Run:  python examples/web_session.py
"""

from __future__ import annotations

import os
import tempfile

from repro.data.flights import generate_flights
from repro.engine.cluster import Cluster
from repro.engine.rpc import RpcRequest
from repro.engine.web import WebServer
from repro.storage.loader import SqlSource
from repro.storage.sql_io import write_sql


def send(web: WebServer, request_id: int, target: str, method: str, args=None):
    """Send one JSON message and collect the JSON replies, like a socket."""
    request = RpcRequest(request_id, target, method, args or {})
    replies = [reply for reply in web.execute(request.to_json())]
    for reply in replies:
        assert reply.kind != "error", reply.error
    return replies


def main() -> None:
    # -- The data repository: a SQL database ---------------------------
    workdir = tempfile.mkdtemp(prefix="hillview-sql-")
    db = os.path.join(workdir, "flights.db")
    flights = generate_flights(40_000, seed=11)
    rows = write_sql(db, "flights", flights)
    print(f"stored {rows:,} flight rows into {db}")

    # -- The web server loads it, partitioned, without ingestion --------
    web = WebServer(Cluster(num_workers=2, cores_per_worker=2))
    handle = web.load(SqlSource(db, "flights", partitions=8))
    print(f"session root handle: {handle}\n")

    # -- Schema discovery (what the UI shows in the column menu) --------
    [schema_reply] = send(web, 1, handle, "schema")
    columns = schema_reply.payload["columns"]
    print(f"schema has {len(columns)} columns, e.g.: "
          + ", ".join(f"{c['name']}:{c['kind']}" for c in columns[:5]))

    # -- A histogram query, watching the partial results stream ---------
    print("\n== histogram of departure delays (streaming partials) ==")
    replies = send(
        web, 2, handle, "sketch",
        {
            "sketch": {
                "type": "histogram",
                "column": "DepDelay",
                "buckets": {"type": "double", "min": -20, "max": 120, "count": 14},
            }
        },
    )
    for reply in replies:
        marker = "final" if reply.kind == "complete" else "partial"
        total = sum(reply.payload["counts"])
        print(f"  [{marker}] progress={reply.progress:5.0%} rows merged={total:,}")
    counts = replies[-1].payload["counts"]
    peak = max(range(len(counts)), key=counts.__getitem__)
    print(f"  modal bucket: #{peak} with {counts[peak]:,} flights")

    # -- Derive a filtered view (a new remote object) --------------------
    print("\n== cancelled flights only ==")
    [ack] = send(
        web, 3, handle, "filter",
        {
            "predicate": {
                "type": "column", "column": "Cancelled", "op": "==", "value": 1,
            }
        },
    )
    cancelled = ack.payload["handle"]
    [rows_reply] = send(web, 4, cancelled, "rowCount")
    print(f"  derived handle {cancelled}: {rows_reply.payload['rows']:,} rows")

    replies = send(
        web, 5, cancelled, "sketch",
        {"sketch": {"type": "heavyHitters", "column": "Airline", "k": 5}},
    )
    scanned = replies[-1].payload["scanned"]
    print("  airlines with the most cancellations:")
    top = sorted(replies[-1].payload["counts"], key=lambda c: -c[1])[:5]
    for value, count in top:
        print(f"    {value}: {count / scanned:.1%}")

    # -- Soft state: evict everything, queries still answer (§5.7) ------
    print("\n== evicting all server-side state, then re-querying ==")
    web.evict(cancelled)
    web.evict(handle)
    [rows_reply] = send(web, 6, cancelled, "rowCount")
    print(f"  after eviction, {cancelled} rebuilt from lineage: "
          f"{rows_reply.payload['rows']:,} rows (same as before)")

    print("\ndone: every byte between 'browser' and engine was JSON")


if __name__ == "__main__":
    main()
