#!/usr/bin/env python3
"""Soft state, redo log, and failure recovery (paper §5.7-5.8).

Everything a worker holds is disposable.  This demo derives a filtered
table, then repeatedly crashes workers and evicts datasets while asserting
that every query keeps returning *identical* results — the root's redo log
replays lineage (reload from the source, re-apply maps, re-seed randomized
sketches) whenever soft state is missing.

Run:  python examples/fault_tolerance_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.core.buckets import DoubleBuckets
from repro.data.flights import FlightsSource
from repro.engine.cluster import Cluster
from repro.engine.dataset import FilterMap
from repro.engine.faults import FaultInjector
from repro.sketches.histogram import HistogramSketch
from repro.table.compute import ColumnPredicate


def main() -> None:
    cluster = Cluster(num_workers=4, cores_per_worker=2)
    flights = cluster.load(FlightsSource(120_000, partitions=16, seed=3))
    delayed = flights.map(
        FilterMap(ColumnPredicate("DepDelay", ">=", 30.0))
    )

    exact = HistogramSketch("DepDelay", DoubleBuckets(30, 200, 40))
    sampled = HistogramSketch(
        "DepDelay", DoubleBuckets(30, 200, 40), rate=0.25, seed=99
    )
    baseline_exact = delayed.sketch(exact)
    baseline_sampled = delayed.sketch(sampled)
    print(f"baseline: {baseline_exact.total_in_range:,} delayed flights, "
          f"{baseline_sampled.sampled_rows:,} sampled\n")

    injector = FaultInjector(cluster, seed=42)
    for round_number in range(1, 6):
        events = injector.chaos([flights.dataset_id, delayed.dataset_id], rounds=2)
        cluster.computation_cache.clear()  # force real re-execution
        after_exact = delayed.sketch(exact)
        after_sampled = delayed.sketch(sampled)
        same_exact = np.array_equal(after_exact.counts, baseline_exact.counts)
        same_sampled = np.array_equal(
            after_sampled.counts, baseline_sampled.counts
        )
        print(
            f"round {round_number}: injected "
            f"[{'; '.join(e.describe() for e in events)}]"
        )
        print(
            f"          exact identical: {same_exact}   "
            f"sampled identical (same logged seed): {same_sampled}"
        )
        assert same_exact and same_sampled

    print("\nredo log (what replay executes, §5.7):")
    for line in cluster.redo_log.describe()[:4]:
        print("   ", line)
    print("    ...")
    crashes = sum(w.crashes for w in cluster.workers)
    print(
        f"\nsurvived {crashes} worker crash-restarts and "
        f"{len(injector.events) - crashes} evictions with identical results."
    )


if __name__ == "__main__":
    main()
