#!/usr/bin/env python3
"""Progressive visualization and cancellation (paper §5.3).

Watches a histogram execute over a deliberately slow cluster: partial
results stream to the "UI" as leaves complete, the chart sharpens from a
coarse early sketch to the final answer, and a second query is cancelled
midway after the partial view is already good enough — exactly the
interaction loop the paper designed vizketches for.

Run:  python examples/progressive_visualization.py
"""

from __future__ import annotations

import time

from repro.core.buckets import DoubleBuckets
from repro.data.flights import generate_flights
from repro.engine.local import LocalDataSet, ParallelDataSet
from repro.engine.progress import CancellationToken
from repro.render.ascii_art import histogram_ascii
from repro.sketches.histogram import HistogramSketch
from repro.table.table import Table


class SlowLeaf(LocalDataSet):
    """A leaf that takes a little while per micropartition (big-data LARP)."""

    def sketch_stream(self, sketch, token=None):
        time.sleep(0.15)
        yield from super().sketch_stream(sketch, token)


def build_dataset(table: Table, shards: int) -> ParallelDataSet:
    return ParallelDataSet(
        [SlowLeaf(shard) for shard in table.split(shards)], max_workers=4
    )


def main() -> None:
    table = generate_flights(120_000, seed=7)
    dataset = build_dataset(table, shards=12)
    buckets = DoubleBuckets(-40.0, 160.0, 40)
    sketch = HistogramSketch("DepDelay", buckets)

    print("== Progressive histogram: watch the chart converge ==\n")
    start = time.perf_counter()
    shown = 0
    for partial in dataset.sketch_stream(sketch):
        elapsed = time.perf_counter() - start
        if partial.progress - shown >= 0.3 or partial.progress == 1.0:
            shown = partial.progress
            print(
                f"--- t={elapsed * 1000:5.0f} ms  progress "
                f"{partial.progress:4.0%}  rows merged "
                f"{partial.value.total_in_range:,} ---"
            )
            print(histogram_ascii(partial.value, buckets, height=6))
            print()

    print("== Cancellation: stop once the partial view looks right ==\n")
    token = CancellationToken()
    dataset = build_dataset(table, shards=12)
    seen = 0
    for partial in dataset.sketch_stream(sketch, token):
        seen += 1
        if partial.progress >= 0.4:
            print(
                f"partial at {partial.progress:.0%} is good enough — "
                "cancelling (queued micropartitions are dropped; running "
                "ones finish, as in §5.3)"
            )
            token.cancel()
    print(f"partials received before the stream ended: {seen} (of 12 leaves)")


if __name__ == "__main__":
    main()
