"""Structured event logging: one line per event, JSON or plain text.

Off by default — nothing is emitted until :func:`configure_logging` runs
(the ``--log-json`` / ``--log-level`` flags on ``repro serve`` and
``repro worker``) or the ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_JSON``
environment variables are set.  Configuration exports those variables,
so worker subprocesses spawned by a configured root inherit the same
sink settings through the normal environment copy.

Every record is stamped with a wall-clock timestamp, the level, the
event name, and — when the emitting thread is inside a traced request —
the current trace id, so ``grep traceId=...`` (or ``jq``) correlates
logs with the span timeline.  Faults injected by the chaos harness and
director ejection/drain decisions land in this same stream.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

from repro.obs.trace import current_context

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_lock = threading.Lock()
_state = {
    "configured": False,
    "json": False,
    "level": "info",
    "stream": None,  # None -> sys.stderr at emit time (tests may swap it)
}


def _truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in ("1", "true", "yes", "on")


def configure_logging(
    json_mode: bool | None = None,
    level: str | None = None,
    stream=None,
) -> None:
    """Turn the event stream on (idempotent; later calls override).

    Also exports ``REPRO_LOG_JSON`` / ``REPRO_LOG_LEVEL`` so spawned
    worker daemons — which copy this process's environment — emit the
    same stream without their own flags.
    """
    with _lock:
        _state["configured"] = True
        if json_mode is not None:
            _state["json"] = bool(json_mode)
        if level is not None:
            normalized = str(level).strip().lower()
            if normalized not in _LEVELS:
                raise ValueError(
                    f"unknown log level {level!r}; one of {sorted(_LEVELS)}"
                )
            _state["level"] = normalized
        if stream is not None:
            _state["stream"] = stream
    os.environ["REPRO_LOG_LEVEL"] = _state["level"]
    os.environ["REPRO_LOG_JSON"] = "1" if _state["json"] else "0"


def _maybe_configure_from_env() -> None:
    if _state["configured"]:
        return
    level = os.environ.get("REPRO_LOG_LEVEL")
    json_env = os.environ.get("REPRO_LOG_JSON")
    if level is None and not _truthy(json_env):
        return
    with _lock:
        if _state["configured"]:
            return
        _state["configured"] = True
        _state["json"] = _truthy(json_env)
        normalized = (level or "info").strip().lower()
        _state["level"] = normalized if normalized in _LEVELS else "info"


def logging_enabled(level: str = "info") -> bool:
    """Whether an event at ``level`` would be emitted right now."""
    _maybe_configure_from_env()
    if not _state["configured"]:
        return False
    return _LEVELS.get(level, 20) >= _LEVELS[_state["level"]]


def reset_logging() -> None:
    """Back to the silent default (tests only)."""
    with _lock:
        _state["configured"] = False
        _state["json"] = False
        _state["level"] = "info"
        _state["stream"] = None
    os.environ.pop("REPRO_LOG_LEVEL", None)
    os.environ.pop("REPRO_LOG_JSON", None)


def log_event(event: str, level: str = "info", **fields) -> None:
    """Emit one event record; a no-op unless logging is configured.

    ``fields`` must be JSON-safe.  The current :class:`TraceContext`
    (if the thread is inside a traced request) stamps the record.
    """
    if not logging_enabled(level):
        return
    record: dict = {
        "ts": round(time.time(), 6),
        "level": level,
        "event": event,
    }
    ctx = current_context()
    if ctx is not None:
        record["traceId"] = ctx.trace_id
        record["spanId"] = ctx.span_id
    record.update(fields)
    stream = _state["stream"] or sys.stderr
    try:
        if _state["json"]:
            line = json.dumps(record, sort_keys=True, default=str)
        else:
            detail = " ".join(
                f"{key}={value}"
                for key, value in record.items()
                if key not in ("ts", "level", "event")
            )
            line = f"{record['ts']:.3f} {level.upper():7s} {event} {detail}".rstrip()
        print(line, file=stream, flush=True)
    except Exception:  # repro: ignore[B001] — a broken log sink must not fail a query
        pass
