"""Observability: end-to-end tracing, metrics, and structured logs.

One subsystem threaded through every tier of the reproduction:

* :mod:`repro.obs.trace` — a :class:`TraceContext` carried on both wires
  (client->root and root->worker) so one trace covers a whole fan-out,
  a per-process span ring buffer, and Chrome trace-event export;
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and log-bucketed latency histograms, aggregated fleet-wide by
  the ``metricsSnapshot`` RPC and renderable as Prometheus text;
* :mod:`repro.obs.logs` — opt-in one-line JSON (or plain text) event
  records stamped with the current trace id.

Everything here is off by default and costs nothing when off: tracing
activates per call via ``REPRO_TRACE=1`` (or an envelope that already
carries a trace), logging only when configured, and the registry is a
handful of dict lookups.
"""

from repro.obs.logs import configure_logging, log_event, logging_enabled
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    RECORDER,
    SpanRecorder,
    TraceContext,
    chrome_trace,
    current_context,
    record_span,
    serve_span,
    set_service_name,
    span,
    spans_to_jsonl,
    trace_enabled,
    use_context,
)

__all__ = [
    "REGISTRY",
    "RECORDER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecorder",
    "TraceContext",
    "chrome_trace",
    "configure_logging",
    "current_context",
    "log_event",
    "logging_enabled",
    "record_span",
    "serve_span",
    "set_service_name",
    "span",
    "spans_to_jsonl",
    "trace_enabled",
    "use_context",
]
