"""The unified metrics plane: counters, gauges, latency histograms.

One :class:`MetricsRegistry` per process replaces the scattered ad-hoc
counters as the *aggregation surface*: instruments register here, the
``metricsSnapshot`` RPC ships each daemon's snapshot to the root, and
the whole fleet renders as one JSON document or as Prometheus text
exposition for scraping.

Design points:

* **get-or-create** — ``REGISTRY.counter("wire.client.bytes_out")``
  returns the same instrument everywhere, so call sites never thread a
  registry through constructors;
* **callback gauges** — a gauge may wrap a callable (queue depth, live
  sessions, placement version) so the snapshot reads live structures
  instead of shadow-counting them;
* **log-bucketed histograms** — latencies land in power-of-two buckets
  from 100 microseconds up, giving cheap O(1) observes and quantile
  estimates good enough for a ``fleet top`` display.

Everything is thread-safe and allocation-light: an observe is one lock,
one index computation, two adds.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable

#: Histogram bucket upper bounds in seconds: 100 us doubling up to ~105 s,
#: plus +Inf.  21 buckets cover every latency this system produces.
_BUCKET_BOUNDS: list[float] = [0.0001 * (2.0**i) for i in range(21)]


class Counter:
    """A monotonically increasing count (events, bytes, retries)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def to_json(self) -> object:
        return self.value


class Gauge:
    """A point-in-time value: set directly, or backed by a callback."""

    def __init__(
        self,
        name: str,
        help: str = "",
        callback: Callable[[], float] | None = None,
    ):
        self.name = name
        self.help = help
        self._callback = callback
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def set_callback(self, callback: Callable[[], float] | None) -> None:
        with self._lock:
            self._callback = callback

    @property
    def value(self) -> float:
        with self._lock:
            callback = self._callback
            if callback is None:
                return self._value
        try:
            return float(callback())
        except Exception:  # repro: ignore[B001] — a dead callback must not fail a snapshot
            return 0.0

    def to_json(self) -> object:
        return self.value


class Histogram:
    """A log-bucketed latency histogram (seconds)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._counts = [0] * (len(_BUCKET_BOUNDS) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        index = bisect_left(_BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[index] += 1
            self._sum += seconds
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """An estimate of the ``q``-quantile (0 < q <= 1) assuming a
        uniform spread within the winning bucket."""
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return 0.0
        rank = max(1.0, q * total)
        seen = 0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                upper = (
                    _BUCKET_BOUNDS[index]
                    if index < len(_BUCKET_BOUNDS)
                    else _BUCKET_BOUNDS[-1] * 2
                )
                lower = _BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                # Interpolate within the bucket by the rank's position.
                into = (rank - (seen - bucket_count)) / max(1, bucket_count)
                return lower + (upper - lower) * min(1.0, into)
        return _BUCKET_BOUNDS[-1]

    def to_json(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            observed_sum = self._sum
        return {
            "count": total,
            "sum": observed_sum,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": [
                [bound, count]
                for bound, count in zip(_BUCKET_BOUNDS, counts)
                if count
            ],
        }


class MetricsRegistry:
    """A process's instruments, keyed by dotted name (get-or-create)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(
        self,
        name: str,
        help: str = "",
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        gauge = self._get_or_create(name, lambda: Gauge(name, help), Gauge)
        if callback is not None:
            gauge.set_callback(callback)
        return gauge

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, help), Histogram)

    def snapshot(self) -> dict:
        """Every instrument's current value as one JSON-safe dict."""
        with self._lock:
            instruments = dict(self._instruments)
        return {
            name: instrument.to_json()
            for name, instrument in sorted(instruments.items())
        }

    def render_prometheus(self, prefix: str = "repro") -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            instruments = dict(self._instruments)
        lines: list[str] = []
        for name, instrument in sorted(instruments.items()):
            metric = f"{prefix}_{name}".replace(".", "_").replace("-", "_")
            if instrument.help:
                lines.append(f"# HELP {metric} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {instrument.value}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {instrument.value}")
            else:
                lines.append(f"# TYPE {metric} histogram")
                cumulative = 0
                with instrument._lock:
                    counts = list(instrument._counts)
                    total = instrument._count
                    observed_sum = instrument._sum
                for bound, count in zip(_BUCKET_BOUNDS, counts):
                    cumulative += count
                    lines.append(
                        f'{metric}_bucket{{le="{bound:g}"}} {cumulative}'
                    )
                lines.append(f'{metric}_bucket{{le="+Inf"}} {total}')
                lines.append(f"{metric}_sum {observed_sum:g}")
                lines.append(f"{metric}_count {total}")
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        """Drop every instrument (tests only)."""
        with self._lock:
            self._instruments.clear()


#: The process-wide registry: one per daemon, like the span recorder.
REGISTRY = MetricsRegistry()
