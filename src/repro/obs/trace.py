"""End-to-end tracing across the root/worker tier.

A :class:`TraceContext` is three identifiers — ``trace_id`` (one per
query), ``span_id`` (one per unit of work) and the parent's span id —
carried as an *optional* field on the RPC envelope of both wires.  A
client (or the root, for untraced clients) mints the root context when
``REPRO_TRACE=1``; every hop derives children, so the queue wait, the
root-side fan-out, each per-worker stream (including revive-and-retry
attempts and stale-placement restarts) and the worker daemons' own
handling all parent into one tree.

Recording is a lock-cheap per-process ring buffer (:class:`SpanRecorder`)
holding plain JSON-safe dicts.  The ``traceDump`` RPC ships a daemon's
spans to the root, which merges them with its own; the merged list
exports as JSONL or as Chrome trace-event format, loadable in Perfetto
(``ui.perfetto.dev``) or ``chrome://tracing``.

The propagation model mirrors ``REPRO_DISABLE_CACHES``: the environment
switch is read per call, and it only gates *origination*.  A daemon that
receives an envelope carrying a trace records spans regardless of its
own environment — tracing one query traces the whole fleet.  With the
switch off and no incoming trace, every helper here is a no-op and the
envelope is byte-identical to the pre-tracing wire format.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass


def trace_enabled() -> bool:
    """Whether the ``REPRO_TRACE`` switch is on (read per call, like
    ``REPRO_DISABLE_CACHES``, so tests flip it without re-importing)."""
    return os.environ.get("REPRO_TRACE", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The identity of one unit of traced work: (trace, span, parent)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def new_root(cls) -> "TraceContext":
        return cls(trace_id=_new_id(), span_id=_new_id(), parent_id=None)

    def child(self) -> "TraceContext":
        """A new span under this one, in the same trace."""
        return TraceContext(self.trace_id, _new_id(), self.span_id)

    def to_json(self) -> dict:
        data: dict = {"traceId": self.trace_id, "spanId": self.span_id}
        if self.parent_id is not None:
            data["parentId"] = self.parent_id
        return data

    @classmethod
    def from_json(cls, data: object) -> "TraceContext | None":
        """Parse an envelope's trace field; tolerant — garbage yields
        ``None`` (an untraced request), never an error: telemetry must
        not be able to fail a query."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("traceId")
        span_id = data.get("spanId")
        if not trace_id or not span_id:
            return None
        parent = data.get("parentId")
        return cls(str(trace_id), str(span_id), None if parent is None else str(parent))


def from_traceparent(header: object) -> TraceContext | None:
    """Ingest a W3C ``traceparent`` HTTP header as a child context.

    ``00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>`` maps to
    a fresh span under the caller's: the external trace id is adopted
    verbatim (our ids are opaque strings) and the header's span id becomes
    the parent, so a browser's distributed trace continues into the
    gateway, scheduler, and worker fan-out.  Tolerant like
    :meth:`TraceContext.from_json`: a malformed header yields ``None``
    (an untraced request), never an error.
    """
    if not isinstance(header, str):
        return None
    parts = header.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, parent_id, _flags = parts
    if len(version) != 2 or len(trace_id) != 32 or len(parent_id) != 16:
        return None
    try:
        int(version, 16), int(trace_id, 16), int(parent_id, 16)
    except ValueError:
        return None
    if trace_id == "0" * 32 or parent_id == "0" * 16:
        return None
    return TraceContext(trace_id, _new_id(), parent_id)


def to_traceparent(ctx: TraceContext) -> str:
    """Render a context as a W3C ``traceparent`` header value.

    Our ids are 16-hex (external ones adopted by :func:`from_traceparent`
    may be 32-hex); non-hex or short ids are deterministically padded so
    the result is always well-formed.
    """

    def _hex(value: str, width: int) -> str:
        cleaned = "".join(c for c in value.lower() if c in "0123456789abcdef")
        return (cleaned or "1").rjust(width, "0")[-width:]

    return f"00-{_hex(ctx.trace_id, 32)}-{_hex(ctx.span_id, 16)}-01"


# ---------------------------------------------------------------------------
# The per-process recorder
# ---------------------------------------------------------------------------
class SpanRecorder:
    """A bounded ring buffer of finished spans (plain JSON-safe dicts).

    Appends are one deque.append under a lock — cheap enough to leave in
    the leaf path.  The buffer is soft state like everything else here:
    old spans fall off the end, and ``traceDump`` returns whatever is
    still resident.
    """

    def __init__(self, capacity: int = 8192):
        self._spans: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, span: dict) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self, trace_id: str | None = None) -> list[dict]:
        with self._lock:
            resident = list(self._spans)
        if trace_id is None:
            return resident
        return [s for s in resident if s.get("traceId") == trace_id]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: The process-wide recorder: one per daemon (root or worker).
RECORDER = SpanRecorder()

#: Which process spans belong to ("root", "worker-3", ...); stamps every
#: span so the merged timeline groups by daemon.
_SERVICE = "repro"


def set_service_name(name: str) -> None:
    global _SERVICE
    _SERVICE = str(name)


# ---------------------------------------------------------------------------
# Thread-local propagation
# ---------------------------------------------------------------------------
# The engine's fan-out uses raw threads (scheduler query workers, one
# streaming thread per worker proxy, daemon handler pools), so the
# current context travels thread-locally; crossing a thread boundary is
# an explicit capture + ``use_context`` at the spawn site.
_local = threading.local()


def current_context() -> TraceContext | None:
    return getattr(_local, "context", None)


@contextmanager
def use_context(ctx: TraceContext | None):
    """Make ``ctx`` the current context for this thread's block."""
    previous = getattr(_local, "context", None)
    _local.context = ctx
    try:
        yield ctx
    finally:
        _local.context = previous


def _finish(ctx: TraceContext, name: str, start_wall: float, duration: float, attrs: dict) -> None:
    span_record = {
        "traceId": ctx.trace_id,
        "spanId": ctx.span_id,
        "parentId": ctx.parent_id,
        "name": name,
        "service": _SERVICE,
        "start": start_wall,
        "duration": duration,
        "thread": threading.get_ident() & 0xFFFF,
    }
    if attrs:
        span_record["attrs"] = attrs
    RECORDER.record(span_record)


@contextmanager
def span(name: str, **attrs):
    """A child span of the current context; a no-op when untraced.

    The child becomes the current context inside the block, so nested
    spans (and RPC submissions, which stamp the envelope from the
    current context) parent correctly.
    """
    parent = current_context()
    if parent is None:
        yield None
        return
    ctx = parent.child()
    previous = getattr(_local, "context", None)
    _local.context = ctx
    start_wall = time.time()
    start = time.perf_counter()
    try:
        yield ctx
    finally:
        _local.context = previous
        _finish(ctx, name, start_wall, time.perf_counter() - start, attrs)


@contextmanager
def serve_span(ctx: TraceContext | None, name: str, **attrs):
    """The receiving side of an RPC: record the span *identified by the
    envelope's context* (the sender already allocated its span id via
    ``child()``), making it current for the handler's duration.  With no
    context this is a no-op, like :func:`span`."""
    if ctx is None:
        yield None
        return
    previous = getattr(_local, "context", None)
    _local.context = ctx
    start_wall = time.time()
    start = time.perf_counter()
    try:
        yield ctx
    finally:
        _local.context = previous
        _finish(ctx, name, start_wall, time.perf_counter() - start, attrs)


def record_span(
    name: str,
    parent: TraceContext | None,
    start_wall: float,
    duration: float,
    **attrs,
) -> TraceContext | None:
    """Record a span retroactively (e.g. queue wait, measured only once
    the task is finally picked up).  Returns the recorded child context,
    or ``None`` when untraced."""
    if parent is None:
        return None
    ctx = parent.child()
    _finish(ctx, name, start_wall, max(0.0, duration), attrs)
    return ctx


# ---------------------------------------------------------------------------
# Export: JSONL and Chrome trace-event format
# ---------------------------------------------------------------------------
def spans_to_jsonl(spans: list[dict]) -> str:
    """One span per line, ready for ``jq`` or a log shipper."""
    return "\n".join(json.dumps(s, sort_keys=True) for s in spans)


def chrome_trace(spans: list[dict]) -> dict:
    """The merged timeline as Chrome trace-event JSON (Perfetto-loadable).

    Each daemon becomes a "process" (with a ``process_name`` metadata
    record), each recording thread a track, and every span a complete
    ``"X"`` event with microsecond timestamps.
    """
    events: list[dict] = []
    pids: dict[str, int] = {}
    for s in spans:
        service = str(s.get("service", "repro"))
        pid = pids.get(service)
        if pid is None:
            pid = pids[service] = len(pids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": service},
                }
            )
        args = {
            "traceId": s.get("traceId"),
            "spanId": s.get("spanId"),
            "parentId": s.get("parentId"),
        }
        args.update(s.get("attrs") or {})
        events.append(
            {
                "ph": "X",
                "name": str(s.get("name", "span")),
                "pid": pid,
                "tid": int(s.get("thread", 0)),
                "ts": float(s.get("start", 0.0)) * 1e6,
                "dur": max(1.0, float(s.get("duration", 0.0)) * 1e6),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
