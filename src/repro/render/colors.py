"""Color scales mapping densities to discernible shades (§4.3).

A heat map uses ~20 distinct colors.  With a *linear* scale each shade is an
equal slice of ``[0, max]`` and a sampled estimate within ``max/(2c)`` lands
on the right shade (±1).  A *log* scale needs multiplicative accuracy, which
sampling cannot give for rare bins — so log-scale heat maps must be computed
with a full scan (§4.3 footnote); the spreadsheet enforces this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.resolution import DISTINCT_COLORS


class ColorScale(ABC):
    """Maps a count (or density) to a shade index in ``0..colors-1``.

    Shade 0 is reserved for exactly-zero bins: the paper stresses that
    whether a bin is empty or merely rare is visually important.
    """

    def __init__(self, max_value: float, colors: int = DISTINCT_COLORS):
        if colors < 2:
            raise ValueError("a color scale needs at least 2 colors")
        self.max_value = float(max(max_value, 1e-12))
        self.colors = colors

    @abstractmethod
    def shade(self, values: np.ndarray) -> np.ndarray:
        """Shade index for each value (vectorized)."""

    @property
    @abstractmethod
    def supports_sampling(self) -> bool:
        """Whether a sampled estimate can be rendered on this scale."""


class LinearColorScale(ColorScale):
    """Equal-width shades over ``[0, max_value]``."""

    supports_sampling = True

    def shade(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        scaled = np.round(values / self.max_value * (self.colors - 1))
        shades = np.clip(scaled, 0, self.colors - 1).astype(np.int64)
        # Nonzero values always render at least shade 1.
        shades[(values > 0) & (shades == 0)] = 1
        shades[values <= 0] = 0
        return shades


class LogColorScale(ColorScale):
    """Logarithmic shades: each shade covers a constant count *ratio*."""

    supports_sampling = False

    def shade(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        with np.errstate(divide="ignore"):
            scaled = np.round(
                np.log1p(values) / np.log1p(self.max_value) * (self.colors - 1)
            )
        shades = np.clip(scaled, 0, self.colors - 1).astype(np.int64)
        shades[(values > 0) & (shades == 0)] = 1
        shades[values <= 0] = 0
        return shades
