"""Heat-map rendering (Fig 3b, Fig 13d).

Each (x, y) bin becomes a ``b x b`` pixel block colored by its density
through a :class:`~repro.render.colors.ColorScale`.  With a linear scale a
sampled summary lands within one shade of the exact rendering w.h.p.; log
scales demand exact counts (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.resolution import HEATMAP_BIN_PIXELS, Resolution
from repro.render.colors import ColorScale, LinearColorScale, LogColorScale
from repro.render.pixels import PixelCanvas
from repro.sketches.heatmap import HeatmapSummary


@dataclass
class HeatmapRendering:
    """Rendered heat map: shade matrix plus the pixel canvas."""

    shades: np.ndarray  # int64[Bx, By]
    counts: np.ndarray  # float64[Bx, By] estimated counts
    scale: ColorScale
    canvas: PixelCanvas


def make_scale(
    max_count: float, colors: int, log_scale: bool
) -> ColorScale:
    if log_scale:
        return LogColorScale(max_count, colors)
    return LinearColorScale(max_count, colors)


def render_heatmap(
    summary: HeatmapSummary,
    resolution: Resolution,
    rate: float = 1.0,
    colors: int = 20,
    log_scale: bool = False,
    bin_pixels: int = HEATMAP_BIN_PIXELS,
) -> HeatmapRendering:
    """Render a heat-map summary as colored ``b x b`` blocks."""
    if log_scale and rate < 1.0:
        raise ValueError(
            "log-scale heat maps require exact counts; sampling is only "
            "sound for linear color scales (§4.3)"
        )
    counts = summary.counts.astype(np.float64)
    if rate < 1.0:
        counts = counts / rate
    scale = make_scale(counts.max() if counts.size else 0.0, colors, log_scale)
    shades = scale.shade(counts)
    canvas = PixelCanvas(resolution.width, resolution.height)
    bx, by = counts.shape
    for i in range(bx):
        for j in range(by):
            shade = int(shades[i, j])
            if shade > 0:
                canvas.fill_rect(
                    i * bin_pixels, j * bin_pixels, bin_pixels, bin_pixels, shade
                )
    return HeatmapRendering(shades=shades, counts=counts, scale=scale, canvas=canvas)


def shade_errors(
    approx: HeatmapSummary,
    exact: HeatmapSummary,
    rate: float,
    colors: int = 20,
) -> np.ndarray:
    """Per-bin shade distance between sampled and exact renderings.

    Both renderings are shaded on the *exact* maximum so the comparison
    isolates per-bin estimation error — the quantity bounded by one shade
    in Appendix C.2.
    """
    exact_counts = exact.counts.astype(np.float64)
    scale = LinearColorScale(exact_counts.max(), colors)
    exact_shades = scale.shade(exact_counts)
    approx_shades = scale.shade(approx.counts / rate if rate < 1.0 else approx.counts)
    return np.abs(approx_shades - exact_shades)
