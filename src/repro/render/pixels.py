"""A minimal pixel canvas.

Pixels hold small integer color indexes (0 = background).  The canvas uses
chart coordinates: x grows rightward, y grows *upward* (row 0 of the
underlying array is the bottom scanline), matching how bar heights are
reasoned about in the paper's accuracy arguments.
"""

from __future__ import annotations

import numpy as np


class PixelCanvas:
    """A ``width x height`` grid of color indexes."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("canvas dimensions must be positive")
        self.width = width
        self.height = height
        # Indexed [y, x] with y=0 at the bottom.
        self.pixels = np.zeros((height, width), dtype=np.uint8)

    def set(self, x: int, y: int, color: int = 1) -> None:
        if 0 <= x < self.width and 0 <= y < self.height:
            self.pixels[y, x] = color

    def get(self, x: int, y: int) -> int:
        return int(self.pixels[y, x])

    def fill_rect(self, x: int, y: int, w: int, h: int, color: int = 1) -> None:
        """Fill a rectangle anchored at its bottom-left corner."""
        if w <= 0 or h <= 0:
            return
        x0, y0 = max(x, 0), max(y, 0)
        x1, y1 = min(x + w, self.width), min(y + h, self.height)
        if x0 < x1 and y0 < y1:
            self.pixels[y0:y1, x0:x1] = color

    def draw_vertical_bar(self, x: int, width: int, height: int, color: int = 1) -> None:
        """A bar of the given pixel height standing on the bottom edge."""
        self.fill_rect(x, 0, width, height, color)

    def column_height(self, x: int) -> int:
        """Number of set pixels from the bottom in column ``x`` (bar height)."""
        column = self.pixels[:, x]
        nonzero = np.flatnonzero(column)
        if len(nonzero) == 0:
            return 0
        return int(nonzero.max()) + 1

    def nonzero_fraction(self) -> float:
        return float((self.pixels != 0).mean())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PixelCanvas)
            and self.width == other.width
            and self.height == other.height
            and np.array_equal(self.pixels, other.pixels)
        )

    def __repr__(self) -> str:
        return f"<PixelCanvas {self.width}x{self.height}>"
