"""Rendering: turn summaries into pixel buffers and terminal art.

The browser UI of Hillview is out of scope; instead, charts render into
numpy *pixel canvases* so the paper's accuracy guarantees — every histogram
bar within one pixel, every heat-map bin within one color shade (Fig 3/13)
— are directly measurable, plus ASCII renderers for the examples.
"""

from repro.render.pixels import PixelCanvas
from repro.render.colors import ColorScale, LinearColorScale, LogColorScale
from repro.render.histogram_render import (
    HistogramRendering,
    render_histogram,
    render_stacked_histogram,
    StackedRendering,
)
from repro.render.cdf_render import CdfRendering, render_cdf
from repro.render.trellis_render import (
    TrellisRendering,
    render_trellis_heatmaps,
    render_trellis_histograms,
)
from repro.render.heatmap_render import HeatmapRendering, render_heatmap
from repro.render import ascii_art

__all__ = [
    "PixelCanvas",
    "ColorScale",
    "LinearColorScale",
    "LogColorScale",
    "HistogramRendering",
    "render_histogram",
    "render_stacked_histogram",
    "StackedRendering",
    "CdfRendering",
    "render_cdf",
    "HeatmapRendering",
    "render_heatmap",
    "TrellisRendering",
    "render_trellis_heatmaps",
    "render_trellis_histograms",
    "ascii_art",
]
