"""Composite trellis rendering: a grid of panes on one canvas (Fig 2).

A trellis plot renders k inner plots into one display surface.  The grid
geometry comes from :meth:`~repro.core.resolution.Resolution.split_trellis`
(which also drives the sample-size economics of Appendix B.1: panes shrink,
so a trellis needs a *smaller* sample than one full-surface plot).  This
module lays the already-rendered panes out on a single
:class:`~repro.render.pixels.PixelCanvas`, the way the browser composes the
SVG panes side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.resolution import Resolution
from repro.render.heatmap_render import render_heatmap
from repro.render.histogram_render import render_histogram
from repro.render.pixels import PixelCanvas
from repro.sketches.trellis import TrellisHistogramSummary, TrellisSummary


@dataclass
class TrellisRendering:
    """A composed trellis: the full canvas plus per-pane geometry."""

    canvas: PixelCanvas
    pane_resolution: Resolution
    grid_columns: int
    grid_rows: int
    pane_count: int

    def pane_origin(self, index: int) -> tuple[int, int]:
        """Bottom-left pixel of pane ``index`` (row-major from the top)."""
        col = index % self.grid_columns
        row = index // self.grid_columns
        x = col * self.pane_resolution.width
        # Panes fill top to bottom; canvas y grows upward.
        y = self.canvas.height - (row + 1) * self.pane_resolution.height
        return x, y

    def pane_region(self, index: int):
        """The pixel block of one pane (a numpy view, indexed [y, x])."""
        x, y = self.pane_origin(index)
        return self.canvas.pixels[
            y : y + self.pane_resolution.height,
            x : x + self.pane_resolution.width,
        ]


def _blit(target: PixelCanvas, source: PixelCanvas, x: int, y: int) -> None:
    target.pixels[y : y + source.height, x : x + source.width] = source.pixels


def _compose(
    pane_canvases: list[PixelCanvas],
    resolution: Resolution,
) -> TrellisRendering:
    pane_resolution, cols, rows = resolution.split_trellis(len(pane_canvases))
    canvas = PixelCanvas(pane_resolution.width * cols, pane_resolution.height * rows)
    rendering = TrellisRendering(
        canvas=canvas,
        pane_resolution=pane_resolution,
        grid_columns=cols,
        grid_rows=rows,
        pane_count=len(pane_canvases),
    )
    for index, pane in enumerate(pane_canvases):
        x, y = rendering.pane_origin(index)
        _blit(canvas, pane, x, y)
    return rendering


def render_trellis_histograms(
    summary: TrellisHistogramSummary,
    buckets,
    resolution: Resolution,
    rate: float = 1.0,
) -> TrellisRendering:
    """Render a histogram trellis into one canvas.

    Each pane is scaled independently (its own tallest bar fills the pane),
    matching how Hillview renders trellis arrays: panes are comparable in
    shape, not in absolute height.
    """
    pane_resolution, _, _ = resolution.split_trellis(len(summary.panes))
    panes = [
        render_histogram(pane, buckets, pane_resolution, rate).canvas
        for pane in summary.panes
    ]
    return _compose(panes, resolution)


def render_trellis_heatmaps(
    summary: TrellisSummary,
    resolution: Resolution,
    rate: float = 1.0,
    colors: int = 20,
) -> TrellisRendering:
    """Render a heat-map trellis into one canvas."""
    pane_resolution, _, _ = resolution.split_trellis(len(summary.panes))
    panes = [
        render_heatmap(pane, pane_resolution, rate, colors=colors).canvas
        for pane in summary.panes
    ]
    return _compose(panes, resolution)
