"""ASCII renderings for terminals (the examples' output device).

These functions draw the same summaries as the pixel renderers using
characters; they stand in for the D3/SVG front end and give the examples
something human-readable to print.
"""

from __future__ import annotations

import numpy as np

from repro.core.buckets import Buckets
from repro.render.histogram_render import bar_heights
from repro.sketches.cdf import CdfSketch
from repro.sketches.heatmap import HeatmapSummary
from repro.sketches.histogram import HistogramSummary
from repro.sketches.next_items import NextKList

#: 20 shades from faint to dense, mirroring the heat-map color scale.
SHADE_CHARS = " .``'-,:;!~+=<>*xoahkbdpqwmZO0QLCJUYXzcvunrjft%&8#M@"[:21]


def histogram_ascii(
    summary: HistogramSummary,
    buckets: Buckets,
    height: int = 12,
    rate: float = 1.0,
    label_every: int = 10,
) -> str:
    """A vertical bar chart of the histogram."""
    counts = summary.scaled_counts(rate)
    heights = bar_heights(counts, height)
    lines = []
    for level in range(height, 0, -1):
        row = "".join("#" if h >= level else " " for h in heights)
        lines.append(f"{'':>10}|{row}|")
    axis = "".join("-" for _ in heights)
    lines.append(f"{'':>10}+{axis}+")
    peak = counts.max() if counts.size else 0
    lines.insert(0, f"{'max=':>6}{peak:,.0f}  ({len(counts)} buckets)")
    if buckets.count:
        lines.append(
            f"{'':>10} {buckets.label(0)} ... {buckets.label(buckets.count - 1)}"
        )
    return "\n".join(lines)


def cdf_ascii(summary: HistogramSummary, height: int = 10, width: int = 60) -> str:
    """A monotone dot plot of the CDF."""
    fractions = CdfSketch.cumulative(summary)
    if len(fractions) == 0:
        return "(empty)"
    xs = np.linspace(0, len(fractions) - 1, num=min(width, len(fractions))).astype(int)
    ys = np.clip(np.round(fractions[xs] * (height - 1)), 0, height - 1).astype(int)
    grid = [[" "] * len(xs) for _ in range(height)]
    for x, y in enumerate(ys):
        grid[height - 1 - int(y)][x] = "*"
    return "\n".join("|" + "".join(row) + "|" for row in grid)


def heatmap_ascii(summary: HeatmapSummary, rate: float = 1.0) -> str:
    """A character per bin, denser characters for denser bins."""
    counts = summary.counts.astype(np.float64)
    if rate < 1.0:
        counts = counts / rate
    peak = counts.max() if counts.size else 0.0
    if peak <= 0:
        return "(empty heat map)"
    shades = np.clip(
        np.round(counts / peak * (len(SHADE_CHARS) - 1)), 0, len(SHADE_CHARS) - 1
    ).astype(int)
    shades[(counts > 0) & (shades == 0)] = 1
    bx, by = shades.shape
    lines = []
    for j in range(by - 1, -1, -1):  # y grows upward
        lines.append("".join(SHADE_CHARS[shades[i, j]] for i in range(bx)))
    return "\n".join(lines)


def table_ascii(next_k: NextKList, max_width: int = 18) -> str:
    """The tabular view: sort columns plus the repetition count."""
    headers = next_k.order.columns + ["count"]
    rows = [
        [_fmt(value, max_width) for value in values] + [f"{count:,}"]
        for values, count in zip(next_k.rows, next_k.counts)
    ]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    def line(cells):
        return " | ".join(cell.ljust(w) for cell, w in zip(cells, widths))
    out = [line(headers), "-+-".join("-" * w for w in widths)]
    out.extend(line(r) for r in rows)
    position = f"(rows before view: {next_k.preceding:,} of {next_k.scanned:,})"
    out.append(position)
    return "\n".join(out)


def _fmt(value: object | None, max_width: int) -> str:
    if value is None:
        return "(missing)"
    text = f"{value:g}" if isinstance(value, float) else str(value)
    if len(text) > max_width:
        return text[: max_width - 1] + "…"
    return text
