"""Histogram and stacked-histogram renderings (Fig 3a, Fig 13b/c).

The ideal rendering scales bars so the largest reaches the full height V
and snaps each bar to the nearest pixel.  A mu-approximate rendering from a
sampled summary is within one pixel of the ideal one w.h.p. (Theorem 3);
:func:`pixel_errors` measures exactly that quantity for the accuracy
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.buckets import Buckets
from repro.core.resolution import Resolution
from repro.render.pixels import PixelCanvas
from repro.sketches.histogram import HistogramSummary
from repro.sketches.stacked import StackedHistogramSummary


def bar_heights(counts: np.ndarray, height: int) -> np.ndarray:
    """Pixel height per bar: largest bar = V, others snapped to pixels."""
    counts = np.asarray(counts, dtype=np.float64)
    peak = counts.max() if counts.size else 0.0
    if peak <= 0:
        return np.zeros(len(counts), dtype=np.int64)
    heights = np.round(counts / peak * height).astype(np.int64)
    # A nonzero bucket always shows at least one pixel.
    heights[(counts > 0) & (heights == 0)] = 1
    return heights


@dataclass
class HistogramRendering:
    """A rendered histogram: per-bar pixel heights plus the canvas."""

    buckets: Buckets
    heights: np.ndarray  # int64[B] pixel heights
    counts: np.ndarray  # float64[B] (estimated) population counts
    canvas: PixelCanvas
    missing: int

    @property
    def max_count(self) -> float:
        return float(self.counts.max()) if self.counts.size else 0.0


def render_histogram(
    summary: HistogramSummary,
    buckets: Buckets,
    resolution: Resolution,
    rate: float = 1.0,
) -> HistogramRendering:
    """Render a (possibly sampled) histogram summary at ``resolution``."""
    counts = summary.scaled_counts(rate)
    heights = bar_heights(counts, resolution.height)
    canvas = PixelCanvas(resolution.width, resolution.height)
    bar_width = max(1, resolution.width // max(len(counts), 1))
    for i, height in enumerate(heights):
        canvas.draw_vertical_bar(i * bar_width, bar_width - 1 or 1, int(height))
    return HistogramRendering(
        buckets=buckets,
        heights=heights,
        counts=counts,
        canvas=canvas,
        missing=summary.missing,
    )


def pixel_errors(
    approx: HistogramSummary,
    exact: HistogramSummary,
    height: int,
    rate: float,
) -> np.ndarray:
    """Per-bar pixel distance between a sampled and the exact rendering.

    This is the quantity Theorem 3 bounds by 1 with probability 1 - delta.
    """
    ideal = bar_heights(exact.counts.astype(np.float64), height)
    rendered = bar_heights(approx.scaled_counts(rate), height)
    return np.abs(rendered - ideal)


@dataclass
class StackedRendering:
    """A rendered stacked histogram: bar heights and per-color segments."""

    heights: np.ndarray  # int64[Bx] total bar heights
    segments: np.ndarray  # int64[Bx, By] pixel height of each color segment
    canvas: PixelCanvas
    normalized: bool


def render_stacked_histogram(
    summary: StackedHistogramSummary,
    resolution: Resolution,
    rate: float = 1.0,
    normalized: bool = False,
) -> StackedRendering:
    """Render a stacked histogram, optionally normalizing bars to V.

    Normalized mode requires an exact summary (rate == 1.0): small bars
    blow up to full height, which sampling cannot make accurate (B.1).
    """
    if normalized and rate < 1.0:
        raise ValueError("normalized stacked histograms require an exact scan")
    bars = summary.bar_counts.astype(np.float64)
    cells = summary.cell_counts.astype(np.float64)
    if rate < 1.0:
        bars = bars / rate
        cells = cells / rate
    bx, by = cells.shape
    height = resolution.height
    if normalized:
        totals = np.maximum(bars, 1e-12)
        heights = np.where(bars > 0, height, 0).astype(np.int64)
        segments = np.round(cells / totals[:, None] * height).astype(np.int64)
    else:
        heights = bar_heights(bars, height)
        peak = max(bars.max(), 1e-12)
        segments = np.round(cells / peak * height).astype(np.int64)
    canvas = PixelCanvas(resolution.width, resolution.height)
    bar_width = max(1, resolution.width // max(bx, 1))
    for i in range(bx):
        y = 0
        for j in range(by):
            seg = int(segments[i, j])
            if seg > 0:
                canvas.fill_rect(i * bar_width, y, bar_width - 1 or 1, seg, (j % 250) + 1)
                y += seg
    return StackedRendering(
        heights=heights, segments=segments, canvas=canvas, normalized=normalized
    )
