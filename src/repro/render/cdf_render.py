"""CDF rendering (Fig 13a).

Each horizontal pixel h shows the cumulative fraction of rows at or below
its interval, snapped to the nearest of V vertical pixels.  The exact
rendering quantizes by ±0.5/V; a sampled rendering adds at most ±0.1/V so
the drawn pixel is within one of the ideal pixel (Appendix B.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.resolution import Resolution
from repro.render.pixels import PixelCanvas
from repro.sketches.cdf import CdfSketch
from repro.sketches.histogram import HistogramSummary


@dataclass
class CdfRendering:
    """Rendered CDF: one y-pixel per x-pixel plus the canvas."""

    y_pixels: np.ndarray  # int64[H]: vertical pixel of the curve
    fractions: np.ndarray  # float64[H]: cumulative fractions in [0, 1]
    canvas: PixelCanvas


def cdf_pixels(fractions: np.ndarray, height: int) -> np.ndarray:
    """Snap cumulative fractions to vertical pixels 0..V-1."""
    return np.clip(
        np.round(np.asarray(fractions) * (height - 1)), 0, height - 1
    ).astype(np.int64)


def render_cdf(summary: HistogramSummary, resolution: Resolution) -> CdfRendering:
    """Render a CDF summary (one bucket per horizontal pixel)."""
    fractions = CdfSketch.cumulative(summary)
    width = min(resolution.width, len(fractions))
    y_pixels = cdf_pixels(fractions[:width], resolution.height)
    canvas = PixelCanvas(resolution.width, resolution.height)
    for x in range(width):
        canvas.set(x, int(y_pixels[x]))
    return CdfRendering(y_pixels=y_pixels, fractions=fractions, canvas=canvas)


def cdf_pixel_errors(
    approx: HistogramSummary, exact: HistogramSummary, height: int
) -> np.ndarray:
    """Per-pixel vertical distance between sampled and exact CDF curves."""
    approx_pixels = cdf_pixels(CdfSketch.cumulative(approx), height)
    exact_pixels = cdf_pixels(CdfSketch.cumulative(exact), height)
    return np.abs(approx_pixels - exact_pixels)
