"""Metrics-driven fleet autoscaler (ROADMAP item 3).

PR 5 made resize *possible* (``grow``/``shrink`` move only the shard
slices that change hands); PR 6 made queue depth, shard counts, and
cache hit rates *live signals* (``metricsSnapshot`` /
``query_fleet_metrics``).  This module closes the loop: a control loop
that watches those signals and resizes the fleet — with enough
hysteresis that a noisy load never makes it flap.

The loop is deliberately split in two:

* :class:`Autoscaler` — the pure control law.  ``evaluate(reports)``
  turns one fleet metrics sample into a :class:`Decision`; ``tick()``
  samples, evaluates, and acts.  The clock, the metrics source, and the
  grow/shrink actions are all injected, so tests drive simulated load
  through simulated time and assert on the decision stream without a
  single process.
* ``repro fleet autoscale`` (``cli.py``) — the operational wrapper: it
  binds the loop to a live fleet (``query_fleet_metrics`` for signals, a
  transient administrative :class:`~repro.engine.remote.ProcessCluster`
  for actions) and a standby *pool* of worker daemons to grow from.

**The control law.**  Each worker's *pressure* is its queued work
normalized by its cores: ``(inflight - 1 + datasetOps) / cores`` (the
``- 1`` discounts the metrics probe itself, which is in flight while
the daemon answers it).  The fleet pressure is the mean over reachable
workers.  Scaling requires *all three* of:

1. pressure beyond a watermark (``high_watermark`` to grow,
   ``low_watermark`` to shrink) — the gap between them is the
   hysteresis band where the loop always holds;
2. the same side of the band for ``consecutive_ticks`` samples in a row
   (one spiky sample is not a trend);
3. ``cooldown_seconds`` elapsed since the last action — a grow's effect
   (shards rebalanced, caches prewarmed) takes a few queries to show up
   in the signals, and acting again before it does is how oscillation
   starts.

Decisions carry a human-readable reason that includes a marginal-cost
estimate from :class:`~repro.engine.costmodel.CostModel`: what the
per-worker scan time for a nominal query is now vs after the action.
Every decision is appended to a bounded history and (optionally)
published atomically to a JSON state file that ``repro fleet top``
renders next to the live per-worker metrics.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, replace
from typing import Callable

from repro.engine.costmodel import CostModel
from repro.errors import HillviewError
from repro.obs.logs import log_event
from repro.obs.metrics import REGISTRY

#: Decisions kept in the in-memory history (and the tail published to
#: the state file).  Bounded so a week-long loop cannot grow a list.
HISTORY = 64


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the control law.  All hysteresis lives here."""

    min_workers: int = 1
    max_workers: int = 8
    #: Mean pressure per worker core above which the fleet grows.
    high_watermark: float = 3.0
    #: ... and below which it shrinks.  The (low, high) gap is the dead
    #: band: inside it the loop always holds.
    low_watermark: float = 0.5
    #: Samples that must agree before either watermark triggers.
    consecutive_ticks: int = 3
    #: Minimum quiet time after any action before the next one.
    cooldown_seconds: float = 30.0
    #: Sampling cadence of :meth:`Autoscaler.run`.
    interval_seconds: float = 5.0
    #: Nominal query used for the marginal-cost text in decision
    #: reasons (rows scanned per query, columns touched).
    assumed_rows: int = 10_000_000
    assumed_columns: int = 2

    def validated(self) -> "AutoscalerConfig":
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if self.low_watermark >= self.high_watermark:
            raise ValueError(
                "low_watermark must be strictly below high_watermark "
                "(the gap is the hysteresis dead band)"
            )
        if self.consecutive_ticks < 1:
            raise ValueError("consecutive_ticks must be >= 1")
        if self.cooldown_seconds < 0 or self.interval_seconds <= 0:
            raise ValueError("cooldown/interval must be non-negative")
        return self


@dataclass(frozen=True)
class Decision:
    """One control-loop verdict: what to do and, crucially, why."""

    action: str  #: ``"grow"`` | ``"shrink"`` | ``"hold"``
    reason: str
    size: int  #: fleet size when the decision was made
    target: int  #: fleet size the decision aims for
    pressure: float  #: mean pressure per worker core at decision time
    at: float  #: injected-clock timestamp

    def to_json(self) -> dict:
        return {
            "action": self.action,
            "reason": self.reason,
            "size": self.size,
            "target": self.target,
            "pressure": round(self.pressure, 4),
            "at": round(self.at, 3),
        }


def worker_pressure(report: dict) -> float:
    """Queued work per core on one worker, from its metrics snapshot.

    ``inflight`` counts the metrics probe that produced this very
    snapshot, so one request is discounted; ``datasetOps`` adds
    load/map/rebalance operations that hold the daemon busy without a
    per-request queue entry.
    """
    inflight = max(0, int(report.get("inflight", 0)) - 1)
    ops = max(0, int(report.get("datasetOps", 0)))
    cores = max(1, int(report.get("cores", 1)))
    return (inflight + ops) / cores


def fleet_pressure(reports: "list[dict]") -> "tuple[float, int]":
    """(mean pressure over reachable workers, reachable count)."""
    reachable = [r for r in reports if "error" not in r]
    if not reachable:
        return 0.0, 0
    total = sum(worker_pressure(r) for r in reachable)
    return total / len(reachable), len(reachable)


class Autoscaler:
    """The control loop: sample → evaluate → act, with hysteresis.

    ``metrics`` returns one fleet sample (the ``query_fleet_metrics``
    shape: one dict per worker, unreachable ones carrying ``"error"``).
    ``grow(n)`` / ``shrink(n)`` perform the resize and raise
    :class:`~repro.errors.HillviewError` (or ``OSError``) on failure —
    a failed action is recorded as a hold and the cooldown still
    applies, so a broken pool is retried gently, not hammered.
    """

    def __init__(
        self,
        metrics: "Callable[[], list[dict]]",
        grow: "Callable[[int], object]",
        shrink: "Callable[[int], object]",
        config: AutoscalerConfig | None = None,
        clock: "Callable[[], float]" = time.monotonic,
        cost_model: CostModel | None = None,
        state_path: str | None = None,
    ):
        self.config = (config or AutoscalerConfig()).validated()
        self._metrics = metrics
        self._grow = grow
        self._shrink = shrink
        self._clock = clock
        self.cost_model = cost_model or CostModel()
        self.state_path = state_path
        #: Signed agreement streak: +k after k consecutive above-high
        #: samples, -k after k consecutive below-low samples, 0 inside
        #: the dead band.  Crossing the band resets it.
        self._streak = 0
        self._last_action_at: float | None = None
        self.last_decision: Decision | None = None
        self.decisions: "deque[Decision]" = deque(maxlen=HISTORY)

    # -- the control law -------------------------------------------------
    def _marginal_cost(self, size: int, target: int) -> str:
        """Per-worker scan time for the nominal query, now vs after."""
        cfg = self.config
        total = self.cost_model.scan_cost_s(
            cfg.assumed_rows, cfg.assumed_columns
        )
        now_s = total / max(1, size)
        then_s = total / max(1, target)
        return (
            f"est. scan {now_s * 1e3:.0f}ms -> {then_s * 1e3:.0f}ms/worker"
        )

    def evaluate(self, reports: "list[dict]") -> Decision:
        """One sample through the control law.  Updates the streak but
        performs no action — :meth:`tick` acts on the verdict."""
        cfg = self.config
        now = self._clock()
        size = len(reports)
        pressure, reachable = fleet_pressure(reports)

        def hold(reason: str) -> Decision:
            return Decision("hold", reason, size, size, pressure, now)

        if reachable == 0:
            # Blind: no signal, no action.  Growing into an outage the
            # loop cannot even observe would be guesswork.
            self._streak = 0
            return hold("no reachable worker; holding blind")

        if pressure > cfg.high_watermark:
            self._streak = self._streak + 1 if self._streak > 0 else 1
        elif pressure < cfg.low_watermark:
            self._streak = self._streak - 1 if self._streak < 0 else -1
        else:
            self._streak = 0
            return hold(
                f"pressure {pressure:.2f}/core inside the "
                f"[{cfg.low_watermark:g}, {cfg.high_watermark:g}] band"
            )

        if self._last_action_at is not None:
            elapsed = now - self._last_action_at
            if elapsed < cfg.cooldown_seconds:
                return hold(
                    f"cooling down {cfg.cooldown_seconds - elapsed:.0f}s "
                    f"more (pressure {pressure:.2f}/core)"
                )

        if self._streak > 0:
            if self._streak < cfg.consecutive_ticks:
                return hold(
                    f"pressure {pressure:.2f}/core > "
                    f"{cfg.high_watermark:g} for {self._streak}/"
                    f"{cfg.consecutive_ticks} ticks"
                )
            if size >= cfg.max_workers:
                return hold(
                    f"pressure {pressure:.2f}/core but already at "
                    f"max_workers={cfg.max_workers}"
                )
            return Decision(
                "grow",
                f"pressure {pressure:.2f}/core > {cfg.high_watermark:g} "
                f"for {self._streak} ticks; "
                + self._marginal_cost(size, size + 1),
                size,
                size + 1,
                pressure,
                now,
            )

        # Below the low watermark.
        if -self._streak < cfg.consecutive_ticks:
            return hold(
                f"pressure {pressure:.2f}/core < {cfg.low_watermark:g} "
                f"for {-self._streak}/{cfg.consecutive_ticks} ticks"
            )
        if size <= cfg.min_workers:
            return hold(
                f"pressure {pressure:.2f}/core but already at "
                f"min_workers={cfg.min_workers}"
            )
        if reachable < size:
            # A degraded fleet is a reason to heal, never to shrink:
            # retiring a healthy worker while another is down would
            # hand the survivors *more* shards mid-outage.
            return hold(
                f"{size - reachable} worker(s) unreachable; "
                "not shrinking a degraded fleet"
            )
        return Decision(
            "shrink",
            f"pressure {pressure:.2f}/core < {cfg.low_watermark:g} "
            f"for {-self._streak} ticks; "
            + self._marginal_cost(size, size - 1),
            size,
            size - 1,
            pressure,
            now,
        )

    # -- acting -----------------------------------------------------------
    def tick(self) -> Decision:
        """Sample the fleet, evaluate, act, record, publish."""
        decision = self.evaluate(self._metrics())
        if decision.action != "hold":
            delta = abs(decision.target - decision.size)
            try:
                if decision.action == "grow":
                    self._grow(delta)
                else:
                    self._shrink(delta)
            except (HillviewError, OSError, ValueError) as exc:
                decision = replace(
                    decision,
                    action="hold",
                    target=decision.size,
                    reason=f"{decision.action} failed: {exc}",
                )
                # The failed attempt still opens a cooldown window so a
                # broken pool is retried on the loop's timescale, not
                # every tick.
                self._last_action_at = decision.at
                self._streak = 0
            else:
                self._last_action_at = decision.at
                self._streak = 0
                REGISTRY.counter(
                    f"autoscaler.{decision.action}s",
                    "fleet resizes performed by the autoscaler",
                ).inc()
                log_event(
                    "autoscaler.resize",
                    action=decision.action,
                    size=decision.size,
                    target=decision.target,
                    reason=decision.reason,
                )
        self.last_decision = decision
        self.decisions.append(decision)
        if self.state_path:
            self.write_state(self.state_path)
        return decision

    def run(
        self,
        stop: "threading.Event | None" = None,
        max_ticks: int | None = None,
        on_decision: "Callable[[Decision], object] | None" = None,
    ) -> int:
        """Tick at ``interval_seconds`` until ``stop`` is set (or
        ``max_ticks`` elapse).  Runs in the caller's thread — the CLI
        owns the loop, tests drive :meth:`tick` directly."""
        stop = stop if stop is not None else threading.Event()
        ticks = 0
        while max_ticks is None or ticks < max_ticks:
            decision = self.tick()
            ticks += 1
            if on_decision is not None:
                on_decision(decision)
            if max_ticks is not None and ticks >= max_ticks:
                break
            if stop.wait(self.config.interval_seconds):
                break
        return ticks

    # -- the published state ----------------------------------------------
    def state(self) -> dict:
        """The state-file payload (also handy for in-process callers)."""
        last = self.last_decision
        return {
            "updatedAt": time.time(),
            "config": asdict(self.config),
            "streak": self._streak,
            "target": last.target if last is not None else None,
            "lastDecision": last.to_json() if last is not None else None,
            "decisions": [d.to_json() for d in self.decisions],
        }

    def write_state(self, path: str) -> None:
        """Atomically publish :meth:`state` for ``repro fleet top``."""
        payload = json.dumps(self.state(), sort_keys=True, indent=2)
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        os.replace(tmp, path)


def read_state(path: str) -> dict | None:
    """Read a state file written by :meth:`Autoscaler.write_state`;
    ``None`` when absent or unreadable (``fleet top`` degrades to the
    plain per-worker view)."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None
