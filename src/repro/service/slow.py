"""A throttled sketch wrapper for load-testing the service layer.

Real deployments summarize millions of rows per micropartition; the
in-process reproduction summarizes thousands in microseconds, which makes
concurrency behavior (streaming partials, newest-query-wins preemption,
fair-share queueing) impossible to observe.  :class:`SlowdownSketch`
wraps any registered sketch and sleeps a configurable interval per shard,
restoring a realistic per-micropartition cost.  It registers under the
``slow`` wire type::

    {"type": "slow", "perShardSeconds": 0.01, "inner": {...any sketch...}}

It is never cached (marked non-deterministic) so every run exercises the
full execution tree.
"""

from __future__ import annotations

import time

from repro.core.sketch import Sketch
from repro.engine.rpc import SKETCH_BUILDERS, SKETCH_ENCODERS, sketch_from_json


class SlowdownSketch(Sketch):
    """Delegates to ``inner``, adding ``per_shard_seconds`` of work per shard."""

    deterministic = False  # keep it out of the computation cache

    def __init__(self, inner: Sketch, per_shard_seconds: float = 0.01):
        if per_shard_seconds < 0:
            raise ValueError("per_shard_seconds must be >= 0")
        self.inner = inner
        self.per_shard_seconds = float(per_shard_seconds)

    @property
    def name(self) -> str:
        return f"slow({self.inner.name})"

    def summarize(self, table):
        time.sleep(self.per_shard_seconds)
        return self.inner.summarize(table)

    def zero(self):
        return self.inner.zero()

    def merge(self, left, right):
        return self.inner.merge(left, right)

    def merge_all(self, summaries):
        return self.inner.merge_all(summaries)

    def cache_key(self) -> str | None:
        return None

    def with_seed(self, seed: int) -> "SlowdownSketch":
        return SlowdownSketch(self.inner.with_seed(seed), self.per_shard_seconds)


def _build_slow(args: dict) -> Sketch:
    return SlowdownSketch(
        sketch_from_json(args["inner"]),
        per_shard_seconds=float(args.get("perShardSeconds", 0.01)),
    )


def _encode_slow(sketch: SlowdownSketch) -> dict:
    from repro.engine.rpc import sketch_to_json

    return {
        "type": "slow",
        "perShardSeconds": sketch.per_shard_seconds,
        "inner": sketch_to_json(sketch.inner),
    }


SKETCH_BUILDERS.setdefault("slow", _build_slow)
if not any(cls is SlowdownSketch for cls, _ in SKETCH_ENCODERS):
    SKETCH_ENCODERS.append((SlowdownSketch, _encode_slow))
