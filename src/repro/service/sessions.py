"""Per-client session state over one shared cluster (§5.2, §5.7).

Each connected client gets a :class:`Session`: a session-scoped
:class:`~repro.engine.web.WebServer` facade (its own remote-handle
namespace and lineage), per-session metrics, and the set of in-flight
scheduler tasks (so an explicit ``cancel`` RPC can find its target even
before the web layer registered a token).

All session state is *soft*, exactly like the rest of the system: the
:class:`SessionManager` sweeps sessions that have been idle past the TTL
and evicts their handles; the lineage stays, so the next request on an
evicted handle transparently rebuilds it by replaying maps down to the
data source (§5.7).  Root datasets are shared across sessions through a
spec-keyed pool — a thousand users browsing the flights dataset hold a
thousand handle namespaces over one set of cluster shards.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.engine.cluster import Cluster
from repro.engine.dataset import IDataSet
from repro.engine.rpc import ProtocolError, RpcReply
from repro.engine.web import WebServer
from repro.storage.loader import DataSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.scheduler import QueryTask


def source_from_json(
    spec: dict, default: DataSource | None = None
) -> DataSource:
    """Resolve a wire-level source spec into a :class:`DataSource`.

    ``{}`` or ``{"kind": "default"}`` selects the server's configured
    default dataset; ``{"kind": "flights", ...}`` generates synthetic
    flights; ``{"kind": "path", ...}`` opens a file by extension.  Every
    engine-level source kind (``csv``, ``jsonl``, ``syslog``, ``sql``,
    ``hvc``) also works, via the same codec the root uses to describe
    sources to worker processes — what a client loads is exactly what a
    worker can replay (§5.7).
    """
    kind = spec.get("kind", "default")
    if kind == "default":
        if default is None:
            raise ProtocolError("this server has no default dataset")
        return default
    if kind == "flights":
        from repro.data.flights import FlightsSource

        return FlightsSource(
            int(spec.get("rows", 100_000)),
            partitions=int(spec.get("partitions", 16)),
            seed=int(spec.get("seed", 0)),
        )
    if kind == "path":
        from repro.cli import source_for_path

        return source_for_path(
            str(spec["path"]), sql_table=spec.get("sqlTable")
        )
    from repro.engine.rpc import source_from_json as engine_source_from_json

    return engine_source_from_json(spec)


@dataclass
class SessionMetrics:
    """Counters for one session (feeds the ``stats`` RPC)."""

    queries: int = 0
    sketches: int = 0
    replies_sent: int = 0
    partials_sent: int = 0
    completed: int = 0
    cancelled: int = 0
    preempted: int = 0
    errors: int = 0
    handle_evictions: int = 0

    def to_json(self) -> dict:
        return {
            "queries": self.queries,
            "sketches": self.sketches,
            "repliesSent": self.replies_sent,
            "partialsSent": self.partials_sent,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "preempted": self.preempted,
            "errors": self.errors,
            "handleEvictions": self.handle_evictions,
        }


class Session:
    """One client's soft state: handle namespace, metrics, in-flight tasks."""

    def __init__(
        self,
        session_id: str,
        cluster: Cluster,
        dataset_pool: dict[str, IDataSet],
        source_resolver: Callable[[dict], DataSource],
        clock: Callable[[], float] = time.monotonic,
    ):
        self.session_id = session_id
        self.web = WebServer(
            cluster,
            session_id=session_id,
            dataset_pool=dataset_pool,
            source_resolver=source_resolver,
        )
        self.metrics = SessionMetrics()
        self._clock = clock
        self.created_at = clock()
        self.last_active = clock()
        self._tasks: dict[int, "QueryTask"] = {}
        self._lock = threading.Lock()

    # -- liveness ------------------------------------------------------
    def touch(self) -> None:
        self.last_active = self._clock()

    def idle_seconds(self) -> float:
        return self._clock() - self.last_active

    @property
    def active(self) -> bool:
        """Whether any query is queued or running for this session."""
        with self._lock:
            return bool(self._tasks)

    # -- scheduler bookkeeping -----------------------------------------
    def register_task(self, task: "QueryTask") -> None:
        with self._lock:
            self._tasks[task.request.request_id] = task
        self.metrics.queries += 1
        if task.request.method == "sketch":
            self.metrics.sketches += 1

    def finish_task(self, task: "QueryTask") -> None:
        with self._lock:
            current = self._tasks.get(task.request.request_id)
            if current is task:
                del self._tasks[task.request.request_id]

    def cancel_request(self, request_id: int) -> bool:
        """Cancel one request, whether queued, running, or web-registered."""
        with self._lock:
            task = self._tasks.get(request_id)
        if task is not None:
            task.token.cancel()
            return True
        return self.web.cancel(request_id)

    def cancel_all(self) -> int:
        with self._lock:
            tasks = list(self._tasks.values())
        for task in tasks:
            task.token.cancel()
        return len(tasks)

    # -- metrics -------------------------------------------------------
    def record_reply(self, reply: RpcReply) -> None:
        self.metrics.replies_sent += 1
        if reply.kind == "partial":
            self.metrics.partials_sent += 1
        elif reply.kind in ("complete", "ack"):
            self.metrics.completed += 1
        elif reply.kind == "cancelled":
            self.metrics.cancelled += 1
        elif reply.kind == "error":
            self.metrics.errors += 1

    # -- soft state ----------------------------------------------------
    def evict_handles(self) -> int:
        """Drop every resident dataset handle; lineage rebuilds them (§5.7)."""
        count = self.web.evict_all()
        self.metrics.handle_evictions += count
        return count

    def to_json(self) -> dict:
        return {
            "session": self.session_id,
            "handles": len(self.web.handles),
            "idleSeconds": round(self.idle_seconds(), 3),
            "metrics": self.metrics.to_json(),
        }

    def __repr__(self) -> str:
        return (
            f"<Session {self.session_id} handles={len(self.web.handles)} "
            f"idle={self.idle_seconds():.1f}s>"
        )


class SessionManager:
    """Creates, resolves, sweeps, and closes sessions over one cluster."""

    def __init__(
        self,
        cluster: Cluster | None = None,
        idle_ttl_seconds: float = 900.0,
        expire_ttl_seconds: float | None = None,
        default_source: DataSource | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.cluster = cluster if cluster is not None else Cluster()
        self.idle_ttl_seconds = idle_ttl_seconds
        #: Idle time after which the session object itself is dropped (the
        #: client can no longer resume by id).  Defaults to 4x the handle
        #: eviction TTL.  Without this, a long-lived server accumulates one
        #: Session per connection forever.
        self.expire_ttl_seconds = (
            expire_ttl_seconds
            if expire_ttl_seconds is not None
            else idle_ttl_seconds * 4
        )
        self.default_source = default_source
        self._clock = clock
        self._sessions: dict[str, Session] = {}
        self._dataset_pool: dict[str, IDataSet] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self.sessions_created = 0
        self.sessions_swept = 0
        self.sessions_expired = 0

    def _resolve_source(self, spec: dict) -> DataSource:
        return source_from_json(spec, default=self.default_source)

    # -- lifecycle -----------------------------------------------------
    def create(self, session_id: str | None = None) -> Session:
        with self._lock:
            if session_id is None:
                session_id = f"sess-{next(self._counter)}"
            if session_id in self._sessions:
                raise ProtocolError(f"session {session_id!r} already exists")
            session = Session(
                session_id,
                self.cluster,
                self._dataset_pool,
                self._resolve_source,
                clock=self._clock,
            )
            self._sessions[session_id] = session
            self.sessions_created += 1
            return session

    def get(self, session_id: str) -> Session | None:
        with self._lock:
            return self._sessions.get(session_id)

    def get_or_create(self, session_id: str | None = None) -> Session:
        """Resume a session by id (soft-state reattach) or mint a new one."""
        if session_id is not None:
            existing = self.get(session_id)
            if existing is not None:
                existing.touch()
                return existing
        return self.create(session_id)

    def close(self, session_id: str) -> bool:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            return False
        session.cancel_all()
        session.evict_handles()
        return True

    # -- idle sweep ----------------------------------------------------
    def sweep(self) -> int:
        """Evict handles of sessions idle past the TTL; returns the number
        of handles evicted.  Sessions survive the sweep — only their
        resident datasets go, and lineage rebuilds them on the next
        request, piggybacking on the soft-state story of §5.7."""
        with self._lock:
            idle = [
                s
                for s in self._sessions.values()
                if s.idle_seconds() > self.idle_ttl_seconds and not s.active
            ]
        evicted = 0
        for session in idle:
            count = session.evict_handles()
            if count:
                self.sessions_swept += 1
            evicted += count
        return evicted

    def expire(self) -> list[str]:
        """Drop sessions idle past the expiry TTL entirely; returns their
        ids so the caller can release scheduler state too.  An expired
        session cannot be resumed — reconnecting clients start fresh."""
        with self._lock:
            expired = [
                s.session_id
                for s in self._sessions.values()
                if s.idle_seconds() > self.expire_ttl_seconds and not s.active
            ]
        for session_id in expired:
            self.close(session_id)
            self.sessions_expired += 1
        return expired

    # -- introspection -------------------------------------------------
    @property
    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def to_json(self) -> dict:
        return {
            "sessionsCreated": self.sessions_created,
            "sessionsSwept": self.sessions_swept,
            "sessionsExpired": self.sessions_expired,
            "idleTtlSeconds": self.idle_ttl_seconds,
            "sharedDatasets": len(self._dataset_pool),
            "sessions": [s.to_json() for s in self.sessions],
        }
