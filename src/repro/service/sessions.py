"""Per-client session state over one shared cluster (§5.2, §5.7).

Each connected client gets a :class:`Session`: a session-scoped
:class:`~repro.engine.web.WebServer` facade (its own remote-handle
namespace and lineage), per-session metrics, and the set of in-flight
scheduler tasks (so an explicit ``cancel`` RPC can find its target even
before the web layer registered a token).

All session state is *soft*, exactly like the rest of the system: the
:class:`SessionManager` sweeps sessions that have been idle past the TTL
and evicts their handles; the lineage stays, so the next request on an
evicted handle transparently rebuilds it by replaying maps down to the
data source (§5.7).  Root datasets are shared across sessions through a
spec-keyed pool — a thousand users browsing the flights dataset hold a
thousand handle namespaces over one set of cluster shards.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.engine.cluster import Cluster
from repro.engine.dataset import IDataSet
from repro.engine.rpc import ProtocolError, RpcReply
from repro.engine.web import WebServer
from repro.obs.logs import log_event
from repro.service.session_store import SessionRecord, SessionStore
from repro.storage.loader import DataSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.scheduler import QueryTask


def source_from_json(
    spec: dict, default: DataSource | None = None
) -> DataSource:
    """Resolve a wire-level source spec into a :class:`DataSource`.

    ``{}`` or ``{"kind": "default"}`` selects the server's configured
    default dataset; ``{"kind": "flights", ...}`` generates synthetic
    flights; ``{"kind": "path", ...}`` opens a file by extension.  Every
    engine-level source kind (``csv``, ``jsonl``, ``syslog``, ``sql``,
    ``hvc``) also works, via the same codec the root uses to describe
    sources to worker processes — what a client loads is exactly what a
    worker can replay (§5.7).
    """
    kind = spec.get("kind", "default")
    if kind == "default":
        if default is None:
            raise ProtocolError("this server has no default dataset")
        return default
    if kind == "flights":
        from repro.data.flights import FlightsSource

        return FlightsSource(
            int(spec.get("rows", 100_000)),
            partitions=int(spec.get("partitions", 16)),
            seed=int(spec.get("seed", 0)),
        )
    if kind == "path":
        from repro.cli import source_for_path

        return source_for_path(
            str(spec["path"]), sql_table=spec.get("sqlTable")
        )
    from repro.engine.rpc import source_from_json as engine_source_from_json

    return engine_source_from_json(spec)


@dataclass
class SessionMetrics:
    """Counters for one session (feeds the ``stats`` RPC)."""

    queries: int = 0
    sketches: int = 0
    replies_sent: int = 0
    partials_sent: int = 0
    completed: int = 0
    cancelled: int = 0
    preempted: int = 0
    errors: int = 0
    handle_evictions: int = 0
    #: Sketches answered whole from the root's computation cache (§5.4).
    cache_hits: int = 0
    #: Worker partials served from worker-side memo caches, summed over
    #: this session's sketches (the multi-tier story's worker tier).
    worker_cache_hits: int = 0

    def to_json(self) -> dict:
        return {
            "queries": self.queries,
            "sketches": self.sketches,
            "repliesSent": self.replies_sent,
            "partialsSent": self.partials_sent,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "preempted": self.preempted,
            "errors": self.errors,
            "handleEvictions": self.handle_evictions,
            "cacheHits": self.cache_hits,
            "workerCacheHits": self.worker_cache_hits,
        }

    @classmethod
    def from_json(cls, data: object) -> "SessionMetrics":
        """Rebuild counters from a persisted record; tolerant — garbage
        or missing fields restore as zeros (telemetry must never fail a
        session resume)."""
        metrics = cls()
        if not isinstance(data, dict):
            return metrics
        for attr, key in _METRIC_KEYS:
            try:
                setattr(metrics, attr, int(data.get(key, 0) or 0))
            except (TypeError, ValueError):
                pass
        return metrics

    def merge(self, other: "SessionMetrics") -> None:
        """Fold another session's counters into this one (the server's
        lifetime totals on session close/expiry)."""
        for attr, _ in _METRIC_KEYS:
            setattr(self, attr, getattr(self, attr) + getattr(other, attr))


#: (attribute, wire key) pairs — one list drives to_json/from_json/merge.
_METRIC_KEYS = [
    ("queries", "queries"),
    ("sketches", "sketches"),
    ("replies_sent", "repliesSent"),
    ("partials_sent", "partialsSent"),
    ("completed", "completed"),
    ("cancelled", "cancelled"),
    ("preempted", "preempted"),
    ("errors", "errors"),
    ("handle_evictions", "handleEvictions"),
    ("cache_hits", "cacheHits"),
    ("worker_cache_hits", "workerCacheHits"),
]


class Session:
    """One client's soft state: handle namespace, metrics, in-flight tasks."""

    def __init__(
        self,
        session_id: str,
        cluster: Cluster,
        dataset_pool: dict[str, IDataSet],
        source_resolver: Callable[[dict], DataSource],
        clock: Callable[[], float] = time.monotonic,
    ):
        self.session_id = session_id
        self.web = WebServer(
            cluster,
            session_id=session_id,
            dataset_pool=dataset_pool,
            source_resolver=source_resolver,
        )
        self.metrics = SessionMetrics()
        self._clock = clock
        self.created_at = clock()
        self.created_wall = time.time()
        self.last_active = clock()
        self._tasks: dict[int, "QueryTask"] = {}
        self._lock = threading.Lock()
        #: What this root last wrote to the shared store: the record's
        #: wall-clock stamp and the local activity mark it described.
        #: A stored record *newer* than ``_persisted_wall`` was written
        #: by another root — it is not ours to delete on expiry.
        self._persisted_wall = 0.0
        self._persisted_activity = self.last_active

    # -- liveness ------------------------------------------------------
    def touch(self) -> None:
        self.last_active = self._clock()

    def idle_seconds(self) -> float:
        return self._clock() - self.last_active

    @property
    def active(self) -> bool:
        """Whether any query is queued or running for this session."""
        with self._lock:
            return bool(self._tasks)

    # -- scheduler bookkeeping -----------------------------------------
    def register_task(self, task: "QueryTask") -> None:
        with self._lock:
            self._tasks[task.request.request_id] = task
        self.metrics.queries += 1
        if task.request.method == "sketch":
            self.metrics.sketches += 1

    def finish_task(self, task: "QueryTask") -> None:
        with self._lock:
            current = self._tasks.get(task.request.request_id)
            if current is task:
                del self._tasks[task.request.request_id]

    def cancel_request(self, request_id: int) -> bool:
        """Cancel one request, whether queued, running, or web-registered."""
        with self._lock:
            task = self._tasks.get(request_id)
        if task is not None:
            task.token.cancel()
            return True
        return self.web.cancel(request_id)

    def cancel_all(self) -> int:
        with self._lock:
            tasks = list(self._tasks.values())
        for task in tasks:
            task.token.cancel()
        return len(tasks)

    # -- metrics -------------------------------------------------------
    def record_reply(self, reply: RpcReply) -> None:
        self.metrics.replies_sent += 1
        if reply.kind == "partial":
            self.metrics.partials_sent += 1
        elif reply.kind in ("complete", "ack"):
            self.metrics.completed += 1
        elif reply.kind == "cancelled":
            self.metrics.cancelled += 1
        elif reply.kind == "error":
            self.metrics.errors += 1
        if isinstance(reply.cache, dict):
            if reply.cache.get("hit"):
                self.metrics.cache_hits += 1
            self.metrics.worker_cache_hits += int(
                reply.cache.get("workerHits", 0) or 0
            )

    # -- soft state ----------------------------------------------------
    def snapshot_record(self) -> SessionRecord:
        """This session's durable description for a shared store (§5.2)."""
        return SessionRecord(
            session_id=self.session_id,
            created_at=self.created_wall,
            last_active=time.time(),
            counter=self.web._counter,
            handles=self.web.export_lineage(),
            metrics=self.metrics.to_json(),
        )

    def evict_handles(self) -> int:
        """Drop every resident dataset handle; lineage rebuilds them (§5.7)."""
        count = self.web.evict_all()
        self.metrics.handle_evictions += count
        return count

    def to_json(self) -> dict:
        return {
            "session": self.session_id,
            "handles": len(self.web.handles),
            "idleSeconds": round(self.idle_seconds(), 3),
            "metrics": self.metrics.to_json(),
        }

    def __repr__(self) -> str:
        return (
            f"<Session {self.session_id} handles={len(self.web.handles)} "
            f"idle={self.idle_seconds():.1f}s>"
        )


class SessionManager:
    """Creates, resolves, sweeps, and closes sessions over one cluster.

    ``store``, when given, is the shared session store of a multi-root
    tier: every handle mint persists the session's recipe book, and a
    session id unknown locally but present in the store is *resumed* —
    its lineage restored, its handles rebuilt lazily by §5.7 replay — so
    a client can reconnect to any root of the tier.

    ``on_close`` is invoked (with the session id) whenever a session is
    closed or expired, however that happens; the service layer hooks the
    scheduler's ``forget_session`` here so TTL-expired sessions release
    their scheduler state exactly like explicitly closed ones.
    """

    def __init__(
        self,
        cluster: Cluster | None = None,
        idle_ttl_seconds: float = 900.0,
        expire_ttl_seconds: float | None = None,
        default_source: DataSource | None = None,
        clock: Callable[[], float] = time.monotonic,
        store: SessionStore | None = None,
        store_ttl_seconds: float | None = None,
        on_close: Callable[[str], None] | None = None,
    ):
        self.cluster = cluster if cluster is not None else Cluster()
        self.idle_ttl_seconds = idle_ttl_seconds
        #: Idle time after which the session object itself is dropped (the
        #: client can no longer resume by id).  Defaults to 4x the handle
        #: eviction TTL.  Without this, a long-lived server accumulates one
        #: Session per connection forever.
        self.expire_ttl_seconds = (
            expire_ttl_seconds
            if expire_ttl_seconds is not None
            else idle_ttl_seconds * 4
        )
        self.default_source = default_source
        self.store = store
        #: Tier-wide compaction: records whose wall-clock ``last_active``
        #: is older than this are purged from the shared store by the
        #: sweep loop, so an abandoned tier database stops growing
        #: forever.  ``None`` disables compaction (single-root default).
        self.store_ttl_seconds = store_ttl_seconds
        self.on_close = on_close
        self._clock = clock
        self._sessions: dict[str, Session] = {}
        self._dataset_pool: dict[str, IDataSet] = {}
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self.sessions_created = 0
        self.sessions_resumed = 0
        self.sessions_swept = 0
        self.sessions_expired = 0
        self.store_errors = 0
        self.store_records_purged = 0
        #: Server-lifetime totals: every closed or expired session's
        #: counters fold in here, so ``stats``/``metricsSnapshot`` keep
        #: reporting work done by sessions that no longer exist.
        self.lifetime = SessionMetrics()
        #: Sentinel "never": the first sweep after startup always purges.
        self._last_store_purge = -float("inf")
        #: How often (wall-clock) an *active* session's store record is
        #: refreshed by the sweep loop, so sibling roots can tell a live
        #: session from an abandoned one at expiry time.
        self.store_refresh_seconds = min(300.0, self.expire_ttl_seconds / 4)

    def _resolve_source(self, spec: dict) -> DataSource:
        return source_from_json(spec, default=self.default_source)

    # -- lifecycle -----------------------------------------------------
    def _create_locked(self, session_id: str | None) -> Session:
        """Mint and register a session; the manager lock must be held."""
        if session_id is None:
            session_id = f"sess-{next(self._counter)}"
        if session_id in self._sessions:
            raise ProtocolError(f"session {session_id!r} already exists")
        session = Session(
            session_id,
            self.cluster,
            self._dataset_pool,
            self._resolve_source,
            clock=self._clock,
        )
        session.web.on_lineage_change = lambda: self._persist(session)
        self._sessions[session_id] = session
        self.sessions_created += 1
        log_event("session.create", session=session_id)
        return session

    def _persist(self, session: Session) -> None:
        """Write one session's recipe book to the shared store.

        A store outage must degrade to single-root behavior (the session
        keeps working where it is), never fail the query that minted the
        handle."""
        if self.store is None:
            return
        record = session.snapshot_record()
        try:
            self.store.put(record)
        except Exception:  # repro: ignore[B001] — see docstring
            self.store_errors += 1
            return
        session._persisted_wall = record.last_active
        session._persisted_activity = session.last_active

    def create(self, session_id: str | None = None) -> Session:
        with self._lock:
            session = self._create_locked(session_id)
        self._persist(session)
        return session

    def persist_all(self) -> int:
        """Write every live session's recipe book to the shared store
        *now* (maintenance drain: reconnecting clients must resume on
        sibling roots with fresh state).  Returns how many records were
        written; without a store there is nothing to do."""
        if self.store is None:
            return 0
        persisted = 0
        for session in self.sessions:
            errors_before = self.store_errors
            self._persist(session)
            if self.store_errors == errors_before:
                persisted += 1
        return persisted

    def get(self, session_id: str) -> Session | None:
        with self._lock:
            return self._sessions.get(session_id)

    def get_or_create(self, session_id: str | None = None) -> Session:
        """Resume a session by id — locally, or from the shared store —
        or mint a new one.  Atomic under the manager lock: two
        connections racing to resume the same id both get the same
        session instead of one of them being told it "already exists".

        The store read happens *outside* the lock (SQLite can block on a
        busy tier database; the manager lock gates every connection on
        this root), with the local table re-checked afterwards — a racer
        that created the session in the meantime wins and is reused."""
        if session_id is None:
            with self._lock:
                session = self._create_locked(None)
            self._persist(session)
            return session
        with self._lock:
            existing = self._sessions.get(session_id)
            if existing is not None:
                existing.touch()
                return existing
        record: SessionRecord | None = None
        if self.store is not None:
            try:
                record = self.store.get(session_id)
            except Exception:  # repro: ignore[B001] — store outage
                self.store_errors += 1
        with self._lock:
            existing = self._sessions.get(session_id)
            if existing is not None:  # a racer resumed it while we read
                existing.touch()
                return existing
            session = self._create_locked(session_id)
            if record is not None:
                # Another root minted these handles; restore the
                # recipes only — datasets rebuild lazily (§5.7).
                session.web.restore_lineage(record.handles, record.counter)
                session.created_wall = record.created_at
                # Counters roam with the session: a client that
                # reconnects through another root keeps its history.
                session.metrics = SessionMetrics.from_json(record.metrics)
                self.sessions_resumed += 1
                log_event(
                    "session.resume",
                    session=session_id,
                    handles=len(record.handles),
                )
        self._persist(session)
        return session

    def close(self, session_id: str) -> bool:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            return False
        self._teardown(session)
        return True

    def _teardown(self, session: Session, expired: bool = False) -> None:
        """Release everything a dropped session holds, everywhere: local
        tasks and handles, the scheduler's per-session state (via
        ``on_close``), and the shared store's record.

        On *expiry* the store delete is conditional: a record newer than
        what this root last wrote means another root of the tier has
        been serving the session since — this root only expires its own
        stale copy and must leave the tier-wide resume state alone.  An
        explicit close is an instruction, not a timeout, and deletes
        unconditionally."""
        session.cancel_all()
        session.evict_handles()
        # However a session ends, its counters fold into the server's
        # lifetime totals — the work it did stays visible to stats and
        # metricsSnapshot after the session object is gone.
        self.lifetime.merge(session.metrics)
        log_event(
            "session.close",
            session=session.session_id,
            expired=expired,
            queries=session.metrics.queries,
        )
        if self.on_close is not None:
            self.on_close(session.session_id)
        if self.store is None:
            return
        try:
            if expired:
                record = self.store.get(session.session_id)
                if (
                    record is not None
                    and record.last_active > session._persisted_wall + 1e-6
                ):
                    return  # another root owns the session now
            self.store.delete(session.session_id)
        except Exception:  # repro: ignore[B001] — store outage
            self.store_errors += 1

    # -- idle sweep ----------------------------------------------------
    def sweep(self) -> int:
        """Evict handles of sessions idle past the TTL; returns the number
        of handles evicted.  Sessions survive the sweep — only their
        resident datasets go, and lineage rebuilds them on the next
        request, piggybacking on the soft-state story of §5.7."""
        with self._lock:
            idle = [
                s
                for s in self._sessions.values()
                if s.idle_seconds() > self.idle_ttl_seconds and not s.active
            ]
            live = (
                [
                    s
                    for s in self._sessions.values()
                    if s.last_active > s._persisted_activity
                    and time.time() - s._persisted_wall
                    > self.store_refresh_seconds
                ]
                if self.store is not None
                else []
            )
        # Refresh the store record of sessions that have been active since
        # the last write: sibling roots read the stamp to decide whether an
        # expiring session is abandoned or merely being served elsewhere.
        for session in live:
            self._persist(session)
        evicted = 0
        for session in idle:
            # Re-check at eviction time: a query admitted after the
            # snapshot must not run against handles being torn down.
            if session.active or session.idle_seconds() <= self.idle_ttl_seconds:
                continue
            count = session.evict_handles()
            if count:
                self.sessions_swept += 1
            evicted += count
        self.purge_store()
        return evicted

    def purge_store(self) -> int:
        """Compact the shared session store: drop records idle past the
        store TTL (tier-wide, so one root's sweep cleans up sessions
        abandoned on any root).  Throttled to the store refresh cadence;
        a store outage degrades silently, like every other store path."""
        if self.store is None or self.store_ttl_seconds is None:
            return 0
        now = self._clock()
        if now - self._last_store_purge < self.store_refresh_seconds:
            return 0
        self._last_store_purge = now
        # The effective TTL is clamped twice over: (a) an active
        # session's record is only re-stamped every store_refresh_seconds,
        # so anything below twice that cadence would purge *live*
        # sessions between refreshes; (b) an idle-but-unexpired session
        # (still resumable on its root) is never re-stamped at all, so
        # the store record must outlive in-memory expiry — purging below
        # expire_ttl_seconds would silently break cross-root resume.
        ttl = max(
            self.store_ttl_seconds,
            self.expire_ttl_seconds,
            2 * self.store_refresh_seconds,
        )
        try:
            purged = self.store.purge_expired(ttl)
        except Exception:  # repro: ignore[B001] — store outage
            self.store_errors += 1
            return 0
        self.store_records_purged += purged
        return purged

    def expire(self) -> list[str]:
        """Drop sessions idle past the expiry TTL entirely; their
        scheduler state is released through ``on_close``.  An expired
        session cannot be resumed — reconnecting clients start fresh."""
        with self._lock:
            candidates = [
                s.session_id
                for s in self._sessions.values()
                if s.idle_seconds() > self.expire_ttl_seconds and not s.active
            ]
        expired = []
        for session_id in candidates:
            with self._lock:
                session = self._sessions.get(session_id)
                if (
                    session is None
                    or session.active
                    or session.idle_seconds() <= self.expire_ttl_seconds
                ):
                    # Became active (or was touched/closed) between the
                    # snapshot and now: tearing it down would cancel a
                    # legitimately admitted query.
                    continue
                del self._sessions[session_id]
            self._teardown(session, expired=True)
            self.sessions_expired += 1
            expired.append(session_id)
        return expired

    # -- introspection -------------------------------------------------
    @property
    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def to_json(self) -> dict:
        return {
            "sessionsCreated": self.sessions_created,
            "sessionsResumed": self.sessions_resumed,
            "sessionsSwept": self.sessions_swept,
            "sessionsExpired": self.sessions_expired,
            "storeErrors": self.store_errors,
            "storeRecordsPurged": self.store_records_purged,
            "idleTtlSeconds": self.idle_ttl_seconds,
            "sharedDatasets": len(self._dataset_pool),
            "lifetime": self.lifetime.to_json(),
            "sessions": [s.to_json() for s in self.sessions],
        }
