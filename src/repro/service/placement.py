"""Service-level re-export of the fleet placement protocol.

The implementation lives in :mod:`repro.engine.placement` because the
worker daemon enforces the sticky-placement contract and must not drag
the asyncio service stack into every worker process; the service tier
(roots, CLI, tests) imports it from here.
"""

from repro.engine.placement import (
    PlacementError,
    ShardPlacement,
    StalePlacementError,
    agree_placement,
    canonical_order,
    expected_slice,
    format_address,
    global_indices,
    parse_address,
    parse_fleet_spec,
    plan_moves,
    slice_of,
)

__all__ = [
    "PlacementError",
    "ShardPlacement",
    "StalePlacementError",
    "agree_placement",
    "canonical_order",
    "expected_slice",
    "format_address",
    "global_indices",
    "parse_address",
    "parse_fleet_spec",
    "plan_moves",
    "slice_of",
]
