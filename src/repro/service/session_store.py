"""Shared session stores: resume a session id on *any* root (§5.2, §5.7).

Hillview's web server is stateless — everything a session holds is soft
and rebuildable from lineage.  That makes a multi-root service tier
almost free: the only thing a second root needs to resume someone else's
session is the *recipe book* — which handles the session minted and how
each one is derived (a source spec for roots, a parent handle plus a
declarative table map for the rest).  This module stores exactly that:

* :class:`SessionRecord` — one session's durable description: id,
  timestamps, handle counter high-water mark, and the lineage records the
  :class:`~repro.engine.web.WebServer` facade exports;
* :class:`InMemorySessionStore` — the single-root default (and the
  fixture for tests): a dict behind a lock;
* :class:`SqliteSessionStore` — a file-backed store several roots point
  at (``repro serve --session-store sessions.db``); SQLite's own locking
  makes concurrent roots safe.

No dataset bytes are ever stored.  Resuming replays nothing eagerly:
the restored facade holds lineage only, and the first request on each
handle rebuilds it through the normal §5.7 path — exactly how an
idle-swept session already comes back on its original root.
"""

from __future__ import annotations

import json
import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import HillviewError


class SessionStoreError(HillviewError):
    """A session store failure (corrupt record, unusable backing file)."""

    code = "session_store"


@dataclass
class SessionRecord:
    """One session's durable soft-state description."""

    session_id: str
    created_at: float
    last_active: float
    counter: int = 0
    #: Lineage records in mint order; each is either
    #: ``{"handle": h, "source": <source json>}`` (a root load) or
    #: ``{"handle": h, "parent": p, "map": <table-map json>}``.
    handles: list = field(default_factory=list)
    #: The session's metric counters at persist time, so telemetry
    #: survives TTL eviction and cross-root resume — a session that
    #: roams to another root carries its query/cache-hit history along.
    metrics: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "session": self.session_id,
            "createdAt": self.created_at,
            "lastActive": self.last_active,
            "counter": self.counter,
            "handles": self.handles,
            "metrics": self.metrics,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SessionRecord":
        try:
            metrics = data.get("metrics")
            return cls(
                session_id=str(data["session"]),
                created_at=float(data["createdAt"]),
                last_active=float(data["lastActive"]),
                counter=int(data.get("counter", 0)),
                handles=list(data.get("handles", [])),
                metrics=dict(metrics) if isinstance(metrics, dict) else {},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SessionStoreError(f"corrupt session record: {exc}") from exc


class SessionStore(ABC):
    """Where session recipes live; shared by every root of one tier."""

    @abstractmethod
    def put(self, record: SessionRecord) -> None:
        """Insert or replace one session's record."""

    @abstractmethod
    def get(self, session_id: str) -> SessionRecord | None:
        """The record for ``session_id``, or None."""

    @abstractmethod
    def delete(self, session_id: str) -> bool:
        """Drop one session's record; returns whether it existed."""

    @abstractmethod
    def list_ids(self) -> list[str]:
        """Every stored session id (monitoring, tests)."""

    def purge_expired(self, ttl_seconds: float) -> int:
        """Drop records idle (wall clock) past ``ttl_seconds``.

        Tier-wide compaction: any root's sweep may call this, cleaning up
        sessions abandoned on *every* root — without it a long-lived tier
        database grows one record per session id forever.  Returns how
        many records were dropped.
        """
        return 0

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release backing resources, if any."""


class InMemorySessionStore(SessionStore):
    """The single-root default: records shared only within this process."""

    def __init__(self) -> None:
        self._records: dict[str, SessionRecord] = {}
        self._lock = threading.Lock()

    def put(self, record: SessionRecord) -> None:
        with self._lock:
            self._records[record.session_id] = record

    def get(self, session_id: str) -> SessionRecord | None:
        with self._lock:
            return self._records.get(session_id)

    def delete(self, session_id: str) -> bool:
        with self._lock:
            return self._records.pop(session_id, None) is not None

    def list_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def purge_expired(self, ttl_seconds: float) -> int:
        cutoff = time.time() - ttl_seconds
        with self._lock:
            stale = [
                session_id
                for session_id, record in self._records.items()
                if record.last_active < cutoff
            ]
            for session_id in stale:
                del self._records[session_id]
            return len(stale)


class SqliteSessionStore(SessionStore):
    """A file-backed store that N roots of one tier share.

    One row per session; the record travels as JSON so the schema never
    chases the record shape.  Writes are last-writer-wins per session,
    which matches the tier's affinity model: a session is *served* by one
    root at a time (the director pins it), the store is how it migrates.
    """

    def __init__(self, path: str):
        import sqlite3

        self.path = path
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(
                path, check_same_thread=False, timeout=10.0
            )
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS sessions ("
                "  session_id TEXT PRIMARY KEY,"
                "  record TEXT NOT NULL,"
                "  updated_at REAL NOT NULL"
                ")"
            )
            # Compaction (purge_expired) filters on updated_at from every
            # root's sweep loop; without this index each purge would scan
            # the whole tier database under SQLite's write lock.
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS sessions_updated_at "
                "ON sessions(updated_at)"
            )
            self._conn.commit()
        except sqlite3.Error as exc:
            raise SessionStoreError(
                f"cannot open session store {path!r}: {exc}"
            ) from exc

    def put(self, record: SessionRecord) -> None:
        payload = json.dumps(record.to_json())
        with self._lock:
            self._conn.execute(
                "INSERT INTO sessions (session_id, record, updated_at) "
                "VALUES (?, ?, ?) "
                "ON CONFLICT(session_id) DO UPDATE SET "
                "  record = excluded.record, updated_at = excluded.updated_at",
                (record.session_id, payload, time.time()),
            )
            self._conn.commit()

    def get(self, session_id: str) -> SessionRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT record FROM sessions WHERE session_id = ?",
                (session_id,),
            ).fetchone()
        if row is None:
            return None
        try:
            return SessionRecord.from_json(json.loads(row[0]))
        except (ValueError, SessionStoreError):
            # A corrupt row must not brick reconnects: drop it and let the
            # client start fresh (all session state is soft anyway).
            self.delete(session_id)
            return None

    def delete(self, session_id: str) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM sessions WHERE session_id = ?", (session_id,)
            )
            self._conn.commit()
            return cursor.rowcount > 0

    def list_ids(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT session_id FROM sessions ORDER BY session_id"
            ).fetchall()
        return [row[0] for row in rows]

    def purge_expired(self, ttl_seconds: float) -> int:
        # ``updated_at`` is stamped by put() on every handle mint and
        # activity refresh, so it tracks the record's last_active closely;
        # the sessions_updated_at index keeps this DELETE off a full scan.
        cutoff = time.time() - ttl_seconds
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM sessions WHERE updated_at < ?", (cutoff,)
            )
            self._conn.commit()
            return cursor.rowcount

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def open_session_store(spec: str | None) -> SessionStore:
    """Resolve the ``--session-store`` CLI argument.

    ``None`` or ``"memory"`` selects the in-process store; anything else
    is a SQLite file path shared by every root pointed at it.
    """
    if spec is None or spec == "memory":
        return InMemorySessionStore()
    return SqliteSessionStore(spec)
