"""A thin connection director over a multi-root service tier (§5.2).

Production deployments put a TCP load balancer in front of the root
fleet; tests and benchmarks need the same behavior without one.  The
director holds the root addresses and deals connections round-robin,
with one twist a plain balancer also needs: **session affinity**.  A
session's soft state lives on whichever root served it last; the
director remembers the root each session was dealt and sends that
session's reconnects back there.  Affinity is an optimization, not a
correctness requirement — when a shared session store is configured, a
session resumed on the *wrong* root is rebuilt from its stored recipe
book (that path is exactly what the multi-root tests exercise).
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.service.transport import ServiceClient


class ConnectionDirector:
    """Round-robin connections across the roots of one service tier."""

    def __init__(
        self,
        addresses: "list[tuple[str, int]]",
        client_factory: "Callable[..., ServiceClient] | None" = None,
    ):
        if not addresses:
            raise ValueError("a director needs at least one root address")
        self.addresses = list(addresses)
        self._factory = client_factory if client_factory is not None else ServiceClient
        self._next = 0
        self._affinity: dict[str, tuple[str, int]] = {}
        self._lock = threading.Lock()

    def _pick(self, session: str | None) -> tuple[str, int]:
        """The root to try next: the session's pin, else round-robin.

        Picking never records affinity — a pin is only worth keeping if
        the connection actually succeeded, otherwise a dead root would
        capture the session forever."""
        with self._lock:
            if session is not None:
                pinned = self._affinity.get(session)
                if pinned is not None and pinned in self.addresses:
                    return pinned
            address = self.addresses[self._next % len(self.addresses)]
            self._next += 1
            return address

    def connect(self, session: str | None = None, **kwargs) -> ServiceClient:
        """A client on the session's pinned root, or the next one."""
        address = self._pick(session)
        try:
            client = self._factory(*address, session=session, **kwargs)
        except (OSError, ConnectionError):
            # The pinned root is unreachable: drop the pin so the retry
            # falls through to round-robin (and, with a shared session
            # store, resumes the session on a healthy root).
            if session is not None:
                with self._lock:
                    if self._affinity.get(session) == address:
                        del self._affinity[session]
            raise
        # Pin only after the dial succeeded, under the id the connection
        # actually carries (the server mints one when session is None).
        with self._lock:
            self._affinity[client.session_id] = address
        return client

    def forget(self, session: str) -> None:
        """Drop a session's pin (it expired, or the test moves it)."""
        with self._lock:
            self._affinity.pop(session, None)

    def __repr__(self) -> str:
        roots = ", ".join(f"{h}:{p}" for h, p in self.addresses)
        return f"<ConnectionDirector roots=[{roots}]>"
