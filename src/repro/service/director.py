"""A thin connection director over a multi-root service tier (§5.2).

Production deployments put a TCP load balancer in front of the root
fleet; tests and benchmarks need the same behavior without one.  The
director holds the root addresses and deals connections round-robin,
with three twists a plain balancer also needs:

* **session affinity** — a session's soft state lives on whichever root
  served it last; the director remembers the root each session was dealt
  and sends that session's reconnects back there.  Affinity is an
  optimization, not a correctness requirement: with a shared session
  store, a session resumed on the *wrong* root is rebuilt from its
  stored recipe book (exactly what the multi-root tests exercise).
* **health checks** — each root is pinged periodically (a transport-level
  ping that creates no session); after ``max_ping_failures`` consecutive
  failures the root is ejected from rotation, and a later successful
  ping restores it.  Sessions pinned to an ejected root fall through to
  round-robin and resume elsewhere via the store.
* **draining** — ``drain(root)`` takes a root out of rotation for
  maintenance *without* dropping its users: the root is told to persist
  every live session to the shared store (so recipe books are fresh),
  new sessions stop routing to it, and existing sessions migrate on
  their next reconnect (their pin is dropped, round-robin deals them a
  healthy root, the store resumes them there).
"""

from __future__ import annotations

import json
import random
import socket
import threading
from typing import Callable

from repro.core.framing import FrameError
from repro.engine.rpc import RpcReply, call_once
from repro.obs.logs import log_event
from repro.service.transport import ServiceClient


def admin_call(
    address: "tuple[str, int]",
    method: str,
    args: dict | None = None,
    timeout: float = 10.0,
) -> RpcReply:
    """One sessionless request to a root: dial, ask, disconnect.

    Deliberately *not* a :class:`ServiceClient` — the client's handshake
    creates (or resumes) a session on the server, and health probes /
    drain commands must work without minting sessions (a draining root
    refuses new ones).  The transport answers these administrative
    methods (``ping``, ``drain``, ``undrain``) before any session
    exists.
    """
    sock = socket.create_connection(address, timeout=timeout)
    try:
        sock.settimeout(timeout)
        return call_once(
            sock.makefile("rb"),
            sock.makefile("wb"),
            1,
            method,
            args,
            where=f"root {address}",
        )
    finally:
        try:
            sock.close()
        except OSError:
            pass


def probe_root(
    address: "tuple[str, int]", timeout: float = 2.0
) -> bool:
    """One health probe: dial, transport-level ping, disconnect."""
    try:
        reply = admin_call(address, "ping", timeout=timeout)
    except (FrameError, OSError, ValueError):
        return False
    return reply.kind == "ack" and bool(
        isinstance(reply.payload, dict) and reply.payload.get("pong")
    )


def probe_gateway(
    address: "tuple[str, int]", timeout: float = 2.0
) -> bool:
    """One gateway health probe: ``GET /api/v1/health`` over HTTP.

    Healthy means the gateway answered 200 with its liveness document
    (``"gateway": true``).  A *draining* gateway is still healthy — like
    the transport-level ping, draining is rotation state, not liveness,
    and ejecting a draining root would prevent its sessions from
    finishing their migration.
    """
    import http.client

    connection = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        connection.request("GET", "/api/v1/health")
        response = connection.getresponse()
        body = response.read()
        if response.status != 200:
            return False
        payload = json.loads(body.decode("utf-8"))
        return bool(isinstance(payload, dict) and payload.get("gateway"))
    except (OSError, ValueError):
        return False
    finally:
        connection.close()


class ConnectionDirector:
    """Round-robin connections across the roots of one service tier."""

    def __init__(
        self,
        addresses: "list[tuple[str, int]]",
        client_factory: "Callable[..., ServiceClient] | None" = None,
        max_ping_failures: int = 3,
        probe: "Callable[[tuple[str, int]], bool] | None" = None,
    ):
        if not addresses:
            raise ValueError("a director needs at least one root address")
        self.addresses = list(addresses)
        self._factory = client_factory if client_factory is not None else ServiceClient
        self._probe = probe if probe is not None else probe_root
        self.max_ping_failures = max_ping_failures
        self._next = 0
        self._gateways: "dict[tuple[str, int], tuple[str, int]]" = {}
        self._affinity: dict[str, tuple[str, int]] = {}
        self._drained: set[tuple[str, int]] = set()
        self._ejected: set[tuple[str, int]] = set()
        self._failures: dict[tuple[str, int], int] = {}
        self.ejections = 0
        self.recoveries = 0
        self._lock = threading.Lock()
        self._checker: threading.Thread | None = None
        self._stop_checks = threading.Event()

    # -- routing ---------------------------------------------------------
    def routable(self) -> "list[tuple[str, int]]":
        """Roots currently in rotation (not drained, not ejected)."""
        with self._lock:
            return [
                a
                for a in self.addresses
                if a not in self._drained and a not in self._ejected
            ]

    def _pick(self, session: str | None) -> tuple[str, int]:
        """The root to try next: the session's pin, else round-robin.

        Picking never records affinity — a pin is only worth keeping if
        the connection actually succeeded, otherwise a dead root would
        capture the session forever.  Pins to drained/ejected roots are
        dropped so the session migrates (the shared store resumes it on
        whatever root round-robin deals)."""
        with self._lock:
            out_of_rotation = self._drained | self._ejected
            if session is not None:
                pinned = self._affinity.get(session)
                if pinned is not None:
                    if pinned in self.addresses and pinned not in out_of_rotation:
                        return pinned
                    del self._affinity[session]  # migrate on reconnect
            candidates = [
                a for a in self.addresses if a not in out_of_rotation
            ]
            if not candidates:
                raise ConnectionError(
                    "no routable root: every address is drained or ejected"
                )
            address = candidates[self._next % len(candidates)]
            self._next += 1
            return address

    def register_gateway(
        self,
        root_address: "tuple[str, int]",
        gateway_address: "tuple[str, int]",
    ) -> None:
        """Record that ``root_address`` fronts an HTTP/WS gateway.

        A registered gateway changes two things: :meth:`gateway_for`
        can deal browser clients a gateway with the same affinity rules
        TCP clients get, and :meth:`check_health` holds the root to a
        stricter bar — its transport ping *and* its gateway's health
        endpoint must both answer, because a root whose gateway is dead
        is useless to every browser session pinned to it.
        """
        if root_address not in self.addresses:
            raise ValueError(f"unknown root {root_address!r}")
        with self._lock:
            self._gateways[root_address] = tuple(gateway_address)

    def gateway_for(self, session: str | None = None) -> "tuple[str, int]":
        """The gateway address a browser client should dial.

        Routing is root-first: the session's pin (or round-robin) picks
        a root exactly as :meth:`connect` would, and the answer is that
        root's registered gateway — so a browser session and its TCP
        resurrections land on the same soft state.  Roots without a
        registered gateway are skipped.
        """
        with self._lock:
            if not self._gateways:
                raise ConnectionError("no gateway registered on any root")
        for _ in range(len(self.addresses)):
            root = self._pick(session)
            with self._lock:
                gateway = self._gateways.get(root)
            if gateway is not None:
                return gateway
        raise ConnectionError("no routable root has a registered gateway")

    def connect(self, session: str | None = None, **kwargs) -> ServiceClient:
        """A client on the session's pinned root, or the next one."""
        address = self._pick(session)
        try:
            client = self._factory(*address, session=session, **kwargs)
        except (OSError, ConnectionError):
            # The pinned root is unreachable: drop the pin so the retry
            # falls through to round-robin (and, with a shared session
            # store, resumes the session on a healthy root).
            if session is not None:
                with self._lock:
                    if self._affinity.get(session) == address:
                        del self._affinity[session]
            raise
        # Pin only after the dial succeeded, under the id the connection
        # actually carries (the server mints one when session is None).
        with self._lock:
            self._affinity[client.session_id] = address
        return client

    def forget(self, session: str) -> None:
        """Drop a session's pin (it expired, or the test moves it)."""
        with self._lock:
            self._affinity.pop(session, None)

    # -- health checks ---------------------------------------------------
    def check_health(self) -> "dict[tuple[str, int], bool]":
        """One probe pass over every root (ejected ones included, so a
        recovered root rejoins the rotation).  A root failing
        ``max_ping_failures`` *consecutive* probes is ejected; one
        success restores it and resets its failure count.

        A root with a registered gateway must pass *both* probes — the
        transport-level ping and the gateway's HTTP health endpoint —
        to count as healthy; browser sessions routed through a dead
        gateway are just as stranded as TCP sessions on a dead root."""
        results: "dict[tuple[str, int], bool]" = {}
        for address in list(self.addresses):
            healthy = bool(self._probe(address))
            if healthy:
                with self._lock:
                    gateway = self._gateways.get(address)
                if gateway is not None:
                    healthy = probe_gateway(gateway)
            results[address] = healthy
            recovered = ejected = False
            with self._lock:
                if healthy:
                    self._failures[address] = 0
                    if address in self._ejected:
                        self._ejected.discard(address)
                        self.recoveries += 1
                        recovered = True
                else:
                    failures = self._failures.get(address, 0) + 1
                    self._failures[address] = failures
                    if (
                        failures >= self.max_ping_failures
                        and address not in self._ejected
                    ):
                        self._ejected.add(address)
                        self.ejections += 1
                        ejected = True
            if ejected:
                log_event(
                    "director.eject",
                    level="warning",
                    root=f"{address[0]}:{address[1]}",
                    failures=self._failures.get(address, 0),
                )
            elif recovered:
                log_event(
                    "director.recover", root=f"{address[0]}:{address[1]}"
                )
        return results

    def start_health_checks(
        self,
        interval_seconds: float = 5.0,
        jitter_fraction: float = 0.2,
    ) -> None:
        """Run :meth:`check_health` on a background thread until
        :meth:`close` (idempotent).

        Each wait stretches by a fresh uniform jitter of up to
        ``jitter_fraction`` of the interval: directors started together
        (one per root tier, or a fleet of test processes) would
        otherwise probe every worker in synchronized bursts, and the
        bursts themselves read as load spikes to anything watching
        queue depth — the autoscaler included.  Jitter de-phases them.
        """
        if self._checker is not None and self._checker.is_alive():
            return
        self._stop_checks.clear()
        rng = random.Random()

        def loop() -> None:
            while not self._stop_checks.wait(
                interval_seconds * (1.0 + rng.random() * jitter_fraction)
            ):
                self.check_health()

        # repro: ignore[C002] — background health-probe loop; probes carry no query context
        self._checker = threading.Thread(
            target=loop, name="director-health", daemon=True
        )
        self._checker.start()

    def ejected(self) -> "list[tuple[str, int]]":
        with self._lock:
            return sorted(self._ejected)

    # -- draining --------------------------------------------------------
    def drain(
        self, address: "tuple[str, int]", flush_sessions: bool = True
    ) -> dict:
        """Take one root out of rotation for maintenance.

        With ``flush_sessions`` the root is asked (best-effort) to
        persist every live session's recipe book to the shared store
        right now and to refuse *new* sessions, so reconnecting clients
        resume with fresh state on the roots that remain.  Existing
        connections keep streaming until their clients disconnect.
        """
        if address not in self.addresses:
            raise ValueError(f"unknown root {address!r}")
        with self._lock:
            self._drained.add(address)
            stale_pins = [
                session
                for session, pinned in self._affinity.items()
                if pinned == address
            ]
            for session in stale_pins:
                del self._affinity[session]
        result: dict = {"drained": True, "unpinned": len(stale_pins)}
        log_event(
            "director.drain",
            root=f"{address[0]}:{address[1]}",
            unpinned=len(stale_pins),
        )
        if flush_sessions:
            try:
                reply = admin_call(address, "drain")
                if isinstance(reply.payload, dict):
                    result.update(reply.payload)
            except (FrameError, OSError, ValueError):
                result["flushError"] = True  # the root may already be down
        return result

    def undrain(self, address: "tuple[str, int]") -> None:
        """Return a drained root to the rotation (maintenance finished)."""
        with self._lock:
            self._drained.discard(address)
        try:
            admin_call(address, "undrain")
        except (FrameError, OSError, ValueError):
            pass

    def drained(self) -> "list[tuple[str, int]]":
        with self._lock:
            return sorted(self._drained)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        self._stop_checks.set()
        if self._checker is not None:
            self._checker.join(timeout=5.0)
            self._checker = None

    def __repr__(self) -> str:
        roots = ", ".join(f"{h}:{p}" for h, p in self.addresses)
        return f"<ConnectionDirector roots=[{roots}]>"
