"""The wire: an asyncio TCP server streaming length-prefixed JSON frames.

Hillview's browser talks to the web server over a socket carrying JSON
messages (§6).  This module is that socket for the reproduction: each
frame is a uvarint length prefix (the :mod:`repro.core.serialization`
framing idiom) followed by a UTF-8 JSON envelope —
:class:`~repro.engine.rpc.RpcRequest` downstream,
:class:`~repro.engine.rpc.RpcReply` upstream.

The server couples three pieces: the :class:`SessionManager` (per-client
soft state), the :class:`FairShareScheduler` (bounded concurrency,
round-robin across sessions, newest-query-wins), and per-connection
writer tasks with a bounded outbox — when a client stops draining
progressive partials, the bounded queue blocks the scheduler worker
producing them, so backpressure propagates from the TCP send buffer all
the way into sketch execution.

:class:`ServiceClient` is the blocking counterpart used by tests, the
CLI, and benchmarks: a background reader thread demultiplexes interleaved
reply streams by request id into per-query queues.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import itertools
import queue as queue_mod
import socket
import threading
from typing import BinaryIO, Callable, Iterator

from repro.core.framing import (
    MAX_FRAME_BYTES,  # noqa: F401 — re-exported; part of the public API
    encode_frame,
)
from repro.core.framing import read_frame as _read_frame
from repro.core.framing import read_frame_blocking as _read_frame_blocking
from repro.engine.cluster import Cluster
from repro.engine.rpc import (
    TERMINAL_REPLY_KINDS,
    ProtocolError,
    RpcReply,
    RpcRequest,
)
from repro.errors import EngineError, HillviewError
from repro.obs.logs import log_event
from repro.obs.metrics import REGISTRY
from repro.obs.trace import RECORDER, TraceContext, trace_enabled
from repro.service import slow  # noqa: F401 — registers the "slow" sketch type
from repro.service.scheduler import FairShareScheduler
from repro.service.session_store import SessionStore
from repro.service.sessions import Session, SessionManager
from repro.storage.loader import DataSource

#: Reply kinds that terminate one request's reply stream (the shared
#: set — both wires terminate streams identically).
TERMINAL_KINDS = TERMINAL_REPLY_KINDS


class ServiceError(HillviewError):
    """A client-side service failure (connection lost, bad frame)."""

    code = "connection"


# Framing lives in repro.core.framing (it is shared with the root<->worker
# wire); these bindings keep this module's historical API, with each side's
# own error vocabulary.
read_frame = functools.partial(_read_frame, error=ProtocolError)


def read_frame_blocking(stream: BinaryIO) -> bytes | None:
    """Blocking twin of :func:`read_frame` for the synchronous client."""
    return _read_frame_blocking(stream, error=ServiceError)


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------
class _Connection:
    """Bridges scheduler threads to one connection's asyncio writer.

    ``sink`` runs on scheduler worker threads: it enqueues a reply into
    the connection's bounded outbox and *blocks* until there is room —
    that block is the backpressure path from a slow client into sketch
    execution.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        outbox: "asyncio.Queue[RpcReply | None]",
        sink_timeout: float,
    ):
        self.loop = loop
        self.outbox = outbox
        self.sink_timeout = sink_timeout
        self.closed = threading.Event()

    def sink(self, reply: RpcReply) -> None:
        if self.closed.is_set():
            raise ConnectionError("client connection closed")
        future = asyncio.run_coroutine_threadsafe(self.outbox.put(reply), self.loop)
        try:
            future.result(timeout=self.sink_timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ConnectionError("client stopped draining replies")


class ServiceServer:
    """The concurrent multi-client service: transport + sessions + scheduler."""

    def __init__(
        self,
        cluster: Cluster | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_concurrent: int = 4,
        max_queue_per_session: int = 32,
        idle_ttl_seconds: float = 900.0,
        expire_ttl_seconds: float | None = None,
        sweep_interval_seconds: float = 1.0,
        default_source: DataSource | None = None,
        outbox_frames: int = 64,
        sink_timeout_seconds: float = 30.0,
        session_store: "SessionStore | None" = None,
        session_store_ttl_seconds: float | None = None,
    ):
        self.cluster = cluster if cluster is not None else Cluster()
        self.host = host
        self.port = port
        self.scheduler = FairShareScheduler(
            max_concurrent=max_concurrent,
            max_queue_per_session=max_queue_per_session,
        )
        self.sessions = SessionManager(
            self.cluster,
            idle_ttl_seconds=idle_ttl_seconds,
            expire_ttl_seconds=expire_ttl_seconds,
            default_source=default_source,
            store=session_store,
            store_ttl_seconds=session_store_ttl_seconds,
            # However a session ends — explicit close, idle-TTL expiry —
            # the scheduler must drop its queue and round-robin slot, or
            # a long-lived root leaks per-session scheduler state.
            on_close=self.scheduler.forget_session,
        )
        self.sweep_interval_seconds = sweep_interval_seconds
        self.outbox_frames = outbox_frames
        self.sink_timeout_seconds = sink_timeout_seconds
        self.address: tuple[str, int] | None = None
        self.connections_accepted = 0
        #: Maintenance drain (tier operations): a draining root refuses
        #: *new* sessions — existing ones keep working and roam to other
        #: roots via the shared store — so it can be removed from the
        #: tier without dropping users.
        self.draining = False
        self.hellos_refused = 0
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._sweeper: asyncio.Task | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns (host, port)."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        self._sweeper = asyncio.create_task(self._sweep_loop())
        return self.address

    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval_seconds)
            self.sessions.sweep()
            # Expiry releases scheduler state through the manager's
            # on_close hook; nothing extra to do here.
            self.sessions.expire()
            # The cache sweep makes the paper's "unused for 2 hours →
            # purged" real for in-process workers and the root's own
            # tiers; it walks small in-memory tables, so running it at
            # the sweep cadence is cheap (remote daemons self-sweep).
            self.cluster.sweep_caches()

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled — the CLI entry."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self._shutdown_async()

    def run(self) -> None:
        """Blocking entry point for ``repro serve``."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:
            pass

    def start_background(self, timeout: float = 10.0) -> tuple[str, int]:
        """Run the server in a daemon thread (tests, benchmarks, CLI demos).

        Returns the bound (host, port) once the socket is listening.
        """
        started = threading.Event()

        def main() -> None:
            asyncio.run(self._background_main(started))

        # repro: ignore[C002] — process-lifetime event-loop host thread; per-request context starts at the RPC layer
        self._thread = threading.Thread(
            target=main, name="service-server", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):
            raise EngineError("service server failed to start")
        assert self.address is not None
        return self.address

    async def _background_main(self, started: threading.Event) -> None:
        await self.start()
        self._stop = asyncio.Event()
        started.set()
        try:
            await self._stop.wait()
        finally:
            await self._shutdown_async()

    async def _shutdown_async(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def close(self) -> None:
        """Stop a background server and the scheduler's worker pool."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.scheduler.shutdown()

    # -- per-connection protocol ---------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        outbox: "asyncio.Queue[RpcReply | None]" = asyncio.Queue(
            maxsize=self.outbox_frames
        )
        conn = _Connection(self._loop, outbox, self.sink_timeout_seconds)
        writer_task = asyncio.create_task(self._writer_loop(writer, outbox))
        session: Session | None = None
        tasks = []
        received = REGISTRY.counter(
            "rpc.client.bytes_received",
            "request bytes on the client→root wire",
        )
        try:
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                received.inc(len(frame))
                try:
                    request = RpcRequest.from_json(frame.decode("utf-8"))
                except (ProtocolError, UnicodeDecodeError) as exc:
                    await outbox.put(
                        RpcReply(-1, "error", error=str(exc), code="protocol")
                    )
                    continue
                if request.method == "ping":
                    # Transport-level liveness: answered before any
                    # session exists, so health checkers (the director's
                    # probe) never mint sessions.  A connection that
                    # *has* a session keeps it alive by pinging — the
                    # keepalive contract from the session-dispatch days.
                    if session is not None:
                        session.touch()
                    await outbox.put(
                        RpcReply(
                            request.request_id, "ack", payload={"pong": True}
                        )
                    )
                    continue
                admin = await self.admin_reply(request)
                if admin is not None:
                    # Administrative methods are sessionless (the
                    # director probes and drains roots without minting
                    # sessions), but a connection that *has* a session
                    # keeps it alive by polling them.
                    if session is not None:
                        session.touch()
                    await outbox.put(admin)
                    continue
                if request.method == "hello":
                    requested = request.args.get("session")
                    if self.draining and not (
                        requested and self.sessions.get(str(requested))
                    ):
                        # Draining: only sessions already living on this
                        # root may continue; everyone else is routed to
                        # a healthy root (and resumes via the store).
                        self.hellos_refused += 1
                        await outbox.put(
                            RpcReply(
                                request.request_id,
                                "error",
                                error="this root is draining; reconnect "
                                "through the director to another root",
                                code="draining",
                            )
                        )
                        continue
                    session = self.sessions.get_or_create(
                        str(requested) if requested else None
                    )
                    await outbox.put(
                        RpcReply(
                            request.request_id,
                            "ack",
                            payload={"session": session.session_id},
                        )
                    )
                    continue
                if session is None:  # implicit session on first request
                    if self.draining:
                        self.hellos_refused += 1
                        await outbox.put(
                            RpcReply(
                                request.request_id,
                                "error",
                                error="this root is draining; reconnect "
                                "through the director to another root",
                                code="draining",
                            )
                        )
                        continue
                    session = self.sessions.get_or_create(None)
                session.touch()
                if request.method == "cancel":
                    target_id = int(request.args.get("requestId", -1))
                    cancelled = session.cancel_request(target_id)
                    await outbox.put(
                        RpcReply(
                            request.request_id,
                            "ack",
                            payload={"cancelled": cancelled},
                        )
                    )
                else:
                    tasks.append(self.scheduler.submit(session, request, conn.sink))
                    tasks = [t for t in tasks if not t.done.is_set()]
        except (ProtocolError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            conn.closed.set()
            # The client is gone: stop wasting cluster time on its queries.
            for task in tasks:
                task.token.cancel()
            writer_task.cancel()
            try:
                await writer_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _writer_loop(
        self, writer: asyncio.StreamWriter, outbox: "asyncio.Queue[RpcReply | None]"
    ) -> None:
        sent = REGISTRY.counter(
            "rpc.client.bytes_sent", "reply bytes on the client→root wire"
        )
        try:
            while True:
                reply = await outbox.get()
                if reply is None:
                    break
                payload = reply.to_json().encode("utf-8")
                sent.inc(len(payload))
                writer.write(encode_frame(payload))
                await writer.drain()  # OS-level backpressure
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    # -- administrative methods (shared by the TCP wire and the gateway)
    async def admin_reply(self, request: RpcRequest) -> RpcReply | None:
        """Answer a sessionless administrative request, or ``None`` when
        ``request`` is not administrative.

        Both front doors — the TCP transport and the HTTP/WebSocket
        gateway (:mod:`repro.gateway`) — dispatch through this one
        method, so the operational surface (drain, stats, metrics,
        traces) cannot drift between them.  Methods that dial worker
        daemons run off the event loop: a slow worker must not stall
        every connection of the calling transport.
        """
        loop = asyncio.get_running_loop()
        method = request.method
        if method == "drain":
            payload = await loop.run_in_executor(None, self.drain)
            return RpcReply(request.request_id, "ack", payload=payload)
        if method == "undrain":
            self.draining = False
            return RpcReply(
                request.request_id, "ack", payload={"draining": False}
            )
        if method == "stats":
            return RpcReply(
                request.request_id, "complete", payload=self.stats()
            )
        if method == "cacheStats":
            payload = await loop.run_in_executor(None, self.cache_stats)
            return RpcReply(request.request_id, "complete", payload=payload)
        if method == "metricsSnapshot":
            fmt = request.args.get("format")
            payload = await loop.run_in_executor(
                None, lambda: self.metrics_snapshot(fmt)
            )
            return RpcReply(request.request_id, "complete", payload=payload)
        if method == "traceDump":
            trace_id = request.args.get("traceId")
            payload = await loop.run_in_executor(
                None,
                lambda: self.trace_dump(
                    None if trace_id is None else str(trace_id)
                ),
            )
            return RpcReply(request.request_id, "complete", payload=payload)
        return None

    # -- tier operations -------------------------------------------------
    def drain(self) -> dict:
        """Enter maintenance drain: refuse new sessions, persist every
        live session's recipe book to the shared store so reconnecting
        clients resume (fresh) on other roots.  Safe to call repeatedly;
        ``undrain`` (or a restart) reverses it."""
        self.draining = True
        persisted = self.sessions.persist_all()
        log_event(
            "root.drain",
            persisted=persisted,
            sessions=len(self.sessions.sessions),
        )
        return {
            "draining": True,
            "persisted": persisted,
            "sessions": len(self.sessions.sessions),
        }

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        return {
            "type": "serviceStats",
            "draining": self.draining,
            "connectionsAccepted": self.connections_accepted,
            "scheduler": self.scheduler.metrics.to_json(),
            "sessions": self.sessions.to_json(),
            "cluster": {
                "workers": len(self.cluster.workers),
                "bytesToRoot": self.cluster.total_bytes_to_root,
            },
        }

    def cache_stats(self) -> dict:
        """Every cache tier visible from this root, plus per-session
        hit telemetry — the ``cacheStats`` RPC payload."""
        return {
            "type": "cacheStats",
            "cluster": self.cluster.cache_stats(),
            "sessions": {
                session.session_id: {
                    "cacheHits": session.metrics.cache_hits,
                    "workerCacheHits": session.metrics.worker_cache_hits,
                }
                for session in self.sessions.sessions
            },
        }

    def metrics_snapshot(self, fmt: str | None = None) -> dict:
        """The unified metrics plane: this root's registry, scheduler
        and session state, and every worker daemon's live snapshot —
        the ``metricsSnapshot`` RPC payload.  ``fmt="prometheus"``
        returns ``{"text": ...}`` in Prometheus exposition format
        instead (root-local metrics only; scrape daemons directly for
        worker-level series)."""
        if fmt == "prometheus":
            return {
                "type": "metricsSnapshot",
                "format": "prometheus",
                "text": REGISTRY.render_prometheus(),
            }
        return {
            "type": "metricsSnapshot",
            "draining": self.draining,
            "connectionsAccepted": self.connections_accepted,
            "scheduler": self.scheduler.metrics.to_json(),
            "sessions": self.sessions.to_json(),
            "cluster": self.cluster.metrics_snapshot(),
            "registry": REGISTRY.snapshot(),
        }

    def trace_dump(self, trace_id: str | None = None) -> dict:
        """The merged span timeline: this root's recorder plus every
        worker daemon's ring buffer — the ``traceDump`` RPC payload.
        In-process workers share the root's recorder, so the cluster
        contributes only remote daemons' spans (no duplicates)."""
        spans = RECORDER.spans(trace_id)
        spans.extend(self.cluster.trace_dump(trace_id))
        return {"type": "traceDump", "spans": spans}


# ---------------------------------------------------------------------------
# Blocking client
# ---------------------------------------------------------------------------
class PendingQuery:
    """One in-flight request's reply stream on the client side."""

    def __init__(self, request: RpcRequest):
        self.request = request
        self._replies: "queue_mod.Queue[RpcReply]" = queue_mod.Queue()

    @property
    def request_id(self) -> int:
        return self.request.request_id

    def _push(self, reply: RpcReply) -> None:
        self._replies.put(reply)

    def replies(self, timeout: float | None = 60.0) -> Iterator[RpcReply]:
        """Yield replies until the terminal one (complete/cancelled/error/ack)."""
        while True:
            try:
                reply = self._replies.get(timeout=timeout)
            except queue_mod.Empty:
                raise ServiceError(
                    f"timed out waiting for a reply to request "
                    f"#{self.request_id} ({self.request.method})"
                )
            yield reply
            if reply.kind in TERMINAL_KINDS:
                return

    def result(
        self, timeout: float | None = 60.0, raise_on_error: bool = True
    ) -> RpcReply:
        """Drain the stream and return the terminal reply."""
        last = None
        for reply in self.replies(timeout=timeout):
            last = reply
        assert last is not None
        if raise_on_error and last.kind == "error":
            error = ServiceError(f"[{last.code}] {last.error}")
            error.code = last.code or "error"
            raise error
        return last


class ServiceClient:
    """A blocking client for tests, benchmarks and the terminal UI.

    One TCP connection, one session; a reader thread demultiplexes
    interleaved reply frames by request id, so several queries can stream
    concurrently over the same connection (newest-query-wins makes this
    the common case: submit, then submit again).
    """

    def __init__(
        self,
        host: str,
        port: int,
        session: str | None = None,
        connect_timeout: float = 10.0,
    ):
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(None)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._ids = itertools.count(1)
        self._pending: dict[int, PendingQuery] = {}
        self._lock = threading.Lock()
        self._closed = False
        # repro: ignore[C002] — client-side reply demux; requests are stamped with context in call(), replies carry none
        self._reader = threading.Thread(
            target=self._reader_loop, name="service-client-reader", daemon=True
        )
        self._reader.start()
        hello_args = {"session": session} if session else {}
        try:
            reply = self.call("hello", args=hello_args)
        except BaseException:
            # A refused handshake (e.g. a draining root) must not leak
            # the socket and reader thread of a never-born client.
            self.close()
            raise
        self.session_id: str = reply.payload["session"]

    # -- request plumbing ----------------------------------------------
    def submit(
        self,
        method: str,
        target: str = "",
        args: dict | None = None,
        trace: "TraceContext | None" = None,
    ) -> PendingQuery:
        """Send one request; returns immediately with its reply stream.

        ``trace`` stamps an explicit context on the envelope (``repro
        client trace`` mints one so it can fetch the spans afterwards);
        otherwise a root context is originated here when ``REPRO_TRACE``
        is on.  Untraced requests carry no trace field at all — the
        frame is byte-identical to the pre-tracing wire format.
        """
        request = RpcRequest(next(self._ids), target, method, args or {})
        if trace is None and trace_enabled():
            trace = TraceContext.new_root()
        if trace is not None:
            request.trace = trace.to_json()
        pending = PendingQuery(request)
        with self._lock:
            if self._closed:
                raise ServiceError("client is closed")
            self._pending[request.request_id] = pending
            self._wfile.write(encode_frame(request.to_json().encode("utf-8")))
            self._wfile.flush()
        return pending

    def call(
        self,
        method: str,
        target: str = "",
        args: dict | None = None,
        timeout: float | None = 60.0,
    ) -> RpcReply:
        """Send one request and block for its terminal reply."""
        return self.submit(method, target, args).result(timeout=timeout)

    def _reader_loop(self) -> None:
        try:
            while True:
                frame = read_frame_blocking(self._rfile)
                if frame is None:
                    break
                reply = RpcReply.from_json(frame.decode("utf-8"))
                with self._lock:
                    pending = self._pending.get(reply.request_id)
                    if pending is not None and reply.kind in TERMINAL_KINDS:
                        del self._pending[reply.request_id]
                if pending is not None:
                    pending._push(reply)
        except (ServiceError, OSError, ValueError):
            pass
        finally:
            with self._lock:
                orphans = list(self._pending.values())
                self._pending.clear()
            for pending in orphans:
                pending._push(
                    RpcReply(
                        pending.request_id,
                        "error",
                        error="connection closed",
                        code="connection",
                    )
                )

    # -- convenience verbs ---------------------------------------------
    def load(self, source: dict | None = None) -> str:
        """Load a source spec ({} = the server's default dataset)."""
        reply = self.call("load", args={"source": source or {}})
        return reply.payload["handle"]

    def sketch(self, target: str, spec: dict) -> PendingQuery:
        return self.submit("sketch", target, {"sketch": spec})

    def row_count(self, target: str) -> int:
        return self.call("rowCount", target).payload["rows"]

    def schema(self, target: str) -> list[dict]:
        return self.call("schema", target).payload["columns"]

    def cancel(self, request_id: int) -> bool:
        reply = self.call("cancel", args={"requestId": request_id})
        return bool(reply.payload["cancelled"])

    def stats(self) -> dict:
        return self.call("stats").payload

    def cache_stats(self) -> dict:
        return self.call("cacheStats").payload

    def metrics_snapshot(self, fmt: str | None = None) -> dict:
        args = {"format": fmt} if fmt else {}
        return self.call("metricsSnapshot", args=args).payload

    def trace_dump(self, trace_id: str | None = None) -> list[dict]:
        args = {"traceId": trace_id} if trace_id else {}
        payload = self.call("traceDump", args=args).payload
        spans = payload.get("spans") if isinstance(payload, dict) else None
        return spans if isinstance(spans, list) else []

    def ping(self) -> bool:
        return self.call("ping").payload == {"pong": True}

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        self._reader.join(timeout=5.0)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
