"""Admission control and fair-share scheduling of session queries (§5.3).

Hillview's web server runs queries for many simultaneous users against one
shared cluster.  Two policies keep it interactive:

* **fair share** — a bounded pool of query workers picks the next query
  round-robin *across sessions*, so one chatty session cannot starve the
  rest, and admission control bounds each session's backlog;
* **newest query wins** — within a session, submitting a new sketch
  supersedes the in-flight one: a user who drags a new histogram does not
  care about the previous one anymore, so its remaining micropartitions
  are cancelled through the existing :class:`CancellationToken` machinery
  ("the UI cancels the previous version of the query", §5.3).

The scheduler is transport-agnostic: it executes requests against each
session's :class:`~repro.engine.web.WebServer` facade and pushes every
reply envelope into a caller-provided ``sink`` callable, which may block —
that is how transport backpressure propagates into the execution layer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable

from repro.engine.progress import CancellationToken
from repro.engine.rpc import RpcReply, RpcRequest
from repro.errors import EngineError
from repro.obs.logs import log_event, logging_enabled
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TraceContext, record_span, trace_enabled, use_context

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.sessions import Session

#: Task lifecycle states.
QUEUED, RUNNING, DONE = "queued", "running", "done"


@dataclass
class SchedulerMetrics:
    """Counters over the scheduler's lifetime (feeds the ``stats`` RPC)."""

    admitted: int = 0
    completed: int = 0
    cancelled: int = 0
    preempted: int = 0  # cancellations caused by newest-query-wins
    rejected: int = 0  # admission control: session backlog full
    errors: int = 0
    peak_running: int = 0
    peak_queued: int = 0

    def to_json(self) -> dict:
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "preempted": self.preempted,
            "rejected": self.rejected,
            "errors": self.errors,
            "peakRunning": self.peak_running,
            "peakQueued": self.peak_queued,
        }


class QueryTask:
    """One admitted query: a request bound to a session, a sink and a token."""

    def __init__(
        self,
        session: "Session",
        request: RpcRequest,
        sink: Callable[[RpcReply], None],
    ):
        self.session = session
        self.request = request
        self.sink = sink
        self.token = CancellationToken()
        self.state = QUEUED
        self.superseded = False
        self.done = threading.Event()
        # Queue-wait accounting: wall clock for the retroactive span,
        # monotonic for the measured duration.
        self.queued_wall = time.time()
        self.queued_monotonic = time.perf_counter()

    @property
    def preemptible(self) -> bool:
        """Only sketch queries participate in newest-query-wins: map and
        metadata operations mutate session state and must not be dropped."""
        return self.request.method == "sketch"

    def __repr__(self) -> str:
        return (
            f"<QueryTask {self.request.method} #{self.request.request_id} "
            f"session={self.session.session_id} {self.state}>"
        )


class FairShareScheduler:
    """Bounded-concurrency, round-robin-across-sessions query executor."""

    def __init__(self, max_concurrent: int = 4, max_queue_per_session: int = 32):
        if max_concurrent < 1:
            raise ValueError("the scheduler needs at least one query worker")
        self.max_concurrent = max_concurrent
        self.max_queue_per_session = max_queue_per_session
        self.metrics = SchedulerMetrics()
        self._cond = threading.Condition()
        self._queues: dict[str, deque[QueryTask]] = {}
        self._order: deque[str] = deque()  # round-robin cursor over sessions
        self._running: set[QueryTask] = set()
        self._shutdown = False
        self._threads = [
            # repro: ignore[C002] — each dequeued task restores its own captured context in _execute
            threading.Thread(
                target=self._worker_loop, name=f"query-worker-{i}", daemon=True
            )
            for i in range(max_concurrent)
        ]
        for thread in self._threads:
            thread.start()
        # Live-depth gauges: the registry reads the scheduler, not a
        # shadow count (a later scheduler in the same process takes over
        # the callback — there is one serving scheduler per daemon).
        REGISTRY.gauge(
            "scheduler.running",
            "queries executing right now",
            callback=lambda: self.running_count,
        )
        REGISTRY.gauge(
            "scheduler.queued",
            "queries waiting for a slot",
            callback=lambda: self.queued_count(),
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        session: "Session",
        request: RpcRequest,
        sink: Callable[[RpcReply], None],
    ) -> QueryTask:
        """Admit one request; replies stream into ``sink`` asynchronously.

        A new sketch supersedes the session's queued and running sketches
        (newest-query-wins).  A session whose backlog is full gets an
        immediate ``overloaded`` error envelope instead of admission.
        """
        task = QueryTask(session, request, sink)
        rejected = False
        with self._cond:
            if self._shutdown:
                raise EngineError("scheduler is shut down")
            queue = self._queues.get(session.session_id)
            backlog = len(queue) if queue is not None else 0
            # Admission control runs BEFORE preemption: a rejected request
            # must leave the session's in-flight query untouched.  It also
            # runs before any bookkeeping: a rejected submit must not
            # leave a queue entry or a round-robin slot behind.
            if backlog >= self.max_queue_per_session:
                self.metrics.rejected += 1
                task.state = DONE
                rejected = True
            else:
                if queue is None:
                    queue = self._queues.setdefault(session.session_id, deque())
                if session.session_id not in self._order:
                    self._order.append(session.session_id)
                if task.preemptible:
                    self._preempt_older(session, queue)
                queue.append(task)
                session.register_task(task)
                self.metrics.admitted += 1
                queued = sum(len(q) for q in self._queues.values())
                self.metrics.peak_queued = max(self.metrics.peak_queued, queued)
                self._cond.notify()
        if rejected:
            self._safe_sink(
                task,
                RpcReply(
                    request.request_id,
                    "error",
                    error=(
                        f"session {session.session_id} has "
                        f"{self.max_queue_per_session} queued queries"
                    ),
                    code="overloaded",
                ),
            )
            task.done.set()
        return task

    def _preempt_older(self, session: "Session", queue: deque[QueryTask]) -> None:
        """Newest-query-wins: cancel the session's older sketches (§5.3)."""
        victims = [t for t in queue if t.preemptible and not t.token.cancelled]
        victims += [
            t
            for t in self._running
            if t.session is session and t.preemptible and not t.token.cancelled
        ]
        for victim in victims:
            victim.superseded = True
            victim.token.cancel()
            self.metrics.preempted += 1
            session.metrics.preempted += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next_task(self) -> QueryTask | None:
        """Pop the next task, visiting sessions round-robin (fair share).

        Sessions whose backlog has drained are purged as they are
        visited — ``_queues`` entries and round-robin slots must not
        accumulate over a long-lived server's lifetime.  A purged session
        re-enters the rotation (at the back) on its next submit.
        """
        while self._order:
            session_id = self._order[0]
            queue = self._queues.get(session_id)
            if queue:
                self._order.rotate(-1)
                return queue.popleft()
            self._order.popleft()
            self._queues.pop(session_id, None)
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                task = self._next_task()
                while task is None and not self._shutdown:
                    self._cond.wait()
                    task = self._next_task()
                if task is None:
                    return  # shutting down with an empty queue
                self._running.add(task)
                self.metrics.peak_running = max(
                    self.metrics.peak_running, len(self._running)
                )
            try:
                self._execute(task)
            finally:
                with self._cond:
                    self._running.discard(task)
                task.state = DONE
                task.session.finish_task(task)
                task.done.set()

    def _execute(self, task: QueryTask) -> None:
        task.state = RUNNING
        session = task.session
        session.touch()
        request = task.request
        # Queue-wait telemetry: always measured (two clock reads), so
        # `profile: true` replies can report it even with tracing off;
        # the retroactive span and the histogram only fire when traced.
        wait = time.perf_counter() - task.queued_monotonic
        request.queue_wait_seconds = wait
        ctx = TraceContext.from_json(request.trace)
        if ctx is None and trace_enabled():
            # An untraced client on a tracing root: originate here so the
            # rest of the fan-out (web facade, cluster, workers) parents
            # into one server-side trace.
            ctx = TraceContext.new_root()
            request.trace = ctx.to_json()
        REGISTRY.histogram(
            "scheduler.queue_wait_seconds",
            "time from admission to execution",
        ).observe(wait)
        if ctx is not None:
            record_span(
                "scheduler.queue",
                ctx,
                task.queued_wall,
                wait,
                session=session.session_id,
                method=request.method,
            )
        if task.token.cancelled:
            # Superseded while still queued: answer without executing.
            self.metrics.cancelled += 1
            session.metrics.cancelled += 1
            self._safe_sink(
                task,
                RpcReply(
                    request.request_id,
                    "cancelled",
                    code="superseded" if task.superseded else "cancelled",
                ),
            )
            return
        started = time.perf_counter()
        last_kind = None
        for reply in session.web.execute(request, token=task.token):
            if reply.kind == "cancelled" and task.superseded and reply.code is None:
                # Qualify on a copy: the envelope object belongs to the
                # execution layer and may be shared (yielded to another
                # consumer, cached); mutating it in place would leak the
                # "superseded" tag into someone else's reply.
                reply = replace(reply, code="superseded")
            session.record_reply(reply)
            last_kind = reply.kind
            if not self._safe_sink(task, reply):
                # The client went away: stop feeding it and cancel the
                # remaining micropartitions.
                task.token.cancel()
        with self._cond:
            if last_kind == "cancelled" or (
                last_kind is None and task.token.cancelled
            ):
                # An empty reply stream is classified by token state: a
                # query cancelled before its first envelope did not
                # "complete".
                self.metrics.cancelled += 1
            elif last_kind == "error":
                self.metrics.errors += 1
            else:
                self.metrics.completed += 1
        elapsed = time.perf_counter() - started
        REGISTRY.histogram(
            "scheduler.query_seconds", "query execution wall-clock"
        ).observe(elapsed)
        if logging_enabled("debug"):
            with use_context(ctx):  # stamps traceId/spanId when traced
                log_event(
                    "query.done",
                    level="debug",
                    session=session.session_id,
                    method=request.method,
                    kind=last_kind or "cancelled",
                    queueWaitSeconds=round(wait, 6),
                    seconds=round(elapsed, 6),
                )
        session.touch()

    @staticmethod
    def _safe_sink(task: QueryTask, reply: RpcReply) -> bool:
        """Deliver one reply; a broken sink (dead connection) returns False."""
        try:
            task.sink(reply)
            return True
        except Exception:  # repro: ignore[B001] - transport failures must not kill us
            return False

    # ------------------------------------------------------------------
    # Introspection and shutdown
    # ------------------------------------------------------------------
    @property
    def running_count(self) -> int:
        with self._cond:
            return len(self._running)

    def queued_count(self, session_id: str | None = None) -> int:
        with self._cond:
            if session_id is not None:
                return len(self._queues.get(session_id, ()))
            return sum(len(q) for q in self._queues.values())

    def forget_session(self, session_id: str) -> None:
        """Drop a closed session's queue, finalizing the queries still in it.

        Tasks that were admitted but never ran must not dangle: each gets
        its token cancelled, a terminal ``cancelled`` envelope (best
        effort — the connection is usually gone too), and its ``done``
        event set so anything awaiting the task wakes up.
        """
        with self._cond:
            dropped = list(self._queues.pop(session_id, ()))
            try:
                self._order.remove(session_id)
            except ValueError:
                pass
            self.metrics.cancelled += len(dropped)
        for task in dropped:
            task.token.cancel()
            task.state = DONE
            task.session.metrics.cancelled += 1
            self._safe_sink(
                task,
                RpcReply(
                    task.request.request_id,
                    "cancelled",
                    code="session_closed",
                ),
            )
            task.session.finish_task(task)
            task.done.set()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Cancel everything queued and stop the worker threads."""
        with self._cond:
            self._shutdown = True
            for queue in self._queues.values():
                for task in queue:
                    task.token.cancel()
                    task.done.set()
                queue.clear()
            for task in self._running:
                task.token.cancel()
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
