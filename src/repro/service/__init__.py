"""The concurrent multi-client service layer (§2, §5.2–5.3).

Turns the in-process engine into a real service: an asyncio TCP transport
streaming progressive results with backpressure (:mod:`transport`), a
session manager holding per-client soft state with idle-TTL eviction
(:mod:`sessions`), an admission-controlled fair-share query scheduler
with newest-query-wins cancellation (:mod:`scheduler`), and — for the
horizontal tier — shard-placement agreement so many roots share one
worker fleet (:mod:`placement`), pluggable shared session stores so a
session resumes on any root (:mod:`session_store`), and a round-robin
connection director for tests and benchmarks (:mod:`director`).
"""

from repro.service.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    Decision,
    fleet_pressure,
    worker_pressure,
)
from repro.service.director import (
    ConnectionDirector,
    admin_call,
    probe_gateway,
    probe_root,
)
from repro.service.placement import (
    PlacementError,
    ShardPlacement,
    StalePlacementError,
    agree_placement,
    parse_fleet_spec,
    plan_moves,
)
from repro.service.scheduler import (
    FairShareScheduler,
    QueryTask,
    SchedulerMetrics,
)
from repro.service.session_store import (
    InMemorySessionStore,
    SessionRecord,
    SessionStore,
    SessionStoreError,
    SqliteSessionStore,
    open_session_store,
)
from repro.service.sessions import (
    Session,
    SessionManager,
    SessionMetrics,
    source_from_json,
)
from repro.service.slow import SlowdownSketch
from repro.service.transport import (
    PendingQuery,
    ServiceClient,
    ServiceError,
    ServiceServer,
    encode_frame,
    read_frame_blocking,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ConnectionDirector",
    "Decision",
    "FairShareScheduler",
    "InMemorySessionStore",
    "PendingQuery",
    "PlacementError",
    "QueryTask",
    "SchedulerMetrics",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Session",
    "SessionManager",
    "SessionMetrics",
    "SessionRecord",
    "SessionStore",
    "SessionStoreError",
    "ShardPlacement",
    "SlowdownSketch",
    "SqliteSessionStore",
    "StalePlacementError",
    "admin_call",
    "agree_placement",
    "encode_frame",
    "fleet_pressure",
    "open_session_store",
    "parse_fleet_spec",
    "plan_moves",
    "probe_gateway",
    "probe_root",
    "read_frame_blocking",
    "source_from_json",
    "worker_pressure",
]
