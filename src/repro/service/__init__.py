"""The concurrent multi-client service layer (§2, §5.2–5.3).

Turns the in-process engine into a real service: an asyncio TCP transport
streaming progressive results with backpressure (:mod:`transport`), a
session manager holding per-client soft state with idle-TTL eviction
(:mod:`sessions`), and an admission-controlled fair-share query scheduler
with newest-query-wins cancellation (:mod:`scheduler`).
"""

from repro.service.scheduler import (
    FairShareScheduler,
    QueryTask,
    SchedulerMetrics,
)
from repro.service.sessions import (
    Session,
    SessionManager,
    SessionMetrics,
    source_from_json,
)
from repro.service.slow import SlowdownSketch
from repro.service.transport import (
    PendingQuery,
    ServiceClient,
    ServiceError,
    ServiceServer,
    encode_frame,
    read_frame_blocking,
)

__all__ = [
    "FairShareScheduler",
    "PendingQuery",
    "QueryTask",
    "SchedulerMetrics",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Session",
    "SessionManager",
    "SessionMetrics",
    "SlowdownSketch",
    "encode_frame",
    "read_frame_blocking",
    "source_from_json",
]
