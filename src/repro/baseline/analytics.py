"""A general-purpose analytics engine — the "Spark" baseline of Figure 5.

The paper's end-to-end comparison connects a visualization front end to a
general-purpose back end and finds it slower and an order of magnitude more
bandwidth-hungry than Hillview, *not* because the back end is badly built
but because of what the architecture computes and ships:

* results are exact and **display-unbounded** — a distinct query returns
  the full distinct set, a group-by returns every group, a sort returns
  whole rows with all their columns;
* the driver receives one complete result per partition task, each with a
  fixed serialization/metadata overhead, and merges them itself;
* there are no progressive partials: the user sees nothing until the last
  task finishes (first-result latency == total latency).

This engine is partition-parallel and numpy-backed (a *fair* baseline —
row-at-a-time Python would flatter Hillview), with the architectural
properties above, which is exactly what Figure 5 measures.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import QueryError
from repro.table.column import StringColumn
from repro.table.dictionary import MISSING_CODE
from repro.table.table import Table

#: Per-task result overhead: task metadata, accumulator updates, and
#: serialization framing a general-purpose scheduler ships with each result.
TASK_OVERHEAD_BYTES = 4096


@dataclass
class QueryStats:
    """Driver-side accounting for one query."""

    seconds: float = 0.0
    bytes_to_driver: int = 0
    tasks: int = 0

    @property
    def first_result_seconds(self) -> float:
        """No partial results: nothing is visible before completion."""
        return self.seconds


@dataclass
class GeneralPurposeEngine:
    """Exact, partition-parallel query engine over in-memory tables."""

    partitions: list[Table]
    max_workers: int = 8
    last_stats: QueryStats = field(default_factory=QueryStats)

    def __post_init__(self) -> None:
        if not self.partitions:
            raise QueryError("the engine needs at least one partition")

    # ------------------------------------------------------------------
    # Execution scaffolding
    # ------------------------------------------------------------------
    def _run_tasks(self, task: Callable[[Table], object]) -> list[object]:
        """Run one task per partition; account bytes shipped to the driver."""
        start = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(self.max_workers) as pool:
            results = list(pool.map(task, self.partitions))
        transferred = sum(len(pickle.dumps(r)) for r in results)
        transferred += TASK_OVERHEAD_BYTES * len(results)
        self.last_stats = QueryStats(
            seconds=time.perf_counter() - start,
            bytes_to_driver=transferred,
            tasks=len(results),
        )
        return results

    # ------------------------------------------------------------------
    # Queries mirroring the O1-O11 semantics
    # ------------------------------------------------------------------
    def sort_rows(self, columns: Sequence[str], limit: int = 1000) -> list[tuple]:
        """``SELECT * ORDER BY columns LIMIT limit``: ships whole rows."""
        columns = list(columns)

        def task(partition: Table) -> list[tuple]:
            rows = partition.members.indices()
            keys = [
                partition.column(c).sort_surrogate(rows) for c in reversed(columns)
            ]
            order = np.lexsort(keys)[:limit]
            top = rows[order]
            all_columns = [partition.column(c) for c in partition.column_names]
            # Whole rows, all columns — what a generic ORDER BY returns.
            return [
                tuple(col.value(int(r)) for col in all_columns) for r in top
            ]

        partial_tops = self._run_tasks(task)
        merged: list[tuple] = []
        for top in partial_tops:
            merged.extend(top)  # driver-side merge of complete task results
        key_positions = [self.partitions[0].column_names.index(c) for c in columns]
        merged.sort(
            key=lambda row: tuple(
                (row[p] is None, row[p]) for p in key_positions
            )
        )
        return merged[:limit]

    def quantile(self, column: str, fraction: float) -> float:
        """Exact quantile: ships every partition's full sorted column."""

        def task(partition: Table) -> np.ndarray:
            values = partition.column(column).numeric_values(
                partition.members.indices()
            )
            return np.sort(values[~np.isnan(values)])

        arrays = self._run_tasks(task)
        merged = np.concatenate(arrays)
        stats = self.last_stats
        merged.sort()
        result = float(np.quantile(merged, fraction)) if len(merged) else float("nan")
        self.last_stats = stats
        return result

    def column_range(self, column: str) -> tuple[float, float, int]:
        def task(partition: Table) -> tuple[float, float, int]:
            values = partition.column(column).numeric_values(
                partition.members.indices()
            )
            present = values[~np.isnan(values)]
            if len(present) == 0:
                return (np.inf, -np.inf, 0)
            return (float(present.min()), float(present.max()), len(present))

        parts = self._run_tasks(task)
        lo = min(p[0] for p in parts)
        hi = max(p[1] for p in parts)
        count = sum(p[2] for p in parts)
        return lo, hi, count

    def histogram(
        self, column: str, lo: float, hi: float, buckets: int
    ) -> np.ndarray:
        """Exact histogram (no sampling, no partial results)."""
        width = (hi - lo) / buckets or 1.0

        def task(partition: Table) -> np.ndarray:
            values = partition.column(column).numeric_values(
                partition.members.indices()
            )
            values = values[~np.isnan(values)]
            idx = np.floor((values - lo) / width)
            idx = np.clip(idx, 0, buckets - 1)
            inside = (values >= lo) & (values <= hi)
            return np.bincount(idx[inside].astype(np.int64), minlength=buckets)

        parts = self._run_tasks(task)
        return np.sum(parts, axis=0)

    def filtered_histogram(
        self,
        column: str,
        low: float,
        high: float,
        buckets: int,
    ) -> np.ndarray:
        """Filter materializes intermediate partitions, then histogram."""

        def task(partition: Table) -> np.ndarray:
            rows = partition.members.indices()
            values = partition.column(column).numeric_values(rows)
            with np.errstate(invalid="ignore"):
                keep = (values >= low) & (values <= high)
            # Materialize the filtered intermediate (generic engines do).
            filtered = values[keep].copy()
            width = (high - low) / buckets or 1.0
            idx = np.clip(np.floor((filtered - low) / width), 0, buckets - 1)
            return np.bincount(idx.astype(np.int64), minlength=buckets)

        parts = self._run_tasks(task)
        return np.sum(parts, axis=0)

    def distinct_values(self, column: str) -> set:
        """``SELECT DISTINCT col``: the full set comes back to the driver."""

        def task(partition: Table) -> set:
            col = partition.column(column)
            rows = partition.members.indices()
            if isinstance(col, StringColumn):
                codes = col.codes_at(rows)
                used = np.unique(codes[codes != MISSING_CODE])
                return {col.dictionary.value(int(c)) for c in used}
            values = col.numeric_values(rows)
            return set(np.unique(values[~np.isnan(values)]).tolist())

        parts = self._run_tasks(task)
        merged: set = set()
        for part in parts:
            merged |= part
        return merged

    def group_counts(self, column: str) -> dict:
        """``SELECT col, COUNT(*) GROUP BY col``: every group is shipped."""

        def task(partition: Table) -> dict:
            col = partition.column(column)
            rows = partition.members.indices()
            if isinstance(col, StringColumn):
                codes = col.codes_at(rows)
                codes = codes[codes != MISSING_CODE]
                unique, counts = np.unique(codes, return_counts=True)
                return {
                    col.dictionary.value(int(c)): int(n)
                    for c, n in zip(unique, counts)
                }
            values = col.numeric_values(rows)
            values = values[~np.isnan(values)]
            unique, counts = np.unique(values, return_counts=True)
            return {float(v): int(n) for v, n in zip(unique, counts)}

        parts = self._run_tasks(task)
        merged: dict = {}
        for part in parts:
            for key, count in part.items():
                merged[key] = merged.get(key, 0) + count
        return merged

    def top_k(self, column: str, k: int) -> list[tuple[object, int]]:
        """Heavy hitters the general-purpose way: full group-by, then top-k."""
        counts = self.group_counts(column)
        stats = self.last_stats
        result = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))[:k]
        self.last_stats = stats
        return result

    def heatmap(
        self,
        x_column: str,
        y_column: str,
        x_range: tuple[float, float],
        y_range: tuple[float, float],
        x_bins: int,
        y_bins: int,
    ) -> np.ndarray:
        """Exact 2-D histogram."""
        x_lo, x_hi = x_range
        y_lo, y_hi = y_range
        x_width = (x_hi - x_lo) / x_bins or 1.0
        y_width = (y_hi - y_lo) / y_bins or 1.0

        def task(partition: Table) -> np.ndarray:
            rows = partition.members.indices()
            xs = partition.column(x_column).numeric_values(rows)
            ys = partition.column(y_column).numeric_values(rows)
            ok = ~np.isnan(xs) & ~np.isnan(ys)
            ok &= (xs >= x_lo) & (xs <= x_hi) & (ys >= y_lo) & (ys <= y_hi)
            xi = np.clip(np.floor((xs[ok] - x_lo) / x_width), 0, x_bins - 1)
            yi = np.clip(np.floor((ys[ok] - y_lo) / y_width), 0, y_bins - 1)
            flat = xi.astype(np.int64) * y_bins + yi.astype(np.int64)
            return np.bincount(flat, minlength=x_bins * y_bins).reshape(
                x_bins, y_bins
            )

        parts = self._run_tasks(task)
        return np.sum(parts, axis=0)
