"""A row-oriented in-memory database with a small SQL dialect (§7.2.1).

The paper measures a "common high-end commercial in-memory database system"
computing a histogram and finds it an order of magnitude slower than a
vizketch, "because it has overheads that vizketches avoid: data structures
must support indexes, transactions, integrity constraints, logging, queries
of many types".  This baseline reproduces those structural overheads
honestly for an in-process Python database:

* rows are stored as tuples and processed row-at-a-time through an
  interpreted expression tree (no columnar vectorization);
* every insert passes type/constraint checks and maintains indexes;
* queries go through parsing, planning and per-row evaluation.

Supported dialect::

    SELECT <* | col, ... | AGG(col), ...> FROM <table>
      [WHERE <col> <op> <literal> [AND ...]]
      [GROUP BY <col>]
      [ORDER BY <col|agg> [DESC]]
      [LIMIT <n>]

with aggregates COUNT(*), COUNT(col), SUM, AVG, MIN, MAX and the extension
``HISTOGRAM(col, lo, hi, buckets)`` used by the microbenchmark.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import QueryError
from repro.table.schema import ContentsKind, Schema
from repro.table.table import Table

_TOKEN = re.compile(
    r"\s*(?:(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<op><=|>=|!=|=|<|>)"
    r"|(?P<punct>[(),*])"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*))"
)

_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX", "HISTOGRAM")


def _tokenize(sql: str) -> list[tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(sql):
        match = _TOKEN.match(sql, position)
        if match is None:
            if sql[position:].strip():
                raise QueryError(f"cannot tokenize SQL near {sql[position:][:20]!r}")
            break
        position = match.end()
        for kind in ("number", "string", "op", "punct", "word"):
            text = match.group(kind)
            if text is not None:
                tokens.append((kind, text))
                break
    return tokens


@dataclass
class _Aggregate:
    func: str
    column: str | None  # None for COUNT(*)
    args: tuple = ()

    @property
    def label(self) -> str:
        inner = self.column if self.column is not None else "*"
        return f"{self.func.lower()}({inner})"


@dataclass
class _Condition:
    column: str
    op: str
    value: object

    def matches(self, row_value: object | None) -> bool:
        if row_value is None:
            return False
        value = self.value
        if self.op == "=":
            return row_value == value
        if self.op == "!=":
            return row_value != value
        if self.op == "<":
            return row_value < value  # type: ignore[operator]
        if self.op == "<=":
            return row_value <= value  # type: ignore[operator]
        if self.op == ">":
            return row_value > value  # type: ignore[operator]
        return row_value >= value  # type: ignore[operator]


@dataclass
class _Query:
    table: str
    columns: list[str] = field(default_factory=list)
    aggregates: list[_Aggregate] = field(default_factory=list)
    star: bool = False
    where: list[_Condition] = field(default_factory=list)
    group_by: str | None = None
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None


class _Parser:
    def __init__(self, sql: str):
        self.tokens = _tokenize(sql)
        self.position = 0

    def _peek(self) -> tuple[str, str] | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.position += 1
        return token

    def _expect_word(self, word: str) -> None:
        kind, text = self._next()
        if kind != "word" or text.upper() != word:
            raise QueryError(f"expected {word}, got {text!r}")

    def _accept_word(self, word: str) -> bool:
        token = self._peek()
        if token and token[0] == "word" and token[1].upper() == word:
            self.position += 1
            return True
        return False

    def _accept_punct(self, punct: str) -> bool:
        token = self._peek()
        if token and token[0] == "punct" and token[1] == punct:
            self.position += 1
            return True
        return False

    def parse(self) -> _Query:
        self._expect_word("SELECT")
        query = _Query(table="")
        self._parse_select_list(query)
        self._expect_word("FROM")
        kind, name = self._next()
        if kind != "word":
            raise QueryError(f"expected table name, got {name!r}")
        query.table = name
        if self._accept_word("WHERE"):
            self._parse_where(query)
        if self._accept_word("GROUP"):
            self._expect_word("BY")
            query.group_by = self._word()
        if self._accept_word("ORDER"):
            self._expect_word("BY")
            query.order_by = self._order_target()
            if self._accept_word("DESC"):
                query.descending = True
            else:
                self._accept_word("ASC")
        if self._accept_word("LIMIT"):
            kind, text = self._next()
            if kind != "number":
                raise QueryError("LIMIT needs a number")
            query.limit = int(float(text))
        if self._peek() is not None:
            raise QueryError(f"unexpected trailing token {self._peek()!r}")
        return query

    def _word(self) -> str:
        kind, text = self._next()
        if kind != "word":
            raise QueryError(f"expected identifier, got {text!r}")
        return text

    def _order_target(self) -> str:
        """A column name or an aggregate label like ``count(*)``."""
        word = self._word()
        if word.upper() in _AGGREGATES and self._accept_punct("("):
            if self._accept_punct("*"):
                inner = "*"
            else:
                inner = self._word()
            if not self._accept_punct(")"):
                raise QueryError(f"expected ) in ORDER BY {word}(...)")
            return f"{word.lower()}({inner})"
        return word

    def _literal(self) -> object:
        kind, text = self._next()
        if kind == "number":
            return float(text) if "." in text else int(text)
        if kind == "string":
            return text[1:-1].replace("''", "'")
        raise QueryError(f"expected literal, got {text!r}")

    def _parse_select_list(self, query: _Query) -> None:
        while True:
            if self._accept_punct("*"):
                query.star = True
            else:
                word = self._word()
                if word.upper() in _AGGREGATES and self._accept_punct("("):
                    query.aggregates.append(self._parse_aggregate(word.upper()))
                else:
                    query.columns.append(word)
            if not self._accept_punct(","):
                break

    def _parse_aggregate(self, func: str) -> _Aggregate:
        if self._accept_punct("*"):
            if func != "COUNT":
                raise QueryError(f"{func}(*) is not supported")
            if not self._accept_punct(")"):
                raise QueryError("expected ) after COUNT(*)")
            return _Aggregate("COUNT", None)
        column = self._word()
        args = []
        while self._accept_punct(","):
            args.append(self._literal())
        if not self._accept_punct(")"):
            raise QueryError(f"expected ) in {func}(...)")
        if func == "HISTOGRAM" and len(args) != 3:
            raise QueryError("HISTOGRAM(col, lo, hi, buckets) takes 4 arguments")
        return _Aggregate(func, column, tuple(args))

    def _parse_where(self, query: _Query) -> None:
        while True:
            column = self._word()
            kind, op = self._next()
            if kind != "op":
                raise QueryError(f"expected comparison operator, got {op!r}")
            query.where.append(_Condition(column, op, self._literal()))
            if not self._accept_word("AND"):
                break


class _StoredTable:
    """Row-major storage with per-column type checks and hash indexes."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self.column_positions = {d.name: i for i, d in enumerate(schema)}
        self.rows: list[tuple] = []
        self.indexes: dict[str, dict[object, list[int]]] = {}

    def check_row(self, row: tuple) -> None:
        """Type/constraint checking, paid per insert (DB overhead)."""
        if len(row) != len(self.schema):
            raise QueryError(
                f"row width {len(row)} != schema width {len(self.schema)}"
            )
        for value, desc in zip(row, self.schema):
            if value is None:
                continue
            if desc.kind is ContentsKind.INTEGER and not isinstance(value, int):
                raise QueryError(f"column {desc.name!r} expects int, got {value!r}")
            if desc.kind is ContentsKind.DOUBLE and not isinstance(value, (int, float)):
                raise QueryError(f"column {desc.name!r} expects float, got {value!r}")
            if desc.kind.is_string and not isinstance(value, str):
                raise QueryError(f"column {desc.name!r} expects str, got {value!r}")

    def insert(self, row: tuple) -> None:
        self.check_row(row)
        row_id = len(self.rows)
        self.rows.append(row)
        for column, index in self.indexes.items():
            index.setdefault(row[self.column_positions[column]], []).append(row_id)

    def build_index(self, column: str) -> None:
        position = self.column_positions[column]
        index: dict[object, list[int]] = {}
        for row_id, row in enumerate(self.rows):
            index.setdefault(row[position], []).append(row_id)
        self.indexes[column] = index


class RowStoreDatabase:
    """The in-memory row-store database baseline."""

    def __init__(self) -> None:
        self.tables: dict[str, _StoredTable] = {}
        self.statements_executed = 0

    # ------------------------------------------------------------------
    # DDL / loading
    # ------------------------------------------------------------------
    def create_table(self, name: str, schema: Schema) -> None:
        if name in self.tables:
            raise QueryError(f"table {name!r} already exists")
        self.tables[name] = _StoredTable(name, schema)

    def insert_rows(self, name: str, rows: Iterable[tuple]) -> int:
        stored = self._table(name)
        count = 0
        for row in rows:
            stored.insert(tuple(row))
            count += 1
        return count

    def load_table(self, name: str, table: Table) -> int:
        """Load a columnar :class:`Table` into row-major storage."""
        self.create_table(name, table.schema)
        names = table.column_names
        columns = [table.column(c) for c in names]
        rows = table.members.indices()
        return self.insert_rows(
            name,
            (tuple(col.value(int(r)) for col in columns) for r in rows),
        )

    def create_index(self, table: str, column: str) -> None:
        stored = self._table(table)
        if column not in stored.column_positions:
            raise QueryError(f"unknown column {column!r}")
        stored.build_index(column)

    def _table(self, name: str) -> _StoredTable:
        try:
            return self.tables[name]
        except KeyError:
            raise QueryError(f"unknown table {name!r}") from None

    # ------------------------------------------------------------------
    # Query execution (row-at-a-time, interpreted)
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> list[tuple]:
        """Run a query, returning result rows."""
        self.statements_executed += 1
        query = _Parser(sql).parse()
        stored = self._table(query.table)
        row_ids = self._candidate_rows(stored, query)

        if query.aggregates and query.group_by is None:
            return [self._aggregate_rows(stored, query, row_ids)]
        if query.group_by is not None:
            return self._grouped(stored, query, row_ids)
        return self._projected(stored, query, row_ids)

    def _candidate_rows(self, stored: _StoredTable, query: _Query) -> list[int]:
        conditions = list(query.where)
        # Use a hash index for one equality condition if available.
        candidates: list[int] | None = None
        for i, cond in enumerate(conditions):
            if cond.op == "=" and cond.column in stored.indexes:
                candidates = stored.indexes[cond.column].get(cond.value, [])
                del conditions[i]
                break
        if candidates is None:
            candidates = range(len(stored.rows))  # type: ignore[assignment]
        positions = stored.column_positions
        for cond in conditions:
            if cond.column not in positions:
                raise QueryError(f"unknown column {cond.column!r}")
        result = []
        for row_id in candidates:
            row = stored.rows[row_id]
            ok = True
            for cond in conditions:
                if not cond.matches(row[positions[cond.column]]):
                    ok = False
                    break
            if ok:
                result.append(row_id)
        return result

    def _aggregate_rows(
        self, stored: _StoredTable, query: _Query, row_ids: Iterable[int]
    ) -> tuple:
        states = [_AggState(agg, stored) for agg in query.aggregates]
        for row_id in row_ids:
            row = stored.rows[row_id]
            for state in states:
                state.update(row)
        return tuple(state.result() for state in states)

    def _grouped(
        self, stored: _StoredTable, query: _Query, row_ids: Iterable[int]
    ) -> list[tuple]:
        position = stored.column_positions.get(query.group_by or "")
        if position is None:
            raise QueryError(f"unknown column {query.group_by!r}")
        groups: dict[object, list[_AggState]] = {}
        for row_id in row_ids:
            row = stored.rows[row_id]
            key = row[position]
            states = groups.get(key)
            if states is None:
                states = [_AggState(agg, stored) for agg in query.aggregates]
                groups[key] = states
            for state in states:
                state.update(row)
        rows = [
            (key, *(state.result() for state in states))
            for key, states in groups.items()
        ]
        return self._order_limit(rows, query, header=[query.group_by or ""]
                                 + [a.label for a in query.aggregates])

    def _projected(
        self, stored: _StoredTable, query: _Query, row_ids: list[int]
    ) -> list[tuple]:
        if query.star:
            names = [d.name for d in stored.schema]
        else:
            names = query.columns
        positions = []
        for name in names:
            if name not in stored.column_positions:
                raise QueryError(f"unknown column {name!r}")
            positions.append(stored.column_positions[name])
        rows = [tuple(stored.rows[r][p] for p in positions) for r in row_ids]
        return self._order_limit(rows, query, header=names)

    def _order_limit(
        self, rows: list[tuple], query: _Query, header: list[str]
    ) -> list[tuple]:
        if query.order_by is not None:
            if query.order_by not in header:
                raise QueryError(f"ORDER BY column {query.order_by!r} not in output")
            position = header.index(query.order_by)
            # NULLs sort last in either direction (common SQL behavior).
            present = [r for r in rows if r[position] is not None]
            absent = [r for r in rows if r[position] is None]
            present.sort(key=lambda r: r[position], reverse=query.descending)
            rows = present + absent
        if query.limit is not None:
            rows = rows[: query.limit]
        return rows


class _AggState:
    """One aggregate's running state, updated row-at-a-time."""

    def __init__(self, aggregate: _Aggregate, stored: _StoredTable):
        self.aggregate = aggregate
        self.position = (
            stored.column_positions[aggregate.column]
            if aggregate.column is not None
            else -1
        )
        if aggregate.column is not None and aggregate.column not in stored.column_positions:
            raise QueryError(f"unknown column {aggregate.column!r}")
        self.count = 0
        self.total = 0.0
        self.minimum: object | None = None
        self.maximum: object | None = None
        if aggregate.func == "HISTOGRAM":
            lo, hi, buckets = aggregate.args
            self.lo = float(lo)
            self.hi = float(hi)
            self.buckets = int(buckets)
            self.width = (self.hi - self.lo) / self.buckets or 1.0
            self.counts = [0] * self.buckets

    def update(self, row: tuple) -> None:
        func = self.aggregate.func
        if func == "COUNT" and self.position < 0:
            self.count += 1
            return
        value = row[self.position]
        if value is None:
            return
        if func == "COUNT":
            self.count += 1
        elif func == "SUM" or func == "AVG":
            self.count += 1
            self.total += float(value)  # type: ignore[arg-type]
        elif func == "MIN":
            if self.minimum is None or value < self.minimum:  # type: ignore[operator]
                self.minimum = value
        elif func == "MAX":
            if self.maximum is None or value > self.maximum:  # type: ignore[operator]
                self.maximum = value
        elif func == "HISTOGRAM":
            v = float(value)  # type: ignore[arg-type]
            if self.lo <= v <= self.hi:
                bucket = min(int((v - self.lo) / self.width), self.buckets - 1)
                self.counts[bucket] += 1

    def result(self) -> object:
        func = self.aggregate.func
        if func == "COUNT":
            return self.count
        if func == "SUM":
            return self.total
        if func == "AVG":
            return self.total / self.count if self.count else None
        if func == "MIN":
            return self.minimum
        if func == "MAX":
            return self.maximum
        return tuple(self.counts)
