"""Baseline systems the paper compares against (§7.1, §7.2.1).

* :mod:`repro.baseline.rowstore` — a row-oriented in-memory database with a
  small SQL dialect, standing in for the unnamed "high-end commercial
  in-memory database" of §7.2.1.  It pays the per-row interpretation,
  type-checking and indexing costs a general DB pays and a specialized
  columnar sketch avoids.
* :mod:`repro.baseline.analytics` — a general-purpose partition-parallel
  analytics engine ("Spark" in Figure 5): exact computation, complete
  (display-unbounded) result sets shipped to the driver, per-task overheads,
  and no progressive partial results.
"""

from repro.baseline.rowstore import RowStoreDatabase
from repro.baseline.analytics import GeneralPurposeEngine

__all__ = ["RowStoreDatabase", "GeneralPurposeEngine"]
