"""Save-table vizketch (§5.4).

Hillview saves a derived table by "a special vizketch with a summarize
function that writes a data record to the repository and returns an error
indication, while the merge function combines error indications."  Each
worker stores its partition; the merged summary tells the UI how many rows
and files were written and carries any per-partition errors.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.serialization import Decoder, Encoder
from repro.core.sketch import Sketch, Summary
from repro.table.table import Table


@dataclass
class SaveStatus(Summary):
    """Outcome of writing partitions to a repository."""

    files: list[str] = field(default_factory=list)
    rows_written: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def encode(self, enc: Encoder) -> None:
        enc.write_str_list(self.files)
        enc.write_uvarint(self.rows_written)
        enc.write_str_list(self.errors)

    @classmethod
    def decode(cls, dec: Decoder) -> "SaveStatus":
        return cls(
            files=[s or "" for s in dec.read_str_list()],
            rows_written=dec.read_uvarint(),
            errors=[s or "" for s in dec.read_str_list()],
        )


class SaveTableSketch(Sketch[SaveStatus]):
    """Write each shard to ``directory`` in the chosen format.

    Formats: ``"hvc"`` (this library's columnar binary format) or ``"csv"``.
    Not cacheable: the side effect must run on every invocation.
    """

    deterministic = False

    def __init__(self, directory: str, format: str = "hvc"):
        if format not in ("hvc", "csv"):
            raise ValueError(f"unknown save format {format!r}")
        self.directory = directory
        self.format = format

    @property
    def name(self) -> str:
        return f"SaveTable({self.directory},{self.format})"

    def zero(self) -> SaveStatus:
        return SaveStatus()

    def summarize(self, table: Table) -> SaveStatus:
        # Imported here: storage depends on table, not on sketches.
        from repro.storage import columnar, csv_io

        safe_shard = table.shard_id.replace("/", "_").replace(os.sep, "_")
        filename = f"part-{safe_shard}.{self.format}"
        path = os.path.join(self.directory, filename)
        try:
            os.makedirs(self.directory, exist_ok=True)
            if self.format == "hvc":
                columnar.write_table(table, path)
            else:
                csv_io.write_csv(table, path)
        except OSError as exc:
            return SaveStatus(errors=[f"{path}: {exc}"])
        return SaveStatus(files=[path], rows_written=table.num_rows)

    def merge(self, left: SaveStatus, right: SaveStatus) -> SaveStatus:
        return SaveStatus(
            files=sorted(left.files + right.files),
            rows_written=left.rows_written + right.rows_written,
            errors=left.errors + right.errors,
        )
