"""Every vizketch described in the paper (§4.3, Appendix B).

Chart vizketches: histograms (sampled and streaming), CDFs, stacked and
normalized stacked histograms, heat maps and trellis plots.

Tabular-view vizketches: next items, quantile (scroll bar), find text,
heavy hitters (Misra-Gries and sampling).

Auxiliary sketches (§B.3): column moments/range, distinct counts (exact and
HyperLogLog), bottom-k distinct string quantiles, PCA correlation, and the
save-table sketch.
"""

from repro.sketches.moments import ColumnStats, MomentsSketch
from repro.sketches.histogram import HistogramSummary, HistogramSketch
from repro.sketches.cdf import CdfSketch
from repro.sketches.stacked import StackedHistogramSummary, StackedHistogramSketch
from repro.sketches.heatmap import HeatmapSummary, HeatmapSketch
from repro.sketches.trellis import (
    TrellisHeatmapSketch,
    TrellisHistogramSketch,
    TrellisHistogramSummary,
    TrellisSummary,
)
from repro.sketches.next_items import NextKList, NextKSketch
from repro.sketches.quantile import QuantileSummary, SampleQuantileSketch
from repro.sketches.find_text import FindResult, FindTextSketch
from repro.sketches.heavy_hitters import (
    FrequencySummary,
    MisraGriesSketch,
    SampleHeavyHittersSketch,
)
from repro.sketches.distinct import DistinctSetSummary, ExactDistinctSketch
from repro.sketches.hll import HllSummary, HyperLogLogSketch
from repro.sketches.bottomk import BottomKSummary, BottomKDistinctSketch
from repro.sketches.pca import CorrelationSummary, CorrelationSketch
from repro.sketches.save import SaveStatus, SaveTableSketch

__all__ = [
    "ColumnStats",
    "MomentsSketch",
    "HistogramSummary",
    "HistogramSketch",
    "CdfSketch",
    "StackedHistogramSummary",
    "StackedHistogramSketch",
    "HeatmapSummary",
    "HeatmapSketch",
    "TrellisSummary",
    "TrellisHeatmapSketch",
    "TrellisHistogramSketch",
    "TrellisHistogramSummary",
    "NextKList",
    "NextKSketch",
    "QuantileSummary",
    "SampleQuantileSketch",
    "FindResult",
    "FindTextSketch",
    "FrequencySummary",
    "MisraGriesSketch",
    "SampleHeavyHittersSketch",
    "DistinctSetSummary",
    "ExactDistinctSketch",
    "HllSummary",
    "HyperLogLogSketch",
    "BottomKSummary",
    "BottomKDistinctSketch",
    "CorrelationSummary",
    "CorrelationSketch",
    "SaveStatus",
    "SaveTableSketch",
]
