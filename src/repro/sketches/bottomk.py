"""Bottom-k sampling over *distinct* strings (Appendix B.1).

To bucket an arbitrary string column without sorting it, Hillview computes
approximate quantiles over the **distinct** strings with a bottom-k sketch
[Cohen & Kaplan 2007; Thorup 2013]: every value is hashed, and the summary
keeps the k values with the smallest hashes.  Because the hash ignores
multiplicity, the surviving values are a uniform sample of the distinct
values; their order statistics estimate the distinct-quantiles used as
equi-depth bucket boundaries.

The k-th smallest hash also yields a distinct-count estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rand import stable_hash64
from repro.core.serialization import Decoder, Encoder
from repro.core.sketch import Sketch, Summary
from repro.errors import ColumnKindError
from repro.table.column import StringColumn
from repro.table.dictionary import MISSING_CODE
from repro.table.table import Table

_HASH_SPAN = float(1 << 64)


@dataclass
class BottomKSummary(Summary):
    """The k distinct values with the smallest hashes, sorted by hash."""

    k: int
    #: (hash, value) pairs sorted by hash ascending; len <= k.
    entries: list[tuple[int, str]] = field(default_factory=list)
    missing: int = 0

    @property
    def saturated(self) -> bool:
        """True when the sketch holds k entries (its estimate is valid)."""
        return len(self.entries) >= self.k

    def values_sorted(self) -> list[str]:
        """The sampled distinct values in alphabetical order."""
        return sorted(value for _, value in self.entries)

    def distinct_estimate(self) -> float:
        """Estimated number of distinct values (exact when unsaturated)."""
        if not self.saturated:
            return float(len(self.entries))
        kth_hash = self.entries[-1][0]
        if kth_hash == 0:
            return float(len(self.entries))
        return (self.k - 1) * _HASH_SPAN / kth_hash

    def quantile_boundaries(self, buckets: int, min_value: str | None = None) -> list[str]:
        """Equi-depth bucket boundaries over the distinct values.

        ``min_value`` (the true column minimum, from the range sketch)
        anchors the first boundary so no value falls below the first bucket.
        """
        values = self.values_sorted()
        if not values:
            return [min_value] if min_value is not None else []
        buckets = max(1, min(buckets, len(values)))
        boundaries = []
        for i in range(buckets):
            boundaries.append(values[(i * len(values)) // buckets])
        if min_value is not None:
            boundaries[0] = min(boundaries[0], min_value)
        # Deduplicate while preserving order (quantiles can repeat).
        seen: set[str] = set()
        unique = []
        for b in boundaries:
            if b not in seen:
                seen.add(b)
                unique.append(b)
        return unique

    def encode(self, enc: Encoder) -> None:
        enc.write_uvarint(self.k)
        enc.write_uvarint(len(self.entries))
        for hash_value, value in self.entries:
            enc.write_uvarint(hash_value)
            enc.write_str(value)
        enc.write_uvarint(self.missing)

    @classmethod
    def decode(cls, dec: Decoder) -> "BottomKSummary":
        k = dec.read_uvarint()
        entries = []
        for _ in range(dec.read_uvarint()):
            hash_value = dec.read_uvarint()
            entries.append((hash_value, dec.read_str() or ""))
        return cls(k=k, entries=entries, missing=dec.read_uvarint())


class BottomKDistinctSketch(Sketch[BottomKSummary]):
    """Bottom-k sketch over the distinct strings of a column.

    Deterministic given its seed (value hashes depend only on content), so
    replay after failure reproduces identical boundaries (§5.8).
    """

    def __init__(self, column: str, k: int = 500, seed: int = 0):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.column = column
        self.k = k
        self.seed = seed

    def with_seed(self, seed: int) -> "BottomKDistinctSketch":
        return BottomKDistinctSketch(self.column, self.k, seed)

    @property
    def name(self) -> str:
        return f"BottomK({self.column},k={self.k})"

    def cache_key(self) -> str:
        return f"BottomK({self.column!r},{self.k},seed={self.seed})"

    def zero(self) -> BottomKSummary:
        return BottomKSummary(k=self.k)

    def summarize(self, table: Table) -> BottomKSummary:
        column = table.column(self.column)
        if not isinstance(column, StringColumn):
            raise ColumnKindError(
                f"bottom-k distinct sampling needs a string column, got "
                f"{self.column!r} of kind {column.kind.value}"
            )
        rows = table.members.indices()
        codes = column.codes_at(rows)
        present = codes[codes != MISSING_CODE]
        missing = len(codes) - len(present)
        used = np.unique(present)
        entries = []
        for code in used:
            value = column.dictionary.value(int(code))
            entries.append((stable_hash64("bottomk", self.seed, value), value))
        entries.sort()
        return BottomKSummary(k=self.k, entries=entries[: self.k], missing=missing)

    def merge(self, left: BottomKSummary, right: BottomKSummary) -> BottomKSummary:
        combined: dict[str, int] = {}
        for hash_value, value in left.entries + right.entries:
            combined[value] = hash_value  # identical content -> identical hash
        entries = sorted((h, v) for v, h in combined.items())
        return BottomKSummary(
            k=self.k,
            entries=entries[: self.k],
            missing=left.missing + right.missing,
        )
