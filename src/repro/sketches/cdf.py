"""CDF vizketch (Appendix B.1).

A CDF rendering has one bucket per *horizontal pixel*; the vertical range is
always [0, 1], which makes the sample size ``O(V^2 log(1/delta))``
independent of bucket probabilities (unlike histograms).  The summary is a
histogram summary at pixel granularity; the cumulative sum is taken at
render time.

String columns are supported by combining the equi-width string-bucket
computation with the same counting (Appendix B.1, "CDFs for string data").
"""

from __future__ import annotations

import numpy as np

from repro.core.buckets import Buckets
from repro.sketches.histogram import HistogramSketch, HistogramSummary


class CdfSketch(HistogramSketch):
    """A histogram with one bucket per horizontal pixel, rendered cumulatively.

    The separate class keeps cache keys distinct (a CDF at width H is not
    interchangeable with a histogram at B buckets) and carries the
    CDF-specific post-processing.
    """

    def __init__(
        self,
        column: str,
        buckets: Buckets,
        rate: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(column, buckets, rate=rate, seed=seed)

    @property
    def name(self) -> str:
        kind = "streaming" if self.rate >= 1.0 else "sampled"
        return f"Cdf[{kind}]({self.column})"

    def cache_key(self) -> str | None:
        if not self.deterministic:
            return None
        return f"Cdf({self.column!r},{self.buckets.spec()})"

    @staticmethod
    def cumulative(summary: HistogramSummary) -> np.ndarray:
        """Cumulative fraction of in-range rows at each pixel, in [0, 1]."""
        total = summary.total_in_range
        if total == 0:
            return np.zeros(summary.buckets, dtype=np.float64)
        return np.cumsum(summary.counts) / total
