"""Stacked (and normalized stacked) histogram vizketch (Appendix B.1).

Involves two columns X and Y: bars bin X (like a histogram) and each bar is
subdivided by a small number of Y "colors" (<= ~20, the number of reliably
distinguishable colors).  The summarize function outputs ``Bx`` bar counts
plus a ``Bx x By`` matrix of subdivision counts; merge adds both.

The *normalized* stacked histogram renders each bar at full height; small
bars then need relatively higher accuracy, so it must not sample — the
spreadsheet layer uses ``rate=1.0`` for it (Appendix B.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.buckets import Buckets
from repro.core.serialization import Decoder, Encoder
from repro.core.sketch import SampledSketch, Summary
from repro.sketches.binning import bin_row_reference, bin_rows
from repro.table.table import Table


@dataclass
class StackedHistogramSummary(Summary):
    """Bar counts for X and subdivision counts for (X, Y)."""

    bar_counts: np.ndarray  # int64[Bx]: rows in X-bucket with any Y
    cell_counts: np.ndarray  # int64[Bx, By]: rows in (X-bucket, Y-bucket)
    y_missing: np.ndarray  # int64[Bx]: X in range but Y missing/out-of-range
    missing: int = 0  # X missing
    out_of_range: int = 0  # X out of range
    sampled_rows: int = 0

    @property
    def x_buckets(self) -> int:
        return len(self.bar_counts)

    @property
    def y_buckets(self) -> int:
        return self.cell_counts.shape[1]

    @property
    def total_in_range(self) -> int:
        return int(self.bar_counts.sum())

    def encode(self, enc: Encoder) -> None:
        enc.write_array(self.bar_counts)
        enc.write_array(self.cell_counts)
        enc.write_array(self.y_missing)
        enc.write_uvarint(self.missing)
        enc.write_uvarint(self.out_of_range)
        enc.write_uvarint(self.sampled_rows)

    @classmethod
    def decode(cls, dec: Decoder) -> "StackedHistogramSummary":
        return cls(
            bar_counts=dec.read_array(),
            cell_counts=dec.read_array(),
            y_missing=dec.read_array(),
            missing=dec.read_uvarint(),
            out_of_range=dec.read_uvarint(),
            sampled_rows=dec.read_uvarint(),
        )


class StackedHistogramSketch(SampledSketch[StackedHistogramSummary]):
    """Two-column stacked histogram."""

    def __init__(
        self,
        x_column: str,
        x_buckets: Buckets,
        y_column: str,
        y_buckets: Buckets,
        rate: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(rate, seed)
        self.x_column = x_column
        self.x_buckets = x_buckets
        self.y_column = y_column
        self.y_buckets = y_buckets
        self.deterministic = rate >= 1.0

    @property
    def name(self) -> str:
        return f"StackedHistogram({self.x_column},{self.y_column})"

    def cache_key(self) -> str | None:
        if not self.deterministic:
            return None
        return (
            f"Stacked({self.x_column!r},{self.x_buckets.spec()},"
            f"{self.y_column!r},{self.y_buckets.spec()})"
        )

    def zero(self) -> StackedHistogramSummary:
        bx, by = self.x_buckets.count, self.y_buckets.count
        return StackedHistogramSummary(
            bar_counts=np.zeros(bx, dtype=np.int64),
            cell_counts=np.zeros((bx, by), dtype=np.int64),
            y_missing=np.zeros(bx, dtype=np.int64),
        )

    def summarize(self, table: Table) -> StackedHistogramSummary:
        rows = self.sampled_rows(table)
        bx, by = self.x_buckets.count, self.y_buckets.count
        x_binned = bin_rows(table, self.x_column, self.x_buckets, rows)
        y_binned = bin_rows(table, self.y_column, self.y_buckets, rows)
        x_ok = x_binned.indexes >= 0
        bar_counts = np.bincount(
            x_binned.indexes[x_ok], minlength=bx
        ).astype(np.int64)
        both = x_ok & (y_binned.indexes >= 0)
        flat = x_binned.indexes[both] * by + y_binned.indexes[both]
        cell_counts = (
            np.bincount(flat, minlength=bx * by).astype(np.int64).reshape(bx, by)
        )
        y_missing = bar_counts - cell_counts.sum(axis=1)
        return StackedHistogramSummary(
            bar_counts=bar_counts,
            cell_counts=cell_counts,
            y_missing=y_missing,
            missing=x_binned.missing,
            out_of_range=x_binned.out_of_range,
            sampled_rows=len(rows),
        )

    def summarize_reference(self, table: Table) -> StackedHistogramSummary:
        """Per-row oracle for :meth:`summarize` (differential tests)."""
        rows = self.sampled_rows(table)
        bx, by = self.x_buckets.count, self.y_buckets.count
        bar_counts = np.zeros(bx, dtype=np.int64)
        cell_counts = np.zeros((bx, by), dtype=np.int64)
        y_missing = np.zeros(bx, dtype=np.int64)
        missing = out_of_range = 0
        for row in rows:
            xi = bin_row_reference(table, self.x_column, int(row), self.x_buckets)
            if xi is None:
                missing += 1
                continue
            if xi < 0:
                out_of_range += 1
                continue
            bar_counts[xi] += 1
            yi = bin_row_reference(table, self.y_column, int(row), self.y_buckets)
            if yi is None or yi < 0:
                y_missing[xi] += 1
            else:
                cell_counts[xi, yi] += 1
        return StackedHistogramSummary(
            bar_counts=bar_counts,
            cell_counts=cell_counts,
            y_missing=y_missing,
            missing=missing,
            out_of_range=out_of_range,
            sampled_rows=len(rows),
        )

    def merge(
        self, left: StackedHistogramSummary, right: StackedHistogramSummary
    ) -> StackedHistogramSummary:
        return StackedHistogramSummary(
            bar_counts=left.bar_counts + right.bar_counts,
            cell_counts=left.cell_counts + right.cell_counts,
            y_missing=left.y_missing + right.y_missing,
            missing=left.missing + right.missing,
            out_of_range=left.out_of_range + right.out_of_range,
            sampled_rows=left.sampled_rows + right.sampled_rows,
        )
