"""Quantile vizketch for the scroll bar (§4.3, Appendix C.1).

When the user drags the scroll bar to pixel j of V, the spreadsheet must
jump to the row whose *rank* is approximately j/V under the current sort
order.  Theorem 2: a uniform sample of ``O(V^2 log(1/delta))`` rows contains
an element within ``epsilon = 1/(2V)`` of the requested rank w.h.p.; the
summary is simply that sample, kept sorted.

The summary size depends only on the display height — never the data size —
which is what makes this a vizketch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.serialization import (
    Decoder,
    Encoder,
    read_tagged_value,
    write_tagged_value,
)
from repro.core.sketch import SampledSketch, Summary
from repro.table.sort import RecordOrder
from repro.table.table import Table


@dataclass
class QuantileSummary(Summary):
    """A sorted uniform sample of row keys (raw cell values per row)."""

    order: RecordOrder
    samples: list[tuple] = field(default_factory=list)
    scanned: int = 0

    def quantile(self, fraction: float) -> tuple | None:
        """The sampled row whose relative rank is closest to ``fraction``."""
        if not self.samples:
            return None
        fraction = min(max(fraction, 0.0), 1.0)
        position = min(
            len(self.samples) - 1, int(round(fraction * (len(self.samples) - 1)))
        )
        return self.samples[position]

    def encode(self, enc: Encoder) -> None:
        self.order.encode(enc)
        enc.write_uvarint(len(self.samples))
        for values in self.samples:
            enc.write_uvarint(len(values))
            for value in values:
                write_tagged_value(enc, value)
        enc.write_uvarint(self.scanned)

    @classmethod
    def decode(cls, dec: Decoder) -> "QuantileSummary":
        order = RecordOrder.decode(dec)
        samples = []
        for _ in range(dec.read_uvarint()):
            width = dec.read_uvarint()
            samples.append(tuple(read_tagged_value(dec) for _ in range(width)))
        return cls(order=order, samples=samples, scanned=dec.read_uvarint())


class SampleQuantileSketch(SampledSketch[QuantileSummary]):
    """Uniform row-key sample under a sort order.

    ``max_size`` bounds the summary during merges: when a merged sample
    exceeds ``2 * max_size`` it is decimated by keeping every other element
    of the *sorted* list, which preserves quantiles while halving the size.
    """

    def __init__(
        self,
        order: RecordOrder,
        rate: float,
        seed: int = 0,
        max_size: int = 2500,
    ):
        super().__init__(rate, seed)
        if max_size < 2:
            raise ValueError("max_size must be >= 2")
        self.order = order
        self.max_size = max_size

    @property
    def name(self) -> str:
        return f"Quantile({self.order.spec()})"

    def zero(self) -> QuantileSummary:
        return QuantileSummary(order=self.order)

    def summarize(self, table: Table) -> QuantileSummary:
        rows = self.sampled_rows(table)
        sorted_rows = self.order.argsort(table, rows)
        columns = [table.column(c) for c in self.order.columns]
        # One batched values_at pass per column, then a transpose into
        # per-row tuples — no per-row column.value calls.
        samples = list(
            zip(*(column.values_at(sorted_rows) for column in columns))
        ) if len(sorted_rows) else []
        summary = QuantileSummary(
            order=self.order, samples=samples, scanned=table.num_rows
        )
        return self._bounded(summary)

    def summarize_reference(self, table: Table) -> QuantileSummary:
        """Per-row oracle for :meth:`summarize` (differential tests)."""
        rows = self.sampled_rows(table)
        sorted_rows = self.order.argsort(table, rows)
        columns = [table.column(c) for c in self.order.columns]
        samples = [
            tuple(column.value(int(row)) for column in columns)
            for row in sorted_rows
        ]
        summary = QuantileSummary(
            order=self.order, samples=samples, scanned=table.num_rows
        )
        return self._bounded(summary)

    def merge(self, left: QuantileSummary, right: QuantileSummary) -> QuantileSummary:
        # Linear two-way merge of sorted sample lists.
        lkeys = [self.order.key_from_values(v) for v in left.samples]
        rkeys = [self.order.key_from_values(v) for v in right.samples]
        merged: list[tuple] = []
        li = ri = 0
        while li < len(lkeys) and ri < len(rkeys):
            if rkeys[ri] < lkeys[li]:
                merged.append(right.samples[ri])
                ri += 1
            else:
                merged.append(left.samples[li])
                li += 1
        merged.extend(left.samples[li:])
        merged.extend(right.samples[ri:])
        return self._bounded(
            QuantileSummary(
                order=self.order,
                samples=merged,
                scanned=left.scanned + right.scanned,
            )
        )

    def _bounded(self, summary: QuantileSummary) -> QuantileSummary:
        while len(summary.samples) > 2 * self.max_size:
            summary.samples = summary.samples[::2]
        return summary
