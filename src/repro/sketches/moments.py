"""Column statistics sketch: range, counts and statistical moments (§B.3).

This sketch implements both the "Range" vizketch (used by the preparation
phase of every chart, Fig 9) and the "Moments" sketch that backs the column
summary view.  It collects, in one pass:

* present and missing row counts;
* minimum and maximum values;
* power sums ``sum(x^k)`` for k = 1..K (mean and variance are k <= 2).

For string columns the min/max are tracked over the strings themselves and
the moments stay empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.serialization import (
    Decoder,
    Encoder,
    read_tagged_value,
    write_tagged_value,
)
from repro.core.sketch import Sketch, Summary
from repro.table.column import StringColumn
from repro.table.dictionary import MISSING_CODE
from repro.table.table import Table


@dataclass
class ColumnStats(Summary):
    """Mergeable column statistics."""

    present_count: int = 0
    missing_count: int = 0
    min_value: object | None = None
    max_value: object | None = None
    #: power_sums[k-1] == sum of x**k over present rows (numeric columns).
    power_sums: list[float] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        return self.present_count + self.missing_count

    @property
    def mean(self) -> float:
        if self.present_count == 0 or not self.power_sums:
            return float("nan")
        return self.power_sums[0] / self.present_count

    @property
    def variance(self) -> float:
        """Population variance from the first two moments."""
        if self.present_count == 0 or len(self.power_sums) < 2:
            return float("nan")
        mean = self.mean
        return max(0.0, self.power_sums[1] / self.present_count - mean * mean)

    @property
    def std_dev(self) -> float:
        return float(np.sqrt(self.variance))

    def moment(self, k: int) -> float:
        """The k-th raw moment ``E[x^k]``."""
        if self.present_count == 0 or len(self.power_sums) < k:
            return float("nan")
        return self.power_sums[k - 1] / self.present_count

    def encode(self, enc: Encoder) -> None:
        enc.write_uvarint(self.present_count)
        enc.write_uvarint(self.missing_count)
        write_tagged_value(enc, self.min_value)
        write_tagged_value(enc, self.max_value)
        enc.write_uvarint(len(self.power_sums))
        for s in self.power_sums:
            enc.write_float(s)

    @classmethod
    def decode(cls, dec: Decoder) -> "ColumnStats":
        present = dec.read_uvarint()
        missing = dec.read_uvarint()
        min_value = read_tagged_value(dec)
        max_value = read_tagged_value(dec)
        sums = [dec.read_float() for _ in range(dec.read_uvarint())]
        return cls(present, missing, min_value, max_value, sums)


class MomentsSketch(Sketch[ColumnStats]):
    """One-pass range + moments sketch over a single column.

    Deterministic, hence cacheable: the engine's computation cache reuses
    range results across charts on the same column (paper §5.4).
    """

    def __init__(self, column: str, moments: int = 2):
        if moments < 0:
            raise ValueError("moments must be >= 0")
        self.column = column
        self.moments = moments

    def cache_key(self) -> str:
        return f"Moments({self.column!r},k={self.moments})"

    def zero(self) -> ColumnStats:
        return ColumnStats()

    def summarize(self, table: Table) -> ColumnStats:
        from repro.table.column import millis_to_datetime
        from repro.table.schema import ContentsKind

        column = table.column(self.column)
        rows = table.members.indices()
        if column.kind.is_string:
            return self._summarize_string(column, rows)
        values = column.numeric_values(rows)
        present = values[~np.isnan(values)]
        stats = ColumnStats(
            present_count=len(present),
            missing_count=len(values) - len(present),
        )
        if len(present):
            if column.kind is ContentsKind.DATE:
                # Dates report their natural values; moments stay in millis.
                stats.min_value = millis_to_datetime(int(present.min()))
                stats.max_value = millis_to_datetime(int(present.max()))
            else:
                stats.min_value = float(present.min())
                stats.max_value = float(present.max())
            stats.power_sums = [
                float(np.power(present, k).sum()) for k in range(1, self.moments + 1)
            ]
        else:
            stats.power_sums = [0.0] * self.moments
        return stats

    def _summarize_string(self, column, rows: np.ndarray) -> ColumnStats:
        if not isinstance(column, StringColumn):  # pragma: no cover - invariant
            raise TypeError("string-kinded column with non-string storage")
        codes = column.codes_at(rows)
        present = codes[codes != MISSING_CODE]
        stats = ColumnStats(
            present_count=len(present), missing_count=len(codes) - len(present)
        )
        if len(present):
            used = {column.dictionary.value(int(c)) for c in np.unique(present)}
            stats.min_value = min(used)
            stats.max_value = max(used)
        return stats

    def merge(self, left: ColumnStats, right: ColumnStats) -> ColumnStats:
        merged = ColumnStats(
            present_count=left.present_count + right.present_count,
            missing_count=left.missing_count + right.missing_count,
        )
        mins = [v for v in (left.min_value, right.min_value) if v is not None]
        maxs = [v for v in (left.max_value, right.max_value) if v is not None]
        merged.min_value = min(mins) if mins else None
        merged.max_value = max(maxs) if maxs else None
        width = max(len(left.power_sums), len(right.power_sums))
        merged.power_sums = [
            (left.power_sums[k] if k < len(left.power_sums) else 0.0)
            + (right.power_sums[k] if k < len(right.power_sums) else 0.0)
            for k in range(width)
        ]
        return merged
