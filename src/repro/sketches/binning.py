"""Shared bucket-index computation for chart vizketches.

Histograms, CDFs, stacked histograms, heat maps and trellis plots all need
the same primitive: map each row of a shard to a bucket index (or -1 for
out-of-range, or "missing").  Numeric columns bin vectorized; string columns
bin their *dictionary* once and map codes, so cost is O(rows + distinct).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.buckets import Buckets
from repro.table.column import StringColumn
from repro.table.dictionary import MISSING_CODE

if TYPE_CHECKING:  # pragma: no cover
    from repro.table.table import Table


@dataclass
class BinnedRows:
    """Bucket indexes for a set of rows plus the two residual counts."""

    indexes: np.ndarray  # int64, -1 = out of range, only for non-missing rows
    missing: int  # rows whose cell is missing
    out_of_range: int  # non-missing rows falling outside the buckets

    @property
    def in_range(self) -> np.ndarray:
        """The bucket indexes of rows that landed inside the buckets."""
        return self.indexes[self.indexes >= 0]


def bin_rows(
    table: "Table", column_name: str, buckets: Buckets, rows: np.ndarray
) -> BinnedRows:
    """Bucket index of ``column_name`` for each of ``rows``.

    The returned ``indexes`` array is aligned with ``rows`` and contains -1
    for both missing and out-of-range rows; the counts separate the two.
    """
    column = table.column(column_name)
    if column.kind.is_string:
        if not isinstance(column, StringColumn):  # pragma: no cover - invariant
            raise TypeError("string-kinded column with non-string storage")
        code_bucket = buckets.index_strings(list(column.dictionary.values))
        codes = column.codes_at(rows)
        indexes = np.full(len(rows), -1, dtype=np.int64)
        present = codes != MISSING_CODE
        indexes[present] = code_bucket[codes[present]]
        missing = int((~present).sum())
        out_of_range = int((indexes[present] < 0).sum())
        return BinnedRows(indexes, missing, out_of_range)
    values = column.numeric_values(rows)
    nan = np.isnan(values)
    indexes = buckets.index_numeric(values)
    missing = int(nan.sum())
    out_of_range = int((indexes < 0).sum()) - missing
    return BinnedRows(indexes, missing, out_of_range)


def bin_row_reference(
    table: "Table", column_name: str, row: int, buckets: Buckets
) -> int | None:
    """Per-row oracle twin of :func:`bin_rows` (differential tests).

    Returns None when the cell is missing, -1 when out of range, else the
    bucket index — using the same scalar arithmetic/comparisons as the
    vectorized pass.
    """
    column = table.column(column_name)
    if column.kind.is_string:
        value = column.value(int(row))
        return None if value is None else buckets.index_of(value)
    value = float(column.numeric_values(np.array([row], dtype=np.int64))[0])
    if np.isnan(value):
        return None
    return buckets.index_of(value)


def bincount(indexes: np.ndarray, buckets: int) -> np.ndarray:
    """Counts per bucket for ``indexes`` (ignoring -1 entries)."""
    valid = indexes[indexes >= 0]
    return np.bincount(valid, minlength=buckets).astype(np.int64)
