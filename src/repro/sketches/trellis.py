"""Trellis plot vizketches: arrays of plots grouped by 1 or 2 columns (B.1).

A trellis of k panes renders each pane into a fraction of the display, so
the total number of bins — and therefore the sample size — does *not* grow
with k; it shrinks per pane (Appendix B.1).  The summary is one inner-plot
summary per group bucket; all panes are computed in one pass over the data.

Per Figure 2, trellis plots generalize to "arrays of the other plots
grouped by one or two variables": this module provides heat-map panes
(:class:`TrellisHeatmapSketch`) and histogram panes
(:class:`TrellisHistogramSketch`), each accepting an optional second group
column whose buckets form the minor axis of the pane grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.buckets import Buckets
from repro.core.serialization import Decoder, Encoder
from repro.core.sketch import SampledSketch, Summary
from repro.sketches.binning import bin_row_reference, bin_rows
from repro.sketches.heatmap import HeatmapSummary
from repro.sketches.histogram import HistogramSummary
from repro.table.table import Table


def _bin_groups(
    table: Table,
    rows: np.ndarray,
    group_column: str,
    group_buckets: Buckets,
    group2_column: str | None,
    group2_buckets: Buckets | None,
) -> tuple[np.ndarray, int, int]:
    """Flat pane index per row (−1 for unusable rows).

    With a second group column, the flat index is
    ``g1 * group2_buckets.count + g2`` — the pane grid in row-major order.
    Returns ``(indexes, missing, out_of_range)`` where a row counts as
    missing/out-of-range if *any* of its group values is.
    """
    g1 = bin_rows(table, group_column, group_buckets, rows)
    if group2_column is None:
        return g1.indexes, g1.missing, g1.out_of_range
    assert group2_buckets is not None
    g2 = bin_rows(table, group2_column, group2_buckets, rows)
    ok = (g1.indexes >= 0) & (g2.indexes >= 0)
    flat = np.where(ok, g1.indexes * group2_buckets.count + g2.indexes, -1)
    # A row is missing if either group cell is (counted once, so the
    # residuals stay exactly mergeable across partitions); the remaining
    # unusable rows are out of range.
    missing_mask = (
        table.column(group_column).missing_mask()[rows]
        | table.column(group2_column).missing_mask()[rows]
    )
    missing = int(np.count_nonzero(missing_mask))
    out_of_range = int(np.count_nonzero(~ok & ~missing_mask))
    return flat, missing, out_of_range


def _pane_of_row_reference(
    table: Table,
    row: int,
    group_column: str,
    group_buckets: Buckets,
    group2_column: str | None,
    group2_buckets: Buckets | None,
) -> tuple[int, str]:
    """Per-row oracle twin of :func:`_bin_groups` (differential tests).

    Returns ``(flat_index, state)`` with state one of ``"ok"``,
    ``"missing"``, ``"out_of_range"``; the flat index is -1 unless ok.
    """
    g1 = bin_row_reference(table, group_column, row, group_buckets)
    if group2_column is None:
        if g1 is None:
            return -1, "missing"
        return (g1, "ok") if g1 >= 0 else (-1, "out_of_range")
    assert group2_buckets is not None
    g2 = bin_row_reference(table, group2_column, row, group2_buckets)
    if g1 is None or g2 is None:
        return -1, "missing"
    if g1 < 0 or g2 < 0:
        return -1, "out_of_range"
    return g1 * group2_buckets.count + g2, "ok"


@dataclass
class TrellisSummary(Summary):
    """One heat-map summary per group bucket (pane grid in row-major order)."""

    panes: list[HeatmapSummary]
    group_missing: int = 0
    group_out_of_range: int = 0
    sampled_rows: int = 0

    def encode(self, enc: Encoder) -> None:
        enc.write_uvarint(len(self.panes))
        for pane in self.panes:
            pane.encode(enc)
        enc.write_uvarint(self.group_missing)
        enc.write_uvarint(self.group_out_of_range)
        enc.write_uvarint(self.sampled_rows)

    @classmethod
    def decode(cls, dec: Decoder) -> "TrellisSummary":
        panes = [HeatmapSummary.decode(dec) for _ in range(dec.read_uvarint())]
        return cls(
            panes=panes,
            group_missing=dec.read_uvarint(),
            group_out_of_range=dec.read_uvarint(),
            sampled_rows=dec.read_uvarint(),
        )


@dataclass
class TrellisHistogramSummary(Summary):
    """One histogram summary per group bucket (pane grid, row-major)."""

    panes: list[HistogramSummary]
    group_missing: int = 0
    group_out_of_range: int = 0
    sampled_rows: int = 0

    def encode(self, enc: Encoder) -> None:
        enc.write_uvarint(len(self.panes))
        for pane in self.panes:
            pane.encode(enc)
        enc.write_uvarint(self.group_missing)
        enc.write_uvarint(self.group_out_of_range)
        enc.write_uvarint(self.sampled_rows)

    @classmethod
    def decode(cls, dec: Decoder) -> "TrellisHistogramSummary":
        panes = [HistogramSummary.decode(dec) for _ in range(dec.read_uvarint())]
        return cls(
            panes=panes,
            group_missing=dec.read_uvarint(),
            group_out_of_range=dec.read_uvarint(),
            sampled_rows=dec.read_uvarint(),
        )


class TrellisHeatmapSketch(SampledSketch[TrellisSummary]):
    """A trellis of heat maps: group column(s) W, then (X, Y) per pane."""

    def __init__(
        self,
        group_column: str,
        group_buckets: Buckets,
        x_column: str,
        x_buckets: Buckets,
        y_column: str,
        y_buckets: Buckets,
        rate: float = 1.0,
        seed: int = 0,
        group2_column: str | None = None,
        group2_buckets: Buckets | None = None,
    ):
        super().__init__(rate, seed)
        if (group2_column is None) != (group2_buckets is None):
            raise ValueError("group2_column and group2_buckets go together")
        self.group_column = group_column
        self.group_buckets = group_buckets
        self.group2_column = group2_column
        self.group2_buckets = group2_buckets
        self.x_column = x_column
        self.x_buckets = x_buckets
        self.y_column = y_column
        self.y_buckets = y_buckets
        self.deterministic = rate >= 1.0

    @property
    def pane_count(self) -> int:
        count = self.group_buckets.count
        if self.group2_buckets is not None:
            count *= self.group2_buckets.count
        return count

    @property
    def name(self) -> str:
        groups = self.group_column
        if self.group2_column is not None:
            groups += f"x{self.group2_column}"
        return f"Trellis({groups};{self.x_column},{self.y_column})"

    def cache_key(self) -> str | None:
        if not self.deterministic:
            return None
        group2 = (
            ""
            if self.group2_column is None
            else f",{self.group2_column!r},{self.group2_buckets.spec()}"
        )
        return (
            f"Trellis({self.group_column!r},{self.group_buckets.spec()}{group2},"
            f"{self.x_column!r},{self.x_buckets.spec()},"
            f"{self.y_column!r},{self.y_buckets.spec()})"
        )

    def zero(self) -> TrellisSummary:
        bx, by = self.x_buckets.count, self.y_buckets.count
        return TrellisSummary(
            panes=[
                HeatmapSummary(counts=np.zeros((bx, by), dtype=np.int64))
                for _ in range(self.pane_count)
            ]
        )

    def summarize(self, table: Table) -> TrellisSummary:
        rows = self.sampled_rows(table)
        groups = self.pane_count
        bx, by = self.x_buckets.count, self.y_buckets.count
        g_flat, g_missing, g_oor = _bin_groups(
            table, rows,
            self.group_column, self.group_buckets,
            self.group2_column, self.group2_buckets,
        )
        x_binned = bin_rows(table, self.x_column, self.x_buckets, rows)
        y_binned = bin_rows(table, self.y_column, self.y_buckets, rows)
        all_in = (g_flat >= 0) & (x_binned.indexes >= 0) & (y_binned.indexes >= 0)
        # A single bincount covers every pane at once.
        flat = (
            g_flat[all_in] * (bx * by)
            + x_binned.indexes[all_in] * by
            + y_binned.indexes[all_in]
        )
        cube = (
            np.bincount(flat, minlength=groups * bx * by)
            .astype(np.int64)
            .reshape(groups, bx, by)
        )
        panes = [
            HeatmapSummary(counts=cube[g], sampled_rows=int(cube[g].sum()))
            for g in range(groups)
        ]
        return TrellisSummary(
            panes=panes,
            group_missing=g_missing,
            group_out_of_range=g_oor,
            sampled_rows=len(rows),
        )

    def summarize_reference(self, table: Table) -> TrellisSummary:
        """Per-row oracle for :meth:`summarize` (differential tests)."""
        rows = self.sampled_rows(table)
        groups = self.pane_count
        bx, by = self.x_buckets.count, self.y_buckets.count
        cube = np.zeros((groups, bx, by), dtype=np.int64)
        g_missing = g_oor = 0
        for row in rows:
            flat, state = _pane_of_row_reference(
                table, int(row),
                self.group_column, self.group_buckets,
                self.group2_column, self.group2_buckets,
            )
            if state == "missing":
                g_missing += 1
                continue
            if state == "out_of_range":
                g_oor += 1
                continue
            xi = bin_row_reference(table, self.x_column, int(row), self.x_buckets)
            yi = bin_row_reference(table, self.y_column, int(row), self.y_buckets)
            if xi is None or xi < 0 or yi is None or yi < 0:
                continue
            cube[flat, xi, yi] += 1
        panes = [
            HeatmapSummary(counts=cube[g], sampled_rows=int(cube[g].sum()))
            for g in range(groups)
        ]
        return TrellisSummary(
            panes=panes,
            group_missing=g_missing,
            group_out_of_range=g_oor,
            sampled_rows=len(rows),
        )

    def merge(self, left: TrellisSummary, right: TrellisSummary) -> TrellisSummary:
        panes = [
            HeatmapSummary(
                counts=a.counts + b.counts,
                x_missing=a.x_missing + b.x_missing,
                y_missing=a.y_missing + b.y_missing,
                out_of_range=a.out_of_range + b.out_of_range,
                sampled_rows=a.sampled_rows + b.sampled_rows,
            )
            for a, b in zip(left.panes, right.panes)
        ]
        return TrellisSummary(
            panes=panes,
            group_missing=left.group_missing + right.group_missing,
            group_out_of_range=left.group_out_of_range + right.group_out_of_range,
            sampled_rows=left.sampled_rows + right.sampled_rows,
        )


class TrellisHistogramSketch(SampledSketch[TrellisHistogramSummary]):
    """A trellis of histograms: group column(s) W, then X per pane."""

    def __init__(
        self,
        group_column: str,
        group_buckets: Buckets,
        x_column: str,
        x_buckets: Buckets,
        rate: float = 1.0,
        seed: int = 0,
        group2_column: str | None = None,
        group2_buckets: Buckets | None = None,
    ):
        super().__init__(rate, seed)
        if (group2_column is None) != (group2_buckets is None):
            raise ValueError("group2_column and group2_buckets go together")
        self.group_column = group_column
        self.group_buckets = group_buckets
        self.group2_column = group2_column
        self.group2_buckets = group2_buckets
        self.x_column = x_column
        self.x_buckets = x_buckets
        self.deterministic = rate >= 1.0

    @property
    def pane_count(self) -> int:
        count = self.group_buckets.count
        if self.group2_buckets is not None:
            count *= self.group2_buckets.count
        return count

    @property
    def name(self) -> str:
        groups = self.group_column
        if self.group2_column is not None:
            groups += f"x{self.group2_column}"
        return f"TrellisHistogram({groups};{self.x_column})"

    def cache_key(self) -> str | None:
        if not self.deterministic:
            return None
        group2 = (
            ""
            if self.group2_column is None
            else f",{self.group2_column!r},{self.group2_buckets.spec()}"
        )
        return (
            f"TrellisHistogram({self.group_column!r},"
            f"{self.group_buckets.spec()}{group2},"
            f"{self.x_column!r},{self.x_buckets.spec()})"
        )

    def zero(self) -> TrellisHistogramSummary:
        b = self.x_buckets.count
        return TrellisHistogramSummary(
            panes=[
                HistogramSummary(counts=np.zeros(b, dtype=np.int64))
                for _ in range(self.pane_count)
            ]
        )

    def summarize(self, table: Table) -> TrellisHistogramSummary:
        rows = self.sampled_rows(table)
        groups = self.pane_count
        b = self.x_buckets.count
        g_flat, g_missing, g_oor = _bin_groups(
            table, rows,
            self.group_column, self.group_buckets,
            self.group2_column, self.group2_buckets,
        )
        x_binned = bin_rows(table, self.x_column, self.x_buckets, rows)
        both = (g_flat >= 0) & (x_binned.indexes >= 0)
        flat = g_flat[both] * b + x_binned.indexes[both]
        grid = (
            np.bincount(flat, minlength=groups * b)
            .astype(np.int64)
            .reshape(groups, b)
        )
        # X residuals attributed per pane: rows whose group is known but X
        # is missing or out of range.  One bincount over the unusable-X
        # rows replaces a per-pane mask scan.
        x_unusable = (g_flat >= 0) & (x_binned.indexes < 0)
        residuals = np.bincount(g_flat[x_unusable], minlength=groups)
        panes = [
            HistogramSummary(
                counts=grid[g],
                missing=int(residuals[g]),
                sampled_rows=int(grid[g].sum()) + int(residuals[g]),
            )
            for g in range(groups)
        ]
        return TrellisHistogramSummary(
            panes=panes,
            group_missing=g_missing,
            group_out_of_range=g_oor,
            sampled_rows=len(rows),
        )

    def summarize_reference(self, table: Table) -> TrellisHistogramSummary:
        """Per-row oracle for :meth:`summarize` (differential tests)."""
        rows = self.sampled_rows(table)
        groups = self.pane_count
        b = self.x_buckets.count
        grid = np.zeros((groups, b), dtype=np.int64)
        residuals = np.zeros(groups, dtype=np.int64)
        g_missing = g_oor = 0
        for row in rows:
            flat, state = _pane_of_row_reference(
                table, int(row),
                self.group_column, self.group_buckets,
                self.group2_column, self.group2_buckets,
            )
            if state == "missing":
                g_missing += 1
                continue
            if state == "out_of_range":
                g_oor += 1
                continue
            xi = bin_row_reference(table, self.x_column, int(row), self.x_buckets)
            if xi is None or xi < 0:
                residuals[flat] += 1
            else:
                grid[flat, xi] += 1
        panes = [
            HistogramSummary(
                counts=grid[g],
                missing=int(residuals[g]),
                sampled_rows=int(grid[g].sum()) + int(residuals[g]),
            )
            for g in range(groups)
        ]
        return TrellisHistogramSummary(
            panes=panes,
            group_missing=g_missing,
            group_out_of_range=g_oor,
            sampled_rows=len(rows),
        )

    def merge(
        self, left: TrellisHistogramSummary, right: TrellisHistogramSummary
    ) -> TrellisHistogramSummary:
        panes = [
            HistogramSummary(
                counts=a.counts + b.counts,
                missing=a.missing + b.missing,
                out_of_range=a.out_of_range + b.out_of_range,
                sampled_rows=a.sampled_rows + b.sampled_rows,
            )
            for a, b in zip(left.panes, right.panes)
        ]
        return TrellisHistogramSummary(
            panes=panes,
            group_missing=left.group_missing + right.group_missing,
            group_out_of_range=left.group_out_of_range + right.group_out_of_range,
            sampled_rows=left.sampled_rows + right.sampled_rows,
        )
