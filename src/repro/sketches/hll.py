"""HyperLogLog distinct-count sketch (§B.3, Flajolet et al. 2007).

Hillview computes the number of distinct elements approximately with a
HyperLogLog sketch.  The summary is ``m = 2^p`` one-byte registers; merge
takes the element-wise maximum.  The standard estimator with the small- and
large-range corrections gives ~1.04/sqrt(m) relative error.

Value hashing is vectorized: numeric values hash their 64-bit bit patterns;
string columns hash each *dictionary* entry once and map codes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rand import stable_hash64
from repro.core.serialization import Decoder, Encoder
from repro.core.sketch import Sketch, Summary
from repro.table.column import StringColumn
from repro.table.dictionary import MISSING_CODE
from repro.table.table import Table


def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


def _high_bit(x: np.ndarray) -> np.ndarray:
    """Position of the highest set bit of each (nonzero) uint64."""
    x = x.copy()
    result = np.zeros(x.shape, dtype=np.uint64)
    for shift in (32, 16, 8, 4, 2, 1):
        step = np.uint64(shift)
        mask = x >= (np.uint64(1) << step)
        result[mask] += step
        x[mask] >>= step
    return result


def _mix64(x: np.ndarray, seed: int) -> np.ndarray:
    """splitmix64 finalizer over uint64 values."""
    x = x.astype(np.uint64, copy=True)
    x += np.uint64(stable_hash64("hll-mix", seed) | 1)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x


@dataclass
class HllSummary(Summary):
    """HyperLogLog registers plus the exact missing-row count."""

    registers: np.ndarray  # uint8[m]
    missing: int = 0

    @property
    def precision(self) -> int:
        return int(np.log2(len(self.registers)))

    def estimate(self) -> float:
        """Estimated number of distinct values."""
        m = len(self.registers)
        raw = _alpha(m) * m * m / np.sum(np.exp2(-self.registers.astype(np.float64)))
        zeros = int((self.registers == 0).sum())
        if raw <= 2.5 * m and zeros > 0:
            return m * np.log(m / zeros)  # small-range correction
        two64 = float(2**64)
        if raw > two64 / 30.0:  # pragma: no cover - astronomically large sets
            return -two64 * np.log1p(-raw / two64)
        return float(raw)

    def encode(self, enc: Encoder) -> None:
        enc.write_array(self.registers)
        enc.write_uvarint(self.missing)

    @classmethod
    def decode(cls, dec: Decoder) -> "HllSummary":
        return cls(registers=dec.read_array(), missing=dec.read_uvarint())


class HyperLogLogSketch(Sketch[HllSummary]):
    """Approximate distinct count of one column.

    ``precision`` p gives ``2^p`` registers and ~``1.04 / 2^(p/2)`` relative
    standard error (p=12 -> ~1.6%).  The hash seed participates in the cache
    key: the sketch is deterministic *given its seed*, exactly what the redo
    log requires (§5.8).
    """

    def __init__(self, column: str, precision: int = 12, seed: int = 0):
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.column = column
        self.precision = precision
        self.seed = seed

    def with_seed(self, seed: int) -> "HyperLogLogSketch":
        return HyperLogLogSketch(self.column, self.precision, seed)

    @property
    def name(self) -> str:
        return f"HyperLogLog({self.column})"

    def cache_key(self) -> str:
        return f"Hll({self.column!r},p={self.precision},seed={self.seed})"

    def zero(self) -> HllSummary:
        return HllSummary(registers=np.zeros(1 << self.precision, dtype=np.uint8))

    def _value_hashes(self, table: Table) -> tuple[np.ndarray, int]:
        """64-bit hashes of present cell values, plus the missing count."""
        rows = table.members.indices()
        column = table.column(self.column)
        if isinstance(column, StringColumn):
            codes = column.codes_at(rows)
            present = codes[codes != MISSING_CODE]
            missing = len(codes) - len(present)
            # Hash every distinct string once; map through codes.
            table_hash = np.array(
                [
                    stable_hash64("hll-str", self.seed, value)
                    for value in column.dictionary.values
                ],
                dtype=np.uint64,
            )
            return table_hash[present], missing
        values = column.numeric_values(rows)
        present_mask = ~np.isnan(values)
        missing = int((~present_mask).sum())
        bits = values[present_mask].view(np.uint64)
        return _mix64(bits, self.seed), missing

    def summarize(self, table: Table) -> HllSummary:
        hashes, missing = self._value_hashes(table)
        summary = self.zero()
        if len(hashes):
            p = np.uint64(self.precision)
            indexes = (hashes >> (np.uint64(64) - p)).astype(np.int64)
            w = hashes << p  # remaining 64-p bits, left aligned
            rho = np.where(
                w == 0,
                np.uint64(64 - self.precision + 1),
                np.uint64(63) - _high_bit(w) + np.uint64(1),
            ).astype(np.uint8)
            np.maximum.at(summary.registers, indexes, rho)
        summary.missing = missing
        return summary

    def merge(self, left: HllSummary, right: HllSummary) -> HllSummary:
        return HllSummary(
            registers=np.maximum(left.registers, right.registers),
            missing=left.missing + right.missing,
        )
